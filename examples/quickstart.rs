//! Quickstart: build a heap, collect it with both the software collector
//! and the GC accelerator, and compare.
//!
//! ```text
//! cargo run --release -p tracegc --example quickstart
//! ```

use tracegc::cpu::{Cpu, CpuConfig};
use tracegc::heap::verify::{check_free_lists, check_marks_match_reachability};
use tracegc::heap::{Heap, HeapConfig, ObjRef};
use tracegc::hwgc::{GcUnit, GcUnitConfig};
use tracegc::mem::MemSystem;
use tracegc::sim::cycles_to_ms;

fn build_demo_heap() -> Heap {
    let mut heap = Heap::new(HeapConfig::default());
    // A binary tree of 50,000 live objects plus 30,000 garbage objects.
    let live: Vec<ObjRef> = (0..50_000)
        .map(|i| heap.alloc(2, (i % 4) as u32, false).expect("heap fits"))
        .collect();
    for i in 0..live.len() {
        if 2 * i + 1 < live.len() {
            heap.set_ref(live[i], 0, Some(live[2 * i + 1]));
        }
        if 2 * i + 2 < live.len() {
            heap.set_ref(live[i], 1, Some(live[2 * i + 2]));
        }
    }
    let garbage: Vec<ObjRef> = (0..30_000)
        .map(|i| heap.alloc(1, (i % 8) as u32, false).expect("heap fits"))
        .collect();
    for w in garbage.windows(2) {
        heap.set_ref(w[0], 0, Some(w[1]));
    }
    heap.set_roots(&[live[0]]);
    heap
}

fn main() {
    println!("tracegc quickstart: one GC pause, two collectors\n");

    // --- Software collector on the in-order Rocket-like core. ---
    let mut heap = build_demo_heap();
    let mut mem = MemSystem::ddr3(Default::default());
    let mut cpu = Cpu::new(CpuConfig::default(), &mut heap);
    let (mark, sweep) = cpu.run_gc(&mut heap, &mut mem);
    check_free_lists(&heap).expect("free lists consistent");
    println!(
        "Rocket CPU : mark {:>7.3} ms ({} objects), sweep {:>7.3} ms ({} cells freed)",
        cycles_to_ms(mark.cycles),
        mark.work_items,
        cycles_to_ms(sweep.cycles),
        sweep.work_items,
    );

    // --- The GC accelerator on an identical heap. ---
    let mut heap = build_demo_heap();
    let mut mem = MemSystem::ddr3(Default::default());
    let mut unit = GcUnit::new(GcUnitConfig::default(), &mut heap);

    // Verify the mark result against the reachability oracle before the
    // sweep clears the bits.
    let mark_report = {
        let mut heap2 = build_demo_heap();
        let mut mem2 = MemSystem::ddr3(Default::default());
        let mut unit2 = tracegc::hwgc::TraversalUnit::new(GcUnitConfig::default(), &mut heap2);
        let r = unit2.run_mark(&mut heap2, &mut mem2, 0);
        check_marks_match_reachability(&heap2).expect("unit marks == reachability oracle");
        r
    };

    let report = unit.run_gc(&mut heap, &mut mem);
    check_free_lists(&heap).expect("free lists consistent");
    println!(
        "GC unit    : mark {:>7.3} ms ({} objects), sweep {:>7.3} ms ({} cells freed)",
        cycles_to_ms(report.mark.cycles()),
        report.mark.objects_marked,
        cycles_to_ms(report.sweep.cycles()),
        report.sweep.cells_freed,
    );

    assert_eq!(mark.work_items, report.mark.objects_marked);
    assert_eq!(sweep.work_items, report.sweep.cells_freed);

    println!(
        "\nSpeedup    : mark {:.2}x, sweep {:.2}x, total {:.2}x  (paper: 4.2x / 1.9x / 3.3x)",
        mark.cycles as f64 / report.mark.cycles() as f64,
        sweep.cycles as f64 / report.sweep.cycles() as f64,
        (mark.cycles + sweep.cycles) as f64 / report.total_cycles() as f64,
    );
    println!(
        "Unit stats : {} refs traced through the mark queue, {} spill writes, \
         oracle check passed ({} marks)",
        report.mark.refs_enqueued, report.mark.markq.spill_writes, mark_report.objects_marked,
    );
}
