//! The paper's motivating scenario (Fig. 1b): a latency-sensitive
//! service (lusearch, 10 queries/second) suffering stop-the-world GC
//! pauses — then the same service with pauses shortened by the GC unit.
//!
//! ```text
//! cargo run --release -p tracegc --example pause_latency
//! ```

use tracegc::heap::LayoutKind;
use tracegc::hwgc::GcUnitConfig;
use tracegc::runner::{DualRun, MemKind};
use tracegc::workloads::queries::{QueryLatencySim, QueryLatencySpec};
use tracegc::workloads::spec::by_name;

fn main() {
    println!("lusearch @ 10 QPS, coordinated omission accounted (Fig. 1b)\n");

    // Measure real pause lengths for lusearch on both collectors.
    let sim_scale = 0.25;
    let spec = by_name("lusearch")
        .expect("lusearch exists")
        .scaled(sim_scale);
    let mut run = DualRun::new(&spec, LayoutKind::Bidirectional, GcUnitConfig::default());
    let pause = run.run_pause(MemKind::ddr3_default());
    // Project the measured pause back to the paper's heap size: our
    // workloads are ~10x smaller than the paper's 200 MB configuration,
    // and this example additionally runs at a fraction of that.
    let to_paper_scale = 10.0 / sim_scale;
    let cpu_pause_us =
        ((pause.cpu_mark_cycles + pause.cpu_sweep_cycles) as f64 * to_paper_scale / 1000.0) as u64;
    let unit_pause_us = ((pause.unit_mark_cycles + pause.unit_sweep_cycles) as f64 * to_paper_scale
        / 1000.0) as u64;
    println!(
        "pause at paper heap scale: software collector {:.1} ms, GC unit {:.1} ms\n",
        cpu_pause_us as f64 / 1000.0,
        unit_pause_us as f64 / 1000.0
    );

    let sim = QueryLatencySim::new(QueryLatencySpec::default());
    let (mut none, _) = sim.run(&[]);
    let (mut sw, _) = sim.run(&[cpu_pause_us]);
    let (mut hw, _) = sim.run(&[unit_pause_us]);

    println!("query latency (ms)      no-GC     sw-GC     hw-GC");
    for p in [50.0, 90.0, 99.0, 99.9, 100.0] {
        println!(
            "  p{:<5}            {:>8.2}  {:>8.2}  {:>8.2}",
            p,
            none.percentile(p).unwrap_or(0) as f64 / 1000.0,
            sw.percentile(p).unwrap_or(0) as f64 / 1000.0,
            hw.percentile(p).unwrap_or(0) as f64 / 1000.0,
        );
    }
    let sw_tail = sw.percentile(99.9).unwrap_or(1) as f64;
    let hw_tail = hw.percentile(99.9).unwrap_or(1) as f64;
    println!(
        "\nThe paper's observation: GC pauses create stragglers orders of magnitude \
         above the median.\nShorter hardware-GC pauses cut the p99.9 tail by {:.1}x here.",
        sw_tail / hw_tail
    );
}
