//! Concurrent-GC barriers (§IV-D): a mutator keeps running while pages
//! relocate, protected by the paper's coherence-protocol read barrier —
//! no traps, no pipeline flushes.
//!
//! ```text
//! cargo run --release -p tracegc --example concurrent_barriers
//! ```

use tracegc::heap::{Heap, HeapConfig, ObjRef};
use tracegc::hwgc::barrier::{BarrierCosts, BarrierModel, ForwardingState};
use tracegc::vmem::PAGE_SIZE;

fn main() {
    println!("concurrent-GC read/write barriers (paper §IV-D, Fig. 9)\n");

    // A small heap with two pages of objects.
    let mut heap = Heap::new(HeapConfig {
        phys_bytes: 64 << 20,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..2000)
        .map(|i| heap.alloc(1, (i % 4) as u32, false).expect("fits"))
        .collect();
    for w in objs.windows(2) {
        heap.set_ref(w[0], 0, Some(w[1]));
    }
    heap.set_roots(&[objs[0]]);

    // The "reclamation unit" relocates the page holding a slice of the
    // objects; the forwarding state records old -> new addresses.
    let victim_page = objs[100].addr() / PAGE_SIZE * PAGE_SIZE;
    let moved: Vec<(ObjRef, ObjRef)> = objs
        .iter()
        .filter(|o| o.addr() / PAGE_SIZE == victim_page / PAGE_SIZE)
        .map(|&old| {
            let new = heap.alloc(1, 0, false).expect("fits");
            // Evacuation copies the object's contents to the new cell.
            let target = heap.get_ref(old, 0);
            heap.set_ref(new, 0, target);
            (old, new)
        })
        .collect();
    println!(
        "relocating page {victim_page:#x}: {} objects get new addresses",
        moved.len()
    );
    let mut fwd = ForwardingState::new();
    fwd.relocate_page(victim_page, &moved);

    // The mutator traverses the list, read-barriering every loaded
    // reference (REFLOAD semantics), and write-barriering one update.
    let mut barriers = BarrierModel::new(BarrierCosts::default());
    let mut forwarded = 0;
    let mut cursor = objs[0];
    for _ in 0..objs.len() - 1 {
        let Some(loaded) = heap.get_ref(cursor, 0) else {
            break;
        };
        let checked = barriers.read_barrier(&mut fwd, loaded);
        if checked != loaded {
            forwarded += 1;
            // The mutator heals the stale reference, write-barriering
            // the overwrite so the traversal unit re-marks through it.
            let old = heap.get_ref(cursor, 0);
            barriers.write_barrier(old);
            heap.set_ref(cursor, 0, Some(checked));
        }
        cursor = checked;
    }

    let s = barriers.stats();
    println!(
        "\nmutator executed {} read barriers:",
        s.read_fast + s.read_slow_acquire + s.read_slow_hit
    );
    println!("  fast path (zero page)      : {}", s.read_fast);
    println!("  slow path (line acquire)   : {}", s.read_slow_acquire);
    println!("  slow path (acquired line)  : {}", s.read_slow_hit);
    println!("  stale references healed    : {forwarded}");
    println!("  write barriers             : {}", s.writes);
    println!("  total barrier cycles       : {}", s.cycles);
    println!(
        "  trap-based equivalent      : {} ({:.1}x worse)",
        barriers.trap_equivalent_cycles(),
        barriers.trap_equivalent_cycles() as f64 / s.cycles.max(1) as f64
    );
    fwd.finish_page(victim_page);
    println!("\npage relocation finished; barriers back to pure fast-path.");
}
