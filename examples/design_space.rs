//! Walk the accelerator's design space the way §VI-B does: mark-queue
//! size, compression, mark-bit cache, sweeper count and cache topology —
//! and see the area cost of each choice next to its performance.
//!
//! ```text
//! cargo run --release -p tracegc --example design_space
//! ```

use tracegc::heap::LayoutKind;
use tracegc::hwgc::{CacheTopology, GcUnitConfig};
use tracegc::model::area::gc_unit_area;
use tracegc::runner::{run_unit_gc, MemKind};
use tracegc::sim::cycles_to_ms;
use tracegc::workloads::spec::by_name;

fn measure(label: &str, cfg: GcUnitConfig) {
    let spec = by_name("avrora").expect("avrora exists").scaled(0.15);
    let run = run_unit_gc(
        &spec,
        LayoutKind::Bidirectional,
        cfg,
        MemKind::ddr3_default(),
    );
    let area = gc_unit_area(&cfg);
    println!(
        "{label:<26} mark {:>6.3} ms  sweep {:>6.3} ms  spills {:>5}  area {:>5.3} mm^2",
        cycles_to_ms(run.report.mark.cycles()),
        cycles_to_ms(run.report.sweep.cycles()),
        run.report.mark.markq.spill_writes + run.report.mark.markq.spill_reads,
        area.total(),
    );
}

fn main() {
    println!("GC-unit design space on avrora (DDR3, Table I)\n");
    let base = GcUnitConfig::default();

    measure("baseline (paper VI-A)", base);
    measure(
        "tiny mark queue (128)",
        GcUnitConfig {
            markq_entries: 128,
            ..base
        },
    );
    measure(
        "huge mark queue (16k)",
        GcUnitConfig {
            markq_entries: 16 * 1024,
            ..base
        },
    );
    measure(
        "compressed refs",
        GcUnitConfig {
            compress: true,
            ..base
        },
    );
    measure(
        "mark-bit cache (64)",
        GcUnitConfig {
            markbit_cache: 64,
            ..base
        },
    );
    measure(
        "4 sweepers",
        GcUnitConfig {
            sweepers: 4,
            ..base
        },
    );
    measure(
        "8 sweepers",
        GcUnitConfig {
            sweepers: 8,
            ..base
        },
    );
    measure(
        "shared cache (pre-V-C)",
        GcUnitConfig {
            topology: CacheTopology::Shared,
            ..base
        },
    );
    measure(
        "4 marker slots",
        GcUnitConfig {
            marker_slots: 4,
            ..base
        },
    );
    measure(
        "8-entry tracer queue",
        GcUnitConfig {
            tracer_queue: 8,
            ..base
        },
    );

    println!(
        "\nObservations to look for (paper §VI-B): the mark queue can shrink a lot \
         without hurting\nperformance (spilling absorbs overflow), compression halves \
         spill traffic, sweeper scaling\nsaturates, and the shared-cache topology is \
         crippled by PTW contention."
    );
}
