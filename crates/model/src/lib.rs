//! Analytic area, power and energy models (Figs. 22–23).
//!
//! The paper synthesized the unit with Synopsys DC against the SAED
//! EDK 32/28 standard-cell library for "ballpark estimates" of area, and
//! combined DC power numbers with DRAM counters run through Micron's
//! DDR3 power calculator for energy. We reproduce that methodology with
//! published per-bit constants:
//!
//! * SRAM density and flip-flop overhead factors calibrated so the
//!   default unit configuration lands on the paper's headline — the GC
//!   unit is **18.5% the area of the Rocket core**, "comparable to the
//!   area of 64 KB of SRAM", with the mark queue the largest block
//!   (Fig. 22c);
//! * a DRAM energy model with background power, per-activate energy and
//!   per-bit transfer energy, driven by the simulator's actual DDR3
//!   counters (activates, bytes, duration) — so Fig. 23's result (the
//!   unit draws *more* DRAM power but less total *energy*) emerges from
//!   measured activity, not assumptions.

pub mod area;
pub mod energy;

pub use area::{gc_unit_area, l2_area, rocket_core_area, AreaBreakdown};
pub use energy::{Agent, EnergyEstimate, EnergyModel};
