//! Area model (Fig. 22), parameterized by the unit configuration.
//!
//! Constants approximate the SAED EDK 32/28 library the paper used:
//! dense SRAM macros for caches, flip-flop-based storage (several times
//! less dense) for the unit's queues and CAM-style TLBs, plus per-block
//! control-logic constants. At the default configuration the unit totals
//! ≈0.50 mm² — 18.5% of the ≈2.7 mm² Rocket core, "an amount equivalent
//! to 64 KB of SRAM" (§I, Fig. 22).

use tracegc_hwgc::GcUnitConfig;

/// mm² per KiB of SRAM macro at the modelled 32/28 nm node.
pub const SRAM_MM2_PER_KB: f64 = 0.0078;
/// Flip-flop storage (queues, request slots) is several times less
/// dense than SRAM macros.
pub const FLOP_FACTOR: f64 = 3.5;
/// CAM storage (fully associative TLBs) costs even more per bit.
pub const CAM_FACTOR: f64 = 5.0;

/// A named area breakdown in mm².
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// `(component, mm²)` pairs in display order.
    pub components: Vec<(String, f64)>,
}

impl AreaBreakdown {
    /// Total area in mm².
    pub fn total(&self) -> f64 {
        self.components.iter().map(|c| c.1).sum()
    }

    /// Area of a named component (0.0 if absent).
    pub fn component(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|c| c.0 == name)
            .map_or(0.0, |c| c.1)
    }

    /// The largest component by area.
    pub fn largest(&self) -> &str {
        self.components
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|c| c.0.as_str())
            .unwrap_or("")
    }
}

fn sram_kb(kb: f64) -> f64 {
    kb * SRAM_MM2_PER_KB
}

fn flop_bytes(bytes: f64) -> f64 {
    bytes / 1024.0 * SRAM_MM2_PER_KB * FLOP_FACTOR
}

fn cam_bytes(bytes: f64) -> f64 {
    bytes / 1024.0 * SRAM_MM2_PER_KB * CAM_FACTOR
}

/// TLB area: entries of ~16 bytes (tag + data) in CAM cells plus a
/// small comparator/control constant.
fn tlb_area(entries: usize) -> f64 {
    cam_bytes(entries as f64 * 16.0) + 0.004
}

/// The Rocket core breakdown of Fig. 22b (16 KiB I- and D-caches,
/// frontend, integer/FP pipelines). The L2 is reported separately, as in
/// Fig. 22a.
pub fn rocket_core_area() -> AreaBreakdown {
    let l1d = sram_kb(16.0) * 1.5 + 0.30; // data + tags/ECC + control
    let frontend = sram_kb(16.0) * 1.5 + 0.35; // I$ + fetch/branch
    let other = 1.60; // int/FP pipelines, CSRs, etc.
    AreaBreakdown {
        components: vec![
            ("l1-dcache".into(), l1d),
            ("frontend".into(), frontend),
            ("other".into(), other),
        ],
    }
}

/// The 256 KiB L2 of Table I, in mm².
pub fn l2_area() -> f64 {
    sram_kb(256.0) * 1.2 // data + tags
}

/// The GC unit breakdown of Fig. 22c, computed from the configuration.
pub fn gc_unit_area(cfg: &GcUnitConfig) -> AreaBreakdown {
    // Mark queue: flip-flop storage for main + side queues, plus the
    // spill state machine.
    let markq = flop_bytes(cfg.markq_sram_bytes() as f64) * 1.08 + 0.015;
    // Tracer: its TLB, the request generator and the tracer queue.
    let entry = if cfg.compress { 4.0 } else { 8.0 };
    let tracer =
        tlb_area(cfg.tlb.l1_entries) + flop_bytes(cfg.tracer_queue as f64 * (entry + 4.0)) + 0.006;
    // Marker: its TLB and the tag/address request slots (Fig. 13).
    let marker = tlb_area(cfg.tlb.l1_entries) + flop_bytes(cfg.marker_slots as f64 * 12.0) + 0.004;
    // PTW: shared L2 TLB (set-associative SRAM, not CAM) plus the
    // 8 KiB PTW cache.
    let l2_tlb = cfg.tlb.l2_entries as f64 * 16.0 / 1024.0 * SRAM_MM2_PER_KB * 2.0;
    let ptw = l2_tlb + sram_kb(cfg.tlb.ptw_cache.size_bytes as f64 / 1024.0) * 1.1 + 0.004;
    // Block sweepers are tiny state machines; "a large part of the
    // design is the cross-bar that connects them" (§IV-B).
    let sweeper = 0.004 * cfg.sweepers as f64 + 0.002 * (cfg.sweepers * cfg.sweepers) as f64 / 4.0;
    // MMIO, arbitration, misc control.
    let other = 0.015;
    let mut components = vec![
        ("mark-queue".into(), markq),
        ("tracer".into(), tracer),
        ("marker".into(), marker),
        ("ptw".into(), ptw),
        ("sweeper".into(), sweeper),
        ("other".into(), other),
    ];
    if cfg.markbit_cache > 0 {
        components.push((
            "markbit-cache".into(),
            cam_bytes(cfg.markbit_cache as f64 * 9.0),
        ));
    }
    AreaBreakdown { components }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_unit_is_about_18_5_percent_of_rocket() {
        let unit = gc_unit_area(&GcUnitConfig::default()).total();
        let core = rocket_core_area().total();
        let ratio = unit / core;
        assert!(
            (0.15..=0.22).contains(&ratio),
            "unit/core = {ratio:.3} (unit {unit:.3} mm², core {core:.3} mm²)"
        );
    }

    #[test]
    fn default_unit_is_about_64kb_of_sram() {
        let unit = gc_unit_area(&GcUnitConfig::default()).total();
        let sram64 = 64.0 * SRAM_MM2_PER_KB;
        assert!(
            (unit / sram64 - 1.0).abs() < 0.35,
            "unit {unit:.3} vs 64KB SRAM {sram64:.3}"
        );
    }

    #[test]
    fn mark_queue_is_the_largest_unit_block() {
        let unit = gc_unit_area(&GcUnitConfig::default());
        assert_eq!(unit.largest(), "mark-queue");
    }

    #[test]
    fn bigger_mark_queue_grows_the_unit() {
        let small = gc_unit_area(&GcUnitConfig::default()).total();
        let big = gc_unit_area(&GcUnitConfig {
            markq_entries: 16 * 1024,
            ..GcUnitConfig::default()
        })
        .total();
        assert!(big > small * 2.0);
    }

    #[test]
    fn compression_shrinks_the_mark_queue() {
        let full = gc_unit_area(&GcUnitConfig::default());
        let compressed = gc_unit_area(&GcUnitConfig {
            compress: true,
            ..GcUnitConfig::default()
        });
        assert!(compressed.component("mark-queue") < full.component("mark-queue"));
    }

    #[test]
    fn more_sweepers_cost_quadratic_crossbar() {
        let two = gc_unit_area(&GcUnitConfig::default()).component("sweeper");
        let eight = gc_unit_area(&GcUnitConfig {
            sweepers: 8,
            ..GcUnitConfig::default()
        })
        .component("sweeper");
        assert!(eight > two * 4.0, "crossbar should grow superlinearly");
    }

    #[test]
    fn l2_is_comparable_to_the_core() {
        // Fig. 22a: the 256 KiB L2 macro is of the same order as the
        // whole Rocket core.
        let ratio = l2_area() / rocket_core_area().total();
        assert!((0.6..=1.4).contains(&ratio), "l2/core = {ratio:.2}");
    }

    #[test]
    fn breakdown_component_lookup() {
        let core = rocket_core_area();
        assert!(core.component("l1-dcache") > 0.0);
        assert_eq!(core.component("nonexistent"), 0.0);
    }
}
