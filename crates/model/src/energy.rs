//! Power and energy model (Fig. 23).
//!
//! Methodology follows §VI-C: "we collected DRAM-level counters for the
//! GC pauses and ran them through MICRON's DDR3 Power Calculator
//! spreadsheet. Power numbers for the GC unit and processor were taken
//! from Design Compiler. Using these power numbers and execution times,
//! we calculate the total energy." The paper concludes the unit's DRAM
//! power is much higher (it sustains more bandwidth) but total energy is
//! ~14.5% lower.

use tracegc_sim::{Cycle, CLOCK_HZ};

/// Which compute agent performed the GC phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agent {
    /// The Rocket in-order core running the software collector.
    RocketCore,
    /// The GC accelerator.
    GcUnit,
}

/// Energy/power constants (defaults: DC estimates for the 32/28 nm node
/// plus Micron-calculator-style DDR3 coefficients).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Nominal active power of the Rocket core in mW.
    pub core_active_mw: f64,
    /// Activity factor of the core while running GC: the mark loop is
    /// memory-bound, so the in-order core spends most cycles stalled
    /// (the paper's DC numbers lack activity counters; Fig. 23 shows a
    /// GC-time core power well below nominal).
    pub core_gc_activity: f64,
    /// Active power of the GC unit in mW.
    pub unit_active_mw: f64,
    /// DRAM background (standby + refresh) power in mW.
    pub dram_background_mw: f64,
    /// Energy per DRAM access — command/IO energy with the activate
    /// amortized in, largely independent of the transfer size, which is
    /// why the unit's many small requests cost it DRAM *power* — in nJ.
    pub access_nj: f64,
    /// Energy per DRAM activate command in nJ.
    pub activate_nj: f64,
    /// Transfer energy per byte moved, in nJ.
    pub transfer_nj_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            core_active_mw: 300.0,
            core_gc_activity: 0.35,
            unit_active_mw: 40.0,
            dram_background_mw: 80.0,
            access_nj: 9.0,
            activate_nj: 2.0,
            transfer_nj_per_byte: 0.02,
        }
    }
}

/// One phase's energy estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Compute-side energy in mJ.
    pub compute_mj: f64,
    /// DRAM energy (background + activates + transfers) in mJ.
    pub dram_mj: f64,
    /// Average DRAM power over the phase in mW.
    pub dram_power_mw: f64,
    /// Phase duration in milliseconds.
    pub duration_ms: f64,
}

impl EnergyEstimate {
    /// Total energy in mJ.
    pub fn total_mj(&self) -> f64 {
        self.compute_mj + self.dram_mj
    }

    /// Average total power in mW.
    pub fn total_power_mw(&self) -> f64 {
        if self.duration_ms == 0.0 {
            0.0
        } else {
            self.total_mj() / (self.duration_ms / 1000.0)
        }
    }
}

impl EnergyModel {
    /// Estimates the energy of a GC phase from the simulator's activity
    /// counters.
    pub fn pause_energy(
        &self,
        agent: Agent,
        cycles: Cycle,
        bytes_transferred: u64,
        requests: u64,
        activates: u64,
    ) -> EnergyEstimate {
        let seconds = cycles as f64 / CLOCK_HZ as f64;
        let compute_mw = match agent {
            Agent::RocketCore => self.core_active_mw * self.core_gc_activity,
            Agent::GcUnit => self.unit_active_mw,
        };
        let compute_mj = compute_mw * seconds;
        let dram_mj = self.dram_background_mw * seconds
            + requests as f64 * self.access_nj * 1e-6
            + activates as f64 * self.activate_nj * 1e-6
            + bytes_transferred as f64 * self.transfer_nj_per_byte * 1e-6;
        let duration_ms = seconds * 1e3;
        let dram_power_mw = if seconds > 0.0 {
            dram_mj / seconds
        } else {
            0.0
        };
        EnergyEstimate {
            compute_mj,
            dram_mj,
            dram_power_mw,
            duration_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Cycle = 1_000_000; // cycles per ms at 1 GHz

    #[test]
    fn faster_unit_with_same_traffic_uses_less_energy() {
        let m = EnergyModel::default();
        // Same bytes/activates, unit finishes 4x faster.
        let cpu = m.pause_energy(Agent::RocketCore, 40 * MS, 100 << 20, 800_000, 200_000);
        let unit = m.pause_energy(Agent::GcUnit, 10 * MS, 100 << 20, 800_000, 200_000);
        assert!(unit.total_mj() < cpu.total_mj());
    }

    #[test]
    fn unit_dram_power_is_higher_when_bandwidth_is_higher() {
        // Fig. 23: "Due to its higher bandwidth, the GC Unit's DRAM
        // power is much higher, but the overall energy is still lower."
        let m = EnergyModel::default();
        let cpu = m.pause_energy(Agent::RocketCore, 40 * MS, 100 << 20, 800_000, 200_000);
        let unit = m.pause_energy(Agent::GcUnit, 10 * MS, 100 << 20, 800_000, 200_000);
        assert!(unit.dram_power_mw > cpu.dram_power_mw);
        assert!(unit.total_mj() < cpu.total_mj());
    }

    #[test]
    fn energy_scales_with_duration() {
        let m = EnergyModel::default();
        let short = m.pause_energy(Agent::RocketCore, MS, 0, 0, 0);
        let long = m.pause_energy(Agent::RocketCore, 10 * MS, 0, 0, 0);
        assert!((long.total_mj() / short.total_mj() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_and_activates_add_energy() {
        let m = EnergyModel::default();
        let idle = m.pause_energy(Agent::GcUnit, MS, 0, 0, 0);
        let busy = m.pause_energy(Agent::GcUnit, MS, 10 << 20, 200_000, 50_000);
        assert!(busy.dram_mj > idle.dram_mj);
        assert!(busy.compute_mj == idle.compute_mj);
    }

    #[test]
    fn total_power_is_energy_over_time() {
        let m = EnergyModel::default();
        let e = m.pause_energy(Agent::RocketCore, 2 * MS, 1 << 20, 16_000, 1000);
        let expected = e.total_mj() / 0.002;
        assert!((e.total_power_mw() - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_is_safe() {
        let m = EnergyModel::default();
        let e = m.pause_energy(Agent::GcUnit, 0, 0, 0, 0);
        assert_eq!(e.total_mj(), 0.0);
        assert_eq!(e.total_power_mw(), 0.0);
    }
}
