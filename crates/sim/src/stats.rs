//! Measurement instruments: counters, histograms, latency percentiles and
//! windowed bandwidth meters.
//!
//! Each of the paper's evaluation figures is driven by one of these
//! instruments: Fig. 16's bandwidth-over-time plot by [`BandwidthMeter`],
//! Fig. 21a's object-access-frequency histogram by [`Histogram`], and
//! Fig. 1b's query-latency CDF by [`LatencyRecorder`].

use crate::Cycle;

/// A named monotonic event counter.
///
/// # Examples
///
/// ```
/// use tracegc_sim::Counter;
///
/// let mut marks = Counter::default();
/// marks.add(3);
/// marks.inc();
/// assert_eq!(marks.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A linear-binned histogram over `u64` samples.
///
/// Samples beyond the last bin are accumulated in an overflow bin so no
/// event is ever lost.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of `bin_width` each, covering
    /// `[0, bins * bin_width)`, plus an overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` or `bins` is zero.
    pub fn new(bin_width: u64, bins: usize) -> Self {
        assert!(bin_width > 0, "bin width must be non-zero");
        assert!(bins > 0, "bin count must be non-zero");
        Self {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sample count in the bin covering `[i*w, (i+1)*w)`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins.get(i).copied().unwrap_or(0)
    }

    /// Sample count beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(lower_bound, count)` pairs for every non-empty bin.
    pub fn nonzero_bins(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64 * self.bin_width, c))
            .collect()
    }
}

/// Records individual latency samples and reports percentiles and CDFs.
///
/// Used for the paper's Fig. 1b (query latency CDF under GC pauses).
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (in any consistent unit).
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (0.0 ..= 100.0) by nearest-rank, or `None` when
    /// empty.
    ///
    /// Nearest-rank: the value at rank `ceil(p/100 · n)` (1-based) of the
    /// sorted samples. Endpoints: `p = 0` returns the smallest sample
    /// (the rank is clamped to at least 1) and `p = 100` returns the
    /// largest.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.clamp(1, n) - 1])
    }

    /// The full cumulative distribution as `(value, fraction ≤ value)`
    /// pairs, one per distinct sample value.
    pub fn cdf(&mut self) -> Vec<(u64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let v = self.samples[i];
            let mut j = i;
            while j < n && self.samples[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Mean of all samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
        }
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }
}

/// Accumulates bytes transferred into fixed-width time windows, producing
/// the bandwidth-over-time series of Fig. 16.
///
/// # Examples
///
/// ```
/// use tracegc_sim::BandwidthMeter;
///
/// let mut meter = BandwidthMeter::new(1000); // 1000-cycle windows
/// meter.record(10, 64);
/// meter.record(1500, 64);
/// let series = meter.series_gbps();
/// assert_eq!(series.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthMeter {
    window: Cycle,
    bytes_per_window: Vec<u64>,
    total_bytes: u64,
    last_cycle: Cycle,
}

impl BandwidthMeter {
    /// Creates a meter with `window`-cycle accumulation windows.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0, "window must be non-zero");
        Self {
            window,
            bytes_per_window: Vec::new(),
            total_bytes: 0,
            last_cycle: 0,
        }
    }

    /// Records `bytes` transferred at `cycle`.
    pub fn record(&mut self, cycle: Cycle, bytes: u64) {
        let idx = (cycle / self.window) as usize;
        if idx >= self.bytes_per_window.len() {
            self.bytes_per_window.resize(idx + 1, 0);
        }
        self.bytes_per_window[idx] += bytes;
        self.total_bytes += bytes;
        self.last_cycle = self.last_cycle.max(cycle);
    }

    /// Total bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The accumulation window size in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// Bandwidth per window in GB/s at the 1 GHz clock (bytes / window
    /// cycles, scaled).
    pub fn series_gbps(&self) -> Vec<f64> {
        self.bytes_per_window
            .iter()
            .map(|&b| b as f64 / self.window as f64) // bytes per cycle == GB/s at 1 GHz
            .collect()
    }

    /// Average bandwidth in GB/s over the inclusive `[0, last_cycle]`
    /// span — `last_cycle + 1` cycles, so bytes recorded only at cycle 0
    /// still report a finite rate.
    pub fn average_gbps(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.total_bytes as f64 / (self.last_cycle + 1) as f64
        }
    }

    /// Peak single-window bandwidth in GB/s.
    ///
    /// Each window's rate is its bytes over its *elapsed* span: full
    /// windows span `window` cycles, but the final window only spans
    /// `last_cycle + 1 − start` cycles. This makes the peak an upper
    /// bound on [`average_gbps`](Self::average_gbps) (the average is a
    /// span-weighted mean of exactly these per-window rates), where a
    /// full-window denominator would understate a barely-started final
    /// window.
    pub fn peak_gbps(&self) -> f64 {
        let n = self.bytes_per_window.len();
        self.bytes_per_window
            .iter()
            .enumerate()
            .fold(0.0, |peak, (i, &b)| {
                let span = if i + 1 == n {
                    self.last_cycle + 1 - i as Cycle * self.window
                } else {
                    self.window
                };
                f64::max(peak, b as f64 / span as f64)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(10, 4);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(39);
        h.record(40); // overflow
        assert_eq!(h.bin(0), 2);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.bin(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(1, 8);
        h.record(2);
        h.record(4);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn histogram_nonzero_bins() {
        let mut h = Histogram::new(5, 4);
        h.record(7);
        h.record(8);
        let nz = h.nonzero_bins();
        assert_eq!(nz, vec![(5, 2)]);
    }

    #[test]
    fn latency_percentiles() {
        let mut r = LatencyRecorder::new();
        for v in 1..=100 {
            r.record(v);
        }
        assert_eq!(r.percentile(0.0), Some(1));
        assert_eq!(r.percentile(100.0), Some(100));
        assert_eq!(r.percentile(50.0), Some(50)); // nearest-rank: ceil(0.5 * 100) = rank 50
        assert_eq!(r.percentile(99.0), Some(99));
        assert_eq!(r.percentile(99.9), Some(100)); // ceil(99.9) = rank 100
        assert_eq!(r.max(), Some(100));
    }

    #[test]
    fn latency_percentile_is_true_nearest_rank() {
        // The regression from the old linear-index rounding: on [1, 2],
        // p50 must be the rank-1 sample (ceil(0.5 * 2) = 1), not 2.
        let mut r = LatencyRecorder::new();
        r.record(2);
        r.record(1);
        assert_eq!(r.percentile(50.0), Some(1));
        assert_eq!(r.percentile(50.1), Some(2));
        assert_eq!(r.percentile(0.0), Some(1));
        assert_eq!(r.percentile(100.0), Some(2));
    }

    #[test]
    fn latency_cdf_is_monotone_and_ends_at_one() {
        let mut r = LatencyRecorder::new();
        for v in [5u64, 1, 5, 9, 1] {
            r.record(v);
        }
        let cdf = r.cdf();
        assert_eq!(cdf.first().unwrap().0, 1);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn latency_empty_is_safe() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.percentile(50.0), None);
        assert_eq!(r.mean(), 0.0);
    }

    #[test]
    fn bandwidth_meter_windows() {
        let mut m = BandwidthMeter::new(100);
        m.record(0, 50);
        m.record(99, 50);
        m.record(100, 200);
        let s = m.series_gbps();
        assert_eq!(s.len(), 2);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert_eq!(m.total_bytes(), 300);
        // The second window has elapsed for exactly one cycle (cycle 100),
        // so its peak rate is 200 B/cycle, not 200 B / 100 cycles.
        assert!((m.peak_gbps() - 200.0).abs() < 1e-12);
        // Average spans [0, 100] inclusive: 300 bytes over 101 cycles.
        assert!((m.average_gbps() - 300.0 / 101.0).abs() < 1e-12);
        assert!(m.average_gbps() <= m.peak_gbps());
    }

    #[test]
    fn bandwidth_meter_cycle_zero_only() {
        // Regression: bytes recorded only at cycle 0 used to divide by
        // last_cycle == 0 and report 0.0 GB/s.
        let mut m = BandwidthMeter::new(100);
        m.record(0, 64);
        assert!((m.average_gbps() - 64.0).abs() < 1e-12);
        assert!((m.peak_gbps() - 64.0).abs() < 1e-12);

        let empty = BandwidthMeter::new(100);
        assert_eq!(empty.average_gbps(), 0.0);
        assert_eq!(empty.peak_gbps(), 0.0);
    }
}
