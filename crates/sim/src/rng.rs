//! In-tree deterministic pseudo-random number generation.
//!
//! The whole project must build and test with zero external crates (the
//! evaluation environment has no access to a registry), so the seeded
//! randomness behind the synthetic workloads lives here instead of in
//! `rand`:
//!
//! * [`SplitMix64`] — the standard 64-bit seed expander; turns one `u64`
//!   seed into a well-mixed stream, used to initialize the main
//!   generator (and fine as a tiny standalone RNG).
//! * [`Xoshiro256PlusPlus`] — Blackman & Vigna's xoshiro256++ 1.0, the
//!   project's general-purpose generator (aliased as [`StdRng`]).
//! * [`Rng`] — the trait the distribution samplers in [`crate::dist`]
//!   and the workload generators are written against, with typed
//!   [`Rng::random`] and [`Rng::random_range`] helpers.
//!
//! Everything is deterministic: the same seed always yields the same
//! sequence, on every platform, forever — checked against the reference
//! xoshiro256++ test vectors below. That determinism is what makes every
//! figure in EXPERIMENTS.md and the golden CSVs under `tests/golden/`
//! byte-reproducible.
//!
//! # Examples
//!
//! ```
//! use tracegc_sim::rng::{Rng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! let v = rng.random_range(10u64..20);
//! assert!((10..20).contains(&v));
//! ```

use std::ops::Range;

/// A deterministic source of uniformly distributed `u64`s.
///
/// The provided methods give typed uniform values ([`Rng::random`]) and
/// unbiased integer ranges ([`Rng::random_range`]); implementors only
/// supply [`Rng::next_u64`].
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value of type `T` (`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns a uniformly distributed integer in `range` (half-open,
    /// unbiased via Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types that can be sampled uniformly from an [`Rng`]'s raw bits.
pub trait Standard {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the full 53-bit mantissa resolution.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Copy {
    /// Draws a uniformly distributed value in `range`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased `[0, span)` via Lemire's widening-multiply rejection method.
fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = rng.next_u64() as u128 * span as u128;
    if (m as u64) < span {
        // Reject the sliver that would bias low residues.
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = rng.next_u64() as u128 * span as u128;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

/// Sebastiano Vigna's SplitMix64: the canonical one-`u64`-seed expander.
///
/// Every output of the underlying mix function is distinct over the full
/// 2^64 period, which makes it the recommended initializer for the
/// xoshiro family (it cannot hand out the forbidden all-zero state
/// unless fed 4 consecutive zero outputs, which the mix prevents from
/// clustering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): 256 bits of state, period
/// 2^256 − 1, excellent statistical quality, a handful of shifts and
/// rotates per output.
///
/// This is the project's standard generator, seeded through
/// [`SplitMix64`] as its authors recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// The project-wide default generator (the name call sites use).
pub type StdRng = Xoshiro256PlusPlus;

impl Xoshiro256PlusPlus {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let s = [
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
        ];
        Self::from_state(s)
    }

    /// Builds the generator from an explicit state (test vectors).
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which is the one fixed point of the
    /// transition function.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Self { s }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference sequence for seed 1234567 from Vigna's splitmix64.c.
        let mut rng = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_reference_vectors() {
        // First outputs for state {1, 2, 3, 4}, from the reference C
        // implementation of xoshiro256++ 1.0.
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                41943041,
                58720359,
                3588806011781223,
                3591011842654386,
                9228616714210784205,
                9973669472204895162,
            ]
        );
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43));
        assert_ne!(seq(0), seq(1)); // sparse seeds still diverge
    }

    #[test]
    fn f64_stays_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_range_is_in_bounds_and_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn random_range_supports_the_projects_integer_types() {
        let mut rng = StdRng::seed_from_u64(11);
        let a: u32 = rng.random_range(8u32..96);
        let b: u64 = rng.random_range(5u64..9);
        let c: usize = rng.random_range(0usize..3);
        assert!((8..96).contains(&a));
        assert!((5..9).contains(&b));
        assert!(c < 3);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u64..5);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(13);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4500..5500).contains(&trues), "trues {trues}");
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let direct = draw(&mut rng);
        let mut again = StdRng::seed_from_u64(3);
        assert_eq!(direct, again.next_u64());
    }
}
