//! Deterministic cycle-level simulation primitives shared by every `tracegc`
//! crate.
//!
//! The tracegc project models the ISCA 2018 garbage-collection accelerator as
//! a set of explicitly ticked state machines operating against a timestamped
//! memory system. This crate provides the vocabulary those models share:
//!
//! * [`Cycle`] — the global clock domain (1 GHz in the paper's Table I).
//! * [`BoundedQueue`] — a fixed-capacity FIFO with back-pressure, the direct
//!   analogue of a Chisel `Queue`.
//! * [`stats`] — counters, histograms, latency percentiles and windowed
//!   bandwidth time series used to regenerate the paper's figures.
//! * [`metrics`] — cycle-attributed observability: [`StallReason`]-keyed
//!   stall accounting, a bounded [`EventTrace`] ring, and the
//!   [`MetricSet`] registry behind the harness's JSON sidecars.
//! * [`rng`] — the in-tree deterministic PRNG (SplitMix64-seeded
//!   xoshiro256++); the project has no external dependencies, so all
//!   randomness flows through this module.
//! * [`dist`] — seeded random distributions (uniform, log-normal, Zipf) used
//!   by the synthetic DaCapo workload generators.
//! * [`fault`] — seeded deterministic fault injection ([`FaultPlan`],
//!   per-site [`FaultInjector`]s) and the structured [`SimError`] every
//!   `run_*` driver degrades into instead of panicking.
//! * [`fleet`] — fleet-scale multi-tenant GC request queueing: a
//!   seeded open-loop arrival process, bounded admission, pluggable
//!   scheduling policies and trace-driven replay of measured per-tenant
//!   mark service times over shared traversal units.
//! * [`sched`] — the SoC composition layer: the cycle-stepped
//!   [`Engine`] trait and the [`Scheduler`] that ticks arbitrary engine
//!   sets on one shared clock under a pluggable [`Policy`].
//!
//! Everything in this crate is deterministic: given the same seed and the
//! same sequence of calls, the results are bit-identical.
//!
//! # Examples
//!
//! ```
//! use tracegc_sim::BoundedQueue;
//!
//! let mut q: BoundedQueue<u64> = BoundedQueue::new(2);
//! assert!(q.try_push(1).is_ok());
//! assert!(q.try_push(2).is_ok());
//! assert!(q.try_push(3).is_err()); // back-pressure
//! assert_eq!(q.pop(), Some(1));
//! ```

pub mod dist;
pub mod fault;
pub mod fleet;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stats;

pub use fault::{
    EccOutcome, FaultConfig, FaultInjector, FaultPlan, FaultSite, FaultStats, SimError,
};
pub use fleet::{Completion, FleetConfig, FleetPolicy, FleetStats, TenantProfile};
pub use metrics::{EventTrace, MetricSet, StallAccounting, StallReason, TraceEvent};
pub use queue::BoundedQueue;
pub use rng::{Rng, SplitMix64, StdRng};
pub use sched::{
    default_exec, default_pacing, run_partitions, set_default_exec, set_default_pacing, with_exec,
    with_pacing, Engine, Exec, Pacing, Partition, Policy, Progress, Scheduler, SocReport,
};
pub use stats::{BandwidthMeter, Counter, Histogram, LatencyRecorder};

/// A point in simulated time, measured in core clock cycles.
///
/// The paper's SoC runs at 1 GHz, so one cycle is one nanosecond; helper
/// conversions live in [`cycles_to_ms`] and [`ns`].
pub type Cycle = u64;

/// The simulated core clock frequency in Hz (1 GHz, per Table I).
pub const CLOCK_HZ: u64 = 1_000_000_000;

/// Converts a cycle count to milliseconds at the simulated 1 GHz clock.
///
/// # Examples
///
/// ```
/// assert_eq!(tracegc_sim::cycles_to_ms(2_000_000), 2.0);
/// ```
pub fn cycles_to_ms(cycles: Cycle) -> f64 {
    cycles as f64 * 1e3 / CLOCK_HZ as f64
}

/// Converts a duration in nanoseconds to cycles at the simulated 1 GHz clock.
///
/// # Examples
///
/// ```
/// assert_eq!(tracegc_sim::ns(14), 14);
/// ```
pub const fn ns(nanos: u64) -> Cycle {
    // 1 GHz: one cycle per nanosecond.
    nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_ms_converts_at_one_ghz() {
        assert_eq!(cycles_to_ms(0), 0.0);
        assert_eq!(cycles_to_ms(1_000_000_000), 1000.0);
        assert!((cycles_to_ms(1234) - 0.001234).abs() < 1e-12);
    }

    #[test]
    fn ns_is_identity_at_one_ghz() {
        assert_eq!(ns(0), 0);
        assert_eq!(ns(47), 47);
    }
}
