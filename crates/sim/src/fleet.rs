//! Fleet-scale GC request queueing: N tenant heaps sharing K traversal
//! units (ROADMAP item 4, the production version of §VII's
//! multi-process story).
//!
//! The paper shows one traversal unit serving multiple processes over
//! shared DDR3; a deployment runs the other direction — hundreds of
//! tenant heaps queueing on a few units. This module models that layer
//! *as scheduled engines* on the same clock discipline as the SoC
//! models: an arrival engine replays a seeded open-loop arrival
//! process (per-tenant exponential interarrivals) into a bounded
//! admission queue, and one server engine per traversal unit drains
//! it under a pluggable [`FleetPolicy`].
//!
//! Service times are **trace-driven**: each tenant's mark was measured
//! cycle-exactly beforehand (clean, faulted and §VII-throttled variants
//! — see the harness's `run_faulted_mark_stream`), and the queueing
//! layer replays those measured [`TenantProfile`]s. Cross-tenant DDR3
//! contention is applied at dispatch: a unit dispatching onto a channel
//! with `b` busy units serves at `b + 1` × the tenant's solo service
//! time ([`FleetPolicy::Partitioned`] instead replays the throttled
//! measurement with no contention factor — bandwidth partitioning buys
//! isolation at the cost of a slower solo mark).
//!
//! Everything is deterministic: arrivals are a pure function of the
//! seed, dispatch order is registration order under both pacings
//! (the arrival engine is registered first so same-cycle arrivals are
//! visible to every server), and the engines uphold the
//! `next_event_at` contract, so lockstep and fast-forward produce
//! byte-identical results.

use std::collections::VecDeque;

use crate::rng::{Rng, StdRng};
use crate::sched::{Engine, Policy, Progress, Scheduler};
use crate::{Cycle, SimError, StallReason};

/// How the fleet admits and orders queued GC requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPolicy {
    /// First come, first served; contended service on shared channels.
    Fifo,
    /// Smallest live set first (shortest-job-first against the measured
    /// heap size); contended service on shared channels.
    SmallestFirst,
    /// FIFO order, but every unit runs under the §VII issue throttle:
    /// slower solo service, no cross-tenant contention factor.
    Partitioned,
}

impl FleetPolicy {
    /// Stable lower-snake name (CSV rows, metrics keys).
    pub fn name(self) -> &'static str {
        match self {
            FleetPolicy::Fifo => "fifo",
            FleetPolicy::SmallestFirst => "smallest_first",
            FleetPolicy::Partitioned => "partitioned",
        }
    }
}

/// One tenant's measured profile: everything the queueing layer needs
/// to replay its GC requests.
#[derive(Debug, Clone, Copy)]
pub struct TenantProfile {
    /// Workload-shape label (watchdog dumps, reports).
    pub shape: &'static str,
    /// Live objects in the tenant's heap (the smallest-first key).
    pub live_objects: u64,
    /// Measured full-bandwidth mark service time, including any
    /// software-fallback completion after a trap.
    pub service_cycles: Cycle,
    /// Measured service time under the §VII issue throttle (the
    /// [`FleetPolicy::Partitioned`] replay).
    pub throttled_cycles: Cycle,
    /// Whether the measured mark degraded to the software fallback.
    pub degraded: bool,
}

/// Fleet topology and offered load.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Traversal units serving the queue.
    pub units: usize,
    /// Shared DDR3 channels the units are spread over (round-robin).
    pub channels: usize,
    /// Admission/scheduling policy.
    pub policy: FleetPolicy,
    /// GC requests each tenant issues.
    pub requests_per_tenant: usize,
    /// Mean per-tenant interarrival time in cycles (exponential).
    pub mean_period: Cycle,
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_cap: usize,
    /// Seed for the arrival process.
    pub seed: u64,
}

/// A queued GC request.
#[derive(Debug, Clone, Copy)]
struct Request {
    tenant: usize,
    seq: usize,
    arrived: Cycle,
}

/// One completed GC request, with its full queueing history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The requesting tenant.
    pub tenant: usize,
    /// The tenant's request sequence number.
    pub seq: usize,
    /// Arrival cycle (admission time).
    pub arrived: Cycle,
    /// Dispatch cycle (service start).
    pub started: Cycle,
    /// Completion cycle.
    pub finished: Cycle,
    /// The unit that served it.
    pub unit: usize,
}

impl Completion {
    /// Cycles spent waiting in the admission queue.
    pub fn queue_delay(&self) -> Cycle {
        self.started - self.arrived
    }

    /// Arrival-to-completion latency (the SLO-facing number).
    pub fn sojourn(&self) -> Cycle {
        self.finished - self.arrived
    }
}

/// What one fleet run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStats {
    /// Every completed request, in completion order.
    pub completions: Vec<Completion>,
    /// Arrivals rejected by the full admission queue.
    pub rejected: u64,
    /// Total unit-busy cycles (Σ service spans over all units).
    pub busy_cycles: u64,
    /// Last completion cycle.
    pub makespan: Cycle,
}

impl FleetStats {
    /// Aggregate unit utilization over the makespan.
    pub fn utilization(&self, units: usize) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (self.makespan as f64 * units.max(1) as f64)
        }
    }
}

/// Shared state the fleet engines communicate through.
struct FleetCtx {
    queue: VecDeque<Request>,
    queue_cap: usize,
    /// Busy units per channel (the dispatch-time contention factor).
    channel_busy: Vec<u32>,
    arrivals_done: bool,
    completions: Vec<Completion>,
    rejected: u64,
    busy_cycles: u64,
}

/// Replays the precomputed arrival trace into the admission queue.
struct ArrivalEngine {
    /// (cycle, tenant, seq), sorted ascending.
    arrivals: Vec<(Cycle, usize, usize)>,
    next: usize,
}

impl ArrivalEngine {
    /// Seeded open-loop arrivals: each tenant draws
    /// `requests_per_tenant` exponential interarrival gaps around
    /// `mean_period` from its own substream, then the per-tenant
    /// timelines are merged by (cycle, tenant, seq).
    fn new(cfg: &FleetConfig, tenants: usize) -> Self {
        let mut arrivals = Vec::with_capacity(tenants * cfg.requests_per_tenant);
        for tenant in 0..tenants {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut t = 0.0f64;
            for seq in 0..cfg.requests_per_tenant {
                let u = rng.random::<f64>();
                t += -(1.0 - u).ln() * cfg.mean_period.max(1) as f64;
                arrivals.push((t.ceil() as Cycle + 1, tenant, seq));
            }
        }
        arrivals.sort_unstable();
        Self { arrivals, next: 0 }
    }
}

impl Engine<FleetCtx> for ArrivalEngine {
    fn name(&self) -> &'static str {
        "arrivals"
    }

    fn label(&self) -> String {
        format!("arrivals[{} of {} issued]", self.next, self.arrivals.len())
    }

    fn step(&mut self, now: Cycle, ctx: &mut FleetCtx) -> Progress {
        let mut progress = false;
        while self.next < self.arrivals.len() && self.arrivals[self.next].0 <= now {
            let (arrived, tenant, seq) = self.arrivals[self.next];
            self.next += 1;
            progress = true;
            if ctx.queue.len() >= ctx.queue_cap {
                ctx.rejected += 1;
            } else {
                ctx.queue.push_back(Request {
                    tenant,
                    seq,
                    arrived,
                });
            }
        }
        if self.next >= self.arrivals.len() {
            ctx.arrivals_done = true;
            return Progress::Done;
        }
        if progress {
            Progress::Advanced
        } else {
            Progress::Stalled
        }
    }

    fn next_event_at(&self) -> Option<Cycle> {
        self.arrivals.get(self.next).map(|&(t, _, _)| t)
    }
}

/// One traversal unit draining the admission queue.
struct ServerEngine<'a> {
    unit: usize,
    channel: usize,
    policy: FleetPolicy,
    profiles: &'a [TenantProfile],
    serving: Option<(Request, Cycle, Cycle)>, // (req, started, until)
}

impl<'a> ServerEngine<'a> {
    fn new(
        unit: usize,
        channels: usize,
        policy: FleetPolicy,
        profiles: &'a [TenantProfile],
    ) -> Self {
        Self {
            unit,
            channel: unit % channels.max(1),
            policy,
            profiles,
            serving: None,
        }
    }

    /// Picks the next request under the policy. FIFO and Partitioned
    /// take the queue head (arrival order); SmallestFirst scans for the
    /// smallest live set, earliest arrival breaking ties.
    fn pick(&self, queue: &mut VecDeque<Request>) -> Option<Request> {
        match self.policy {
            FleetPolicy::Fifo | FleetPolicy::Partitioned => queue.pop_front(),
            FleetPolicy::SmallestFirst => {
                let best = queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, r)| (self.profiles[r.tenant].live_objects, *i))
                    .map(|(i, _)| i)?;
                queue.remove(best)
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, ctx: &mut FleetCtx) -> bool {
        let Some(req) = self.pick(&mut ctx.queue) else {
            return false;
        };
        let profile = &self.profiles[req.tenant];
        // Contention is fixed at dispatch: `b` units already busy on
        // this channel slow the whole pass by `b + 1`. Partitioned
        // replays the throttled measurement instead — the throttle
        // already leaves residual bandwidth, so no contention factor.
        let service = match self.policy {
            FleetPolicy::Partitioned => profile.throttled_cycles,
            _ => profile.service_cycles * (ctx.channel_busy[self.channel] as Cycle + 1),
        };
        ctx.channel_busy[self.channel] += 1;
        self.serving = Some((req, now, now + service.max(1)));
        true
    }
}

impl<'a> Engine<FleetCtx> for ServerEngine<'a> {
    fn name(&self) -> &'static str {
        "gc-server"
    }

    fn label(&self) -> String {
        match &self.serving {
            Some((req, _, _)) => format!(
                "gc-server[unit {} ch {}] serving tenant {} ({})",
                self.unit, self.channel, req.tenant, self.profiles[req.tenant].shape
            ),
            None => format!("gc-server[unit {} ch {}] idle", self.unit, self.channel),
        }
    }

    fn step(&mut self, now: Cycle, ctx: &mut FleetCtx) -> Progress {
        let mut progress = false;
        if let Some((req, started, until)) = self.serving {
            if now < until {
                return Progress::Stalled;
            }
            ctx.completions.push(Completion {
                tenant: req.tenant,
                seq: req.seq,
                arrived: req.arrived,
                started,
                finished: until,
                unit: self.unit,
            });
            ctx.busy_cycles += until - started;
            ctx.channel_busy[self.channel] -= 1;
            self.serving = None;
            progress = true;
        }
        if self.dispatch(now, ctx) {
            return Progress::Advanced;
        }
        if ctx.arrivals_done {
            return Progress::Done;
        }
        if progress {
            Progress::Advanced
        } else {
            Progress::Stalled
        }
    }

    fn next_event_at(&self) -> Option<Cycle> {
        // Serving: wake at completion. Idle: no self-scheduled wake —
        // the arrival engine's event covers the only state change that
        // can hand this unit work.
        self.serving.map(|(_, _, until)| until)
    }

    fn stall_reason(&self, _now: Cycle) -> StallReason {
        if self.serving.is_some() {
            StallReason::MemLatency
        } else {
            StallReason::Idle
        }
    }
}

/// Runs one fleet configuration over the measured tenant profiles and
/// returns the completed-request history.
///
/// Deterministic under both pacings, any `--jobs` and any
/// `--par-engines`: the queueing layer itself is one single-threaded
/// scheduler run (grid points parallelize above it).
pub fn run_fleet(cfg: &FleetConfig, profiles: &[TenantProfile]) -> Result<FleetStats, SimError> {
    assert!(cfg.units > 0, "fleet needs at least one unit");
    let mut ctx = FleetCtx {
        queue: VecDeque::new(),
        queue_cap: cfg.queue_cap.max(1),
        channel_busy: vec![0; cfg.channels.max(1)],
        arrivals_done: false,
        completions: Vec::new(),
        rejected: 0,
        busy_cycles: 0,
    };
    let mut arrivals = ArrivalEngine::new(cfg, profiles.len());
    let mut servers: Vec<ServerEngine<'_>> = (0..cfg.units)
        .map(|u| ServerEngine::new(u, cfg.channels, cfg.policy, profiles))
        .collect();
    // The arrival engine is registered first: a same-cycle arrival is
    // visible to every server in the same service round, identically
    // under lockstep and fast-forward.
    let mut engines: Vec<&mut dyn Engine<FleetCtx>> = Vec::with_capacity(1 + cfg.units);
    engines.push(&mut arrivals);
    for s in &mut servers {
        engines.push(s);
    }
    let report = Scheduler::new(Policy::Lockstep).try_run(&mut engines, &mut ctx, 0)?;
    Ok(FleetStats {
        completions: ctx.completions,
        rejected: ctx.rejected,
        busy_cycles: ctx.busy_cycles,
        makespan: report.end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{with_pacing, Pacing};

    fn profiles(n: usize) -> Vec<TenantProfile> {
        (0..n)
            .map(|i| TenantProfile {
                shape: "test",
                live_objects: 100 + (i as u64 % 5) * 50,
                service_cycles: 1_000 + (i as u64 % 3) * 700,
                throttled_cycles: 2_500 + (i as u64 % 3) * 900,
                degraded: false,
            })
            .collect()
    }

    fn cfg(policy: FleetPolicy, mean_period: Cycle) -> FleetConfig {
        FleetConfig {
            units: 4,
            channels: 2,
            policy,
            requests_per_tenant: 3,
            mean_period,
            queue_cap: 8,
            seed: 0xF1EE_7001,
        }
    }

    #[test]
    fn conserves_requests_and_is_deterministic() {
        let p = profiles(8);
        let c = cfg(FleetPolicy::Fifo, 2_000);
        let a = run_fleet(&c, &p).unwrap();
        let b = run_fleet(&c, &p).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.completions.len() as u64 + a.rejected, 8 * 3);
        assert!(a.utilization(4) > 0.0 && a.utilization(4) <= 1.0);
        for done in &a.completions {
            assert!(done.arrived <= done.started && done.started < done.finished);
        }
    }

    #[test]
    fn lockstep_and_fastforward_agree_exactly() {
        for policy in [
            FleetPolicy::Fifo,
            FleetPolicy::SmallestFirst,
            FleetPolicy::Partitioned,
        ] {
            let p = profiles(12);
            let c = cfg(policy, 900);
            let ls = with_pacing(Pacing::Lockstep, || run_fleet(&c, &p).unwrap());
            let ff = with_pacing(Pacing::FastForward, || run_fleet(&c, &p).unwrap());
            assert_eq!(ls, ff, "{} diverged across pacings", policy.name());
        }
    }

    #[test]
    fn saturation_rejects_arrivals_and_light_load_does_not() {
        let p = profiles(8);
        let light = run_fleet(&cfg(FleetPolicy::Fifo, 50_000), &p).unwrap();
        assert_eq!(light.rejected, 0);
        // Mean service ~1700 cycles × contention on 4 units vs 8
        // tenants arriving every ~10 cycles: the queue must overflow.
        let crushed = run_fleet(&cfg(FleetPolicy::Fifo, 10), &p).unwrap();
        assert!(crushed.rejected > 0, "overload must trip admission control");
        // Queueing delay grows with load.
        let qd = |s: &FleetStats| {
            s.completions.iter().map(|c| c.queue_delay()).sum::<u64>()
                / s.completions.len().max(1) as u64
        };
        assert!(qd(&crushed) > qd(&light));
    }

    #[test]
    fn smallest_first_prefers_small_heaps_under_backlog() {
        // One unit, deep queue: after the first dispatch the queue has
        // a backlog, and smallest-first must serve small tenants ahead
        // of earlier-arrived big ones.
        let mut p = profiles(6);
        for (i, t) in p.iter_mut().enumerate() {
            t.live_objects = if i % 2 == 0 { 10 } else { 10_000 };
            t.service_cycles = 5_000;
            t.throttled_cycles = 9_000;
        }
        let c = FleetConfig {
            units: 1,
            channels: 1,
            policy: FleetPolicy::SmallestFirst,
            requests_per_tenant: 2,
            mean_period: 10,
            queue_cap: 64,
            seed: 3,
        };
        let run = run_fleet(&c, &p).unwrap();
        let small_mean: f64 = mean_sojourn(&run, |t| t % 2 == 0);
        let big_mean: f64 = mean_sojourn(&run, |t| t % 2 == 1);
        assert!(
            small_mean < big_mean,
            "small {small_mean} should beat big {big_mean}"
        );
    }

    fn mean_sojourn(run: &FleetStats, pick: impl Fn(usize) -> bool) -> f64 {
        let picked: Vec<u64> = run
            .completions
            .iter()
            .filter(|c| pick(c.tenant))
            .map(|c| c.sojourn())
            .collect();
        picked.iter().sum::<u64>() as f64 / picked.len().max(1) as f64
    }

    #[test]
    fn partitioned_replays_throttled_service_without_contention() {
        // Saturating load on 2 units / 1 channel: FIFO's contended
        // completions vary with channel occupancy; Partitioned's are
        // exactly the throttled measurement.
        let p = profiles(6);
        let c = FleetConfig {
            units: 2,
            channels: 1,
            policy: FleetPolicy::Partitioned,
            requests_per_tenant: 2,
            mean_period: 100,
            queue_cap: 32,
            seed: 9,
        };
        let run = run_fleet(&c, &p).unwrap();
        for done in &run.completions {
            assert_eq!(
                done.finished - done.started,
                p[done.tenant].throttled_cycles,
                "partitioned service must be the throttled measurement"
            );
        }
    }
}
