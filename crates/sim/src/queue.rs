//! Fixed-capacity FIFO queues with back-pressure.
//!
//! Hardware queues (Chisel `Queue`s) are the central structural element of
//! the paper's traversal unit: the mark queue, the tracer queue and the
//! spill `inQ`/`outQ` are all bounded FIFOs whose *fullness* drives control
//! decisions (spilling, tracer throttling). [`BoundedQueue`] models exactly
//! that: pushes fail when the queue is full and the caller must apply
//! back-pressure.

use std::collections::VecDeque;

/// Error returned by [`BoundedQueue::try_push`] when the queue is full.
///
/// The rejected element is handed back so the caller can retry on a later
/// cycle without cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

impl<T> std::fmt::Display for QueueFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for QueueFull<T> {}

/// A fixed-capacity FIFO with back-pressure, modelling a hardware queue.
///
/// Unlike `VecDeque`, pushing beyond the capacity is an error rather than a
/// reallocation: hardware queues cannot grow, and the paper's spill logic
/// (Fig. 12) exists precisely because the mark queue can fill up.
///
/// # Examples
///
/// ```
/// use tracegc_sim::BoundedQueue;
///
/// let mut q = BoundedQueue::new(3);
/// q.try_push("a").unwrap();
/// q.try_push("b").unwrap();
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some("a"));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// High-water mark: the largest occupancy ever observed.
    peak: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a zero-entry hardware queue cannot
    /// exist.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Attempts to append `item`; returns it back inside [`QueueFull`] when
    /// the queue is at capacity.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] carrying the rejected element when full.
    pub fn try_push(&mut self, item: T) -> Result<(), QueueFull<T>> {
        if self.items.len() == self.capacity {
            return Err(QueueFull(item));
        }
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the oldest element, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the oldest element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity (pushes would fail).
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// The fixed capacity this queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining slots before the queue is full.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The largest occupancy ever observed (for sizing studies like Fig. 19).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Iterates over queued elements from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes all elements, leaving capacity and peak statistics intact.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T> Extend<T> for BoundedQueue<T> {
    /// Extends the queue, silently dropping the remainder once full. Prefer
    /// [`BoundedQueue::try_push`] in simulation code where back-pressure
    /// matters; `extend` is a convenience for test setup.
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            if self.try_push(item).is_err() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_fifo() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_rejects_and_returns_item() {
        let mut q = BoundedQueue::new(1);
        q.try_push(7).unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push(9), Err(QueueFull(9)));
        // The original element is untouched.
        assert_eq!(q.pop(), Some(7));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        q.pop();
        q.pop();
        q.try_push(4).unwrap();
        assert_eq!(q.peak(), 3);
    }

    #[test]
    fn free_slots_counts_down() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.free_slots(), 2);
        q.try_push(0).unwrap();
        assert_eq!(q.free_slots(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn extend_stops_at_capacity() {
        let mut q = BoundedQueue::new(3);
        q.extend(0..10);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
    }

    #[test]
    fn clear_preserves_capacity() {
        let mut q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 2);
    }
}
