//! Cycle-attributed observability primitives: stall accounting, typed
//! event tracing, and a small metric registry.
//!
//! The paper's key findings are *attribution* results — the blocking PTW
//! is the traversal unit's bottleneck (§VI-A), PTW refills are ~2/3 of
//! shared-cache requests (Fig. 18) — so every ticked state machine in the
//! workspace charges each cycle it spends to exactly one bucket: either
//! `busy` (it made forward progress) or one [`StallReason`]. The central
//! invariant, asserted by the harness test suite, is
//!
//! ```text
//! busy + Σ stalls == phase cycles × lanes
//! ```
//!
//! where `lanes` is the number of independent clocks in the phase (1 for
//! the mark phase and the CPU collector, the sweeper count for the
//! parallel sweep phase).
//!
//! [`EventTrace`] is the companion ring buffer: bounded, drop-counted,
//! and cheap enough to leave compiled in — tracing is off unless a
//! component is explicitly handed a trace. The harness turns the ring
//! into Chrome-trace JSON (`chrome://tracing`) behind `--trace`.
//!
//! # Examples
//!
//! ```
//! use tracegc_sim::metrics::{StallAccounting, StallReason};
//!
//! let mut acct = StallAccounting::default();
//! acct.busy(10);
//! acct.stall(StallReason::MemLatency, 4);
//! assert_eq!(acct.total(), 14);
//! assert_eq!(acct.stalled(StallReason::MemLatency), 4);
//! ```

use std::collections::VecDeque;

use crate::Cycle;

/// Why a state machine failed to make forward progress on a cycle.
///
/// Every stalled cycle is attributed to exactly one reason; the
/// classification is by *bottleneck*, so e.g. a marker frozen behind a
/// page-table walk charges [`TlbMiss`](StallReason::TlbMiss) even though
/// the walk itself is also memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallReason {
    /// Waiting on an outstanding memory response (loads, fetch-or AMOs,
    /// mark-queue refills).
    MemLatency,
    /// Back-pressured by a full downstream queue (tracer queue, deliver
    /// buffer, mark-queue spill throttle).
    QueueFull,
    /// Frozen behind a page-table walk triggered by this requester
    /// (blocking-TLB mode, §V-B).
    TlbMiss,
    /// Waiting for the shared page-table walker, which is busy serving
    /// another requester.
    PtwBusy,
    /// Paced by a configured minimum issue interval (the bandwidth
    /// throttle of the concurrent-GC experiments).
    Throttled,
    /// Lost arbitration for the unit's single memory port this cycle.
    PortBusy,
    /// Nothing to do: drained inputs (e.g. a sweeper that finished its
    /// blocks while siblings still run).
    Idle,
}

impl StallReason {
    /// Number of distinct reasons.
    pub const COUNT: usize = 7;

    /// Every reason, in declaration (= serialization) order.
    pub const ALL: [StallReason; Self::COUNT] = [
        StallReason::MemLatency,
        StallReason::QueueFull,
        StallReason::TlbMiss,
        StallReason::PtwBusy,
        StallReason::Throttled,
        StallReason::PortBusy,
        StallReason::Idle,
    ];

    /// Dense index into per-reason arrays.
    pub fn index(self) -> usize {
        match self {
            StallReason::MemLatency => 0,
            StallReason::QueueFull => 1,
            StallReason::TlbMiss => 2,
            StallReason::PtwBusy => 3,
            StallReason::Throttled => 4,
            StallReason::PortBusy => 5,
            StallReason::Idle => 6,
        }
    }

    /// Stable snake-case name used in JSON sidecars and trace files.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::MemLatency => "mem_latency",
            StallReason::QueueFull => "queue_full",
            StallReason::TlbMiss => "tlb_miss",
            StallReason::PtwBusy => "ptw_busy",
            StallReason::Throttled => "throttled",
            StallReason::PortBusy => "port_busy",
            StallReason::Idle => "idle",
        }
    }

    /// The event-trace `kind` string for a stall span of this reason.
    pub fn stall_kind(self) -> &'static str {
        match self {
            StallReason::MemLatency => "stall:mem_latency",
            StallReason::QueueFull => "stall:queue_full",
            StallReason::TlbMiss => "stall:tlb_miss",
            StallReason::PtwBusy => "stall:ptw_busy",
            StallReason::Throttled => "stall:throttled",
            StallReason::PortBusy => "stall:port_busy",
            StallReason::Idle => "stall:idle",
        }
    }
}

/// Per-component cycle ledger: busy cycles plus one accumulator per
/// [`StallReason`]. `Copy` and comparable so results structs can embed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallAccounting {
    busy: u64,
    stalls: [u64; StallReason::COUNT],
}

impl StallAccounting {
    /// Charges `n` cycles of forward progress.
    pub fn busy(&mut self, n: u64) {
        self.busy += n;
    }

    /// Charges `n` stalled cycles to `reason`.
    pub fn stall(&mut self, reason: StallReason, n: u64) {
        self.stalls[reason.index()] += n;
    }

    /// Cycles spent making forward progress.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Cycles charged to `reason`.
    pub fn stalled(&self, reason: StallReason) -> u64 {
        self.stalls[reason.index()]
    }

    /// Total stalled cycles across all reasons.
    pub fn total_stalled(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Busy + stalled cycles; the accounting invariant requires this to
    /// equal phase cycles × lanes.
    pub fn total(&self) -> u64 {
        self.busy + self.total_stalled()
    }

    /// `(reason, cycles)` pairs in [`StallReason::ALL`] order.
    pub fn breakdown(&self) -> [(StallReason, u64); StallReason::COUNT] {
        let mut out = [(StallReason::MemLatency, 0); StallReason::COUNT];
        for (i, r) in StallReason::ALL.into_iter().enumerate() {
            out[i] = (r, self.stalls[i]);
        }
        out
    }

    /// Folds another ledger into this one (e.g. summing phases).
    pub fn merge(&mut self, other: &StallAccounting) {
        self.busy += other.busy;
        for i in 0..StallReason::COUNT {
            self.stalls[i] += other.stalls[i];
        }
    }
}

/// One typed trace record: something happened at `cycle` in `component`.
///
/// `kind` is a small static vocabulary (`"mark_issue"`, `"spill_write"`,
/// `"stall:tlb_miss"`, …); `arg` is kind-specific (an address, a count,
/// a span length in cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred (span events: span start).
    pub cycle: Cycle,
    /// Emitting component (`"marker"`, `"sweeper"`, `"mem"`, …).
    pub component: &'static str,
    /// Event kind from the component's vocabulary.
    pub kind: &'static str,
    /// Kind-specific argument (span events: duration in cycles).
    pub arg: u64,
}

/// Default [`EventTrace`] capacity: enough for the opening of a
/// smoke-scale pause without unbounded memory growth.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// A bounded ring of [`TraceEvent`]s, modelled on a hardware trace
/// buffer: once full, new events are dropped and counted rather than
/// evicting history, so the recorded prefix stays contiguous.
///
/// # Examples
///
/// ```
/// use tracegc_sim::metrics::EventTrace;
///
/// let mut t = EventTrace::new(2);
/// t.record(0, "marker", "mark_issue", 0x1000);
/// t.record(5, "marker", "mark_issue", 0x1040);
/// t.record(9, "marker", "mark_issue", 0x1080); // full: dropped
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EventTrace {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl EventTrace {
    /// Creates a trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Records one event, or bumps the drop counter when full.
    pub fn record(&mut self, cycle: Cycle, component: &'static str, kind: &'static str, arg: u64) {
        if self.events.len() < self.capacity {
            self.events.push_back(TraceEvent {
                cycle,
                component,
                kind,
                arg,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum events the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the recorded events in order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Consumes the ring into a `Vec` in record order.
    pub fn into_vec(self) -> Vec<TraceEvent> {
        self.events.into_iter().collect()
    }
}

/// An insertion-ordered registry of named metrics: integer counters,
/// floating-point gauges, [`Histogram`](crate::Histogram)s, and
/// per-component [`StallAccounting`] blocks.
///
/// Insertion order is deterministic serialization order, which is what
/// makes the JSON sidecars byte-identical across `--jobs` values.
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, crate::Histogram)>,
    stalls: Vec<(String, StallAccounting)>,
}

impl MetricSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name`, creating it at zero first if needed.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += n,
            None => self.counters.push((name.to_string(), n)),
        }
    }

    /// Sets gauge `name` to `v`, creating it if needed.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.iter_mut().find(|(k, _)| k == name) {
            Some((_, g)) => *g = v,
            None => self.gauges.push((name.to_string(), v)),
        }
    }

    /// The histogram `name`, created with (`bin_width`, `bins`) on first
    /// use.
    pub fn histogram_mut(
        &mut self,
        name: &str,
        bin_width: u64,
        bins: usize,
    ) -> &mut crate::Histogram {
        if let Some(i) = self.histograms.iter().position(|(k, _)| k == name) {
            return &mut self.histograms[i].1;
        }
        self.histograms
            .push((name.to_string(), crate::Histogram::new(bin_width, bins)));
        &mut self.histograms.last_mut().unwrap().1
    }

    /// The stall ledger for `component`, created empty on first use.
    pub fn stalls_mut(&mut self, component: &str) -> &mut StallAccounting {
        if let Some(i) = self.stalls.iter().position(|(k, _)| k == component) {
            return &mut self.stalls[i].1;
        }
        self.stalls
            .push((component.to_string(), StallAccounting::default()));
        &mut self.stalls.last_mut().unwrap().1
    }

    /// Counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Counters in insertion order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in insertion order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in insertion order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &crate::Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Stall ledgers in insertion order.
    pub fn stall_blocks(&self) -> impl Iterator<Item = (&str, &StallAccounting)> {
        self.stalls.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_accounting_sums_and_merges() {
        let mut a = StallAccounting::default();
        a.busy(7);
        a.stall(StallReason::TlbMiss, 3);
        a.stall(StallReason::TlbMiss, 2);
        a.stall(StallReason::Idle, 1);
        assert_eq!(a.busy_cycles(), 7);
        assert_eq!(a.stalled(StallReason::TlbMiss), 5);
        assert_eq!(a.total_stalled(), 6);
        assert_eq!(a.total(), 13);

        let mut b = StallAccounting::default();
        b.busy(1);
        b.stall(StallReason::MemLatency, 4);
        b.merge(&a);
        assert_eq!(b.total(), 18);
        assert_eq!(b.stalled(StallReason::MemLatency), 4);
        assert_eq!(b.stalled(StallReason::TlbMiss), 5);
    }

    #[test]
    fn stall_reason_names_and_indices_are_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (i, r) in StallReason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert!(seen.insert(r.name()), "duplicate name {}", r.name());
            assert_eq!(r.stall_kind(), format!("stall:{}", r.name()));
        }
    }

    #[test]
    fn event_trace_bounds_and_counts_drops() {
        let mut t = EventTrace::new(3);
        for i in 0..5 {
            t.record(i, "c", "k", i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.capacity(), 3);
        assert_eq!(t.dropped(), 2);
        // The *prefix* is kept: drops discard new events, not history.
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        assert_eq!(t.into_vec().len(), 3);
    }

    #[test]
    fn metric_set_accumulates_and_preserves_order() {
        let mut m = MetricSet::new();
        m.counter_add("b_second", 1);
        m.counter_add("a_first", 2);
        m.counter_add("b_second", 3);
        m.gauge_set("g", 1.5);
        m.gauge_set("g", 2.5);
        m.stalls_mut("marker").busy(4);
        m.histogram_mut("h", 8, 4).record(10);
        assert_eq!(m.counter("b_second"), Some(4));
        assert_eq!(m.counter("a_first"), Some(2));
        assert_eq!(m.gauge("g"), Some(2.5));
        let order: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(order, vec!["b_second", "a_first"]);
        assert_eq!(m.stall_blocks().next().unwrap().1.busy_cycles(), 4);
        assert_eq!(m.histograms().next().unwrap().1.count(), 1);
    }
}
