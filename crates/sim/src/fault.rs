//! Seeded, deterministic fault injection and the structured error type
//! every `run_*` driver degrades into.
//!
//! The paper's unit is designed to survive hostile conditions — the
//! mark queue spills instead of overflowing, and rare or illegal cases
//! trap to a software path rather than wedging the SoC. This module
//! provides the machinery to *exercise* that story deterministically:
//!
//! * [`FaultConfig`] — per-class fault rates plus retry/timeout
//!   parameters, all derived from one master seed.
//! * [`FaultPlan`] / [`FaultInjector`] — each component (memory system,
//!   page-table walker, traversal unit) receives its *own* injector,
//!   seeded from the master seed and a per-site salt, so injection is
//!   independent of scheduling order, worker threads and call
//!   interleaving across components.
//! * [`FaultStats`] — what actually fired, for the harness's metrics
//!   `faults` sidecar section.
//! * [`SimError`] — the structured, non-panicking outcome of a run that
//!   could not complete cleanly (scheduler deadlock, memory timeout,
//!   uncorrectable ECC, page fault, or a traversal-unit trap).
//!
//! # Determinism contract
//!
//! Every injector draws from its own xoshiro256++ stream; a rate of
//! `0.0` never fires and has **no timing side effects**, so a run under
//! an all-zero [`FaultConfig`] is byte-identical to a run with no fault
//! plan at all (pinned by `tests/fault_injection.rs`).
//!
//! # Detectability contract
//!
//! Injected reference corruption flips only bits the traversal unit's
//! sanitizer provably catches: low bits (violating the 8-byte object
//! alignment) or bits at and above [`CORRUPT_REF_HIGH_BIT`] (beyond
//! every mapped space in the default space map). An in-range flipped
//! reference would be indistinguishable from a legal heap edge by any
//! architectural check — guarding against *that* is what the ECC model
//! is for — and would silently violate the differential mark oracle.

use crate::rng::{Rng, SplitMix64, StdRng};
use crate::Cycle;

/// Lowest high bit used for out-of-range reference corruption. Every
/// space in the default map ends below `1 << 36`, so setting any bit at
/// or above 40 is guaranteed to leave the traced spaces.
pub const CORRUPT_REF_HIGH_BIT: u32 = 40;

/// Per-class fault rates and the retry/timeout model, all seeded.
///
/// Rates are per-opportunity probabilities in `[0, 1]`: per memory read
/// for ECC bit flips, per response for drops and delays, per dequeued
/// reference for corruption, per page walk for PTE faults. The default
/// config has every rate at `0.0` (nothing fires) with non-degenerate
/// retry parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; per-site injector streams derive from it.
    pub seed: u64,
    /// Probability a DRAM read suffers a single-bit flip (then
    /// classified by the ECC outcome weights below).
    pub bit_flip_rate: f64,
    /// Of the flips, the fraction ECC can only *detect* (forces a
    /// retry of the read).
    pub ecc_detect_weight: f64,
    /// Of the flips, the fraction that is uncorrectable (poisons the
    /// response and escalates to a trap). The remainder
    /// (`1 - detect - uncorrectable`) is corrected in-line for a small
    /// latency penalty.
    pub ecc_uncorrectable_weight: f64,
    /// Extra response latency charged for an in-line ECC correction.
    pub ecc_correct_cycles: u64,
    /// Probability a memory response is dropped entirely (the requester
    /// times out after [`FaultConfig::timeout_cycles`] and retries).
    pub drop_rate: f64,
    /// Probability a memory response is delayed (but still arrives).
    pub delay_rate: f64,
    /// Extra latency of a delayed response.
    pub delay_cycles: u64,
    /// Probability a reference word observed by the traversal unit's
    /// marker is corrupted (always detectably — see the module docs).
    pub corrupt_ref_rate: f64,
    /// Probability an object header observed by the marker is corrupted
    /// (the reference count is forced past any plausible value).
    pub corrupt_header_rate: f64,
    /// Probability a page walk hits an invalid PTE and faults.
    pub pte_fault_rate: f64,
    /// Cycles a requester waits before declaring a response lost.
    pub timeout_cycles: u64,
    /// Bounded retries after a timeout or an ECC-detected read before
    /// the request escalates to [`SimError::MemTimeout`].
    pub max_retries: u32,
    /// Additional backoff added per successive retry attempt.
    pub retry_backoff_cycles: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            bit_flip_rate: 0.0,
            ecc_detect_weight: 0.25,
            ecc_uncorrectable_weight: 0.05,
            ecc_correct_cycles: 4,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay_cycles: 200,
            corrupt_ref_rate: 0.0,
            corrupt_header_rate: 0.0,
            pte_fault_rate: 0.0,
            timeout_cycles: 2_000,
            max_retries: 3,
            retry_backoff_cycles: 500,
        }
    }
}

impl FaultConfig {
    /// An all-zero-rate config with the given seed: attaches injectors
    /// everywhere but can never fire. Used by the byte-identity
    /// property test.
    pub fn zero_rates(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// True when any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.bit_flip_rate > 0.0
            || self.drop_rate > 0.0
            || self.delay_rate > 0.0
            || self.corrupt_ref_rate > 0.0
            || self.corrupt_header_rate > 0.0
            || self.pte_fault_rate > 0.0
    }
}

/// Which component an injector is attached to. Each site gets an
/// independent RNG stream derived from the master seed, so the faults
/// one component sees do not depend on how often another rolls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The shared memory controller ([`SimError::MemTimeout`] source).
    Mem,
    /// The page-table walker.
    Ptw,
    /// The traversal unit's marker datapath.
    Traversal,
    /// The CPU collector's load/store path.
    Cpu,
}

impl FaultSite {
    fn salt(self) -> u64 {
        match self {
            FaultSite::Mem => 0x6d65_6d00,
            FaultSite::Ptw => 0x7074_7700,
            FaultSite::Traversal => 0x7472_6100,
            FaultSite::Cpu => 0x6370_7500,
        }
    }
}

/// A fault plan: hands out per-site [`FaultInjector`]s for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// The shared configuration.
    pub cfg: FaultConfig,
}

impl FaultPlan {
    /// Wraps a config into a plan.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg }
    }

    /// Creates the injector for `site`, with its own seeded stream and
    /// zeroed stats.
    pub fn injector(&self, site: FaultSite) -> FaultInjector {
        let mut mix = SplitMix64::new(self.cfg.seed ^ site.salt());
        FaultInjector {
            cfg: self.cfg,
            rng: StdRng::seed_from_u64(mix.next_u64()),
            stats: FaultStats::default(),
        }
    }
}

/// ECC classification of a DRAM read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No bit flip.
    Clean,
    /// Single-bit flip corrected in-line (small latency penalty).
    Corrected,
    /// Flip detected but not correctable: the read must be retried.
    Detected,
    /// Uncorrectable corruption: the response is poisoned.
    Uncorrectable,
}

/// Counters of everything an injector (or the component around it)
/// actually did. Field order matches the sidecar emission order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Bit flips corrected in-line by ECC.
    pub ecc_corrected: u64,
    /// Bit flips detected (read retried).
    pub ecc_detected: u64,
    /// Uncorrectable bit flips (escalated).
    pub ecc_uncorrectable: u64,
    /// Responses dropped (requester timed out).
    pub dropped: u64,
    /// Responses delayed.
    pub delayed: u64,
    /// Retry attempts issued (timeouts and ECC-detected reads).
    pub retries: u64,
    /// Requests that exhausted their retry budget.
    pub timeouts: u64,
    /// Reference words corrupted in flight.
    pub corrupted_refs: u64,
    /// Object headers corrupted in flight.
    pub corrupted_headers: u64,
    /// Page walks that hit an injected invalid PTE.
    pub pte_faults: u64,
}

impl FaultStats {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_detected += other.ecc_detected;
        self.ecc_uncorrectable += other.ecc_uncorrectable;
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.corrupted_refs += other.corrupted_refs;
        self.corrupted_headers += other.corrupted_headers;
        self.pte_faults += other.pte_faults;
    }

    /// Named counters in stable emission order (zero entries included;
    /// the harness filters).
    pub fn entries(&self) -> [(&'static str, u64); 10] {
        [
            ("ecc_corrected", self.ecc_corrected),
            ("ecc_detected", self.ecc_detected),
            ("ecc_uncorrectable", self.ecc_uncorrectable),
            ("dropped", self.dropped),
            ("delayed", self.delayed),
            ("retries", self.retries),
            ("timeouts", self.timeouts),
            ("corrupted_refs", self.corrupted_refs),
            ("corrupted_headers", self.corrupted_headers),
            ("pte_faults", self.pte_faults),
        ]
    }

    /// Total events that fired.
    pub fn total(&self) -> u64 {
        self.entries().iter().map(|(_, v)| v).sum()
    }
}

/// One component's private fault source: its own RNG stream plus the
/// shared [`FaultConfig`] and local [`FaultStats`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// The shared configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// What fired so far at this site.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Rolls a Bernoulli trial; a zero rate never draws (and so has no
    /// side effects at all).
    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.random::<f64>() < rate
    }

    /// Classifies one DRAM read under the ECC model.
    pub fn ecc_read(&mut self) -> EccOutcome {
        if !self.roll(self.cfg.bit_flip_rate) {
            return EccOutcome::Clean;
        }
        let u: f64 = self.rng.random();
        if u < self.cfg.ecc_uncorrectable_weight {
            self.stats.ecc_uncorrectable += 1;
            EccOutcome::Uncorrectable
        } else if u < self.cfg.ecc_uncorrectable_weight + self.cfg.ecc_detect_weight {
            self.stats.ecc_detected += 1;
            EccOutcome::Detected
        } else {
            self.stats.ecc_corrected += 1;
            EccOutcome::Corrected
        }
    }

    /// True when this response is dropped (the requester must retry).
    pub fn drop_response(&mut self) -> bool {
        let hit = self.roll(self.cfg.drop_rate);
        if hit {
            self.stats.dropped += 1;
        }
        hit
    }

    /// Extra latency when this response is delayed.
    pub fn delay_response(&mut self) -> Option<u64> {
        if self.roll(self.cfg.delay_rate) {
            self.stats.delayed += 1;
            Some(self.cfg.delay_cycles)
        } else {
            None
        }
    }

    /// True when this page walk hits an injected invalid PTE.
    pub fn pte_fault(&mut self) -> bool {
        let hit = self.roll(self.cfg.pte_fault_rate);
        if hit {
            self.stats.pte_faults += 1;
        }
        hit
    }

    /// Corrupts a reference word in flight, detectably: flips either a
    /// low bit (breaking 8-byte alignment) or a bit at or above
    /// [`CORRUPT_REF_HIGH_BIT`] (leaving every mapped space).
    pub fn corrupt_ref(&mut self, va: u64) -> Option<u64> {
        if !self.roll(self.cfg.corrupt_ref_rate) {
            return None;
        }
        self.stats.corrupted_refs += 1;
        const BITS: [u32; 6] = [0, 1, 2, 40, 44, 52];
        debug_assert!(BITS
            .iter()
            .all(|&b| !(3..CORRUPT_REF_HIGH_BIT).contains(&b)));
        let bit = BITS[(self.rng.next_u64() % BITS.len() as u64) as usize];
        Some(va ^ (1u64 << bit))
    }

    /// True when the header observed for this object is corrupted (the
    /// component fabricates an implausible reference count).
    pub fn corrupt_header(&mut self) -> bool {
        let hit = self.roll(self.cfg.corrupt_header_rate);
        if hit {
            self.stats.corrupted_headers += 1;
        }
        hit
    }

    /// Records one retry attempt.
    pub fn note_retry(&mut self) {
        self.stats.retries += 1;
    }

    /// Records one exhausted retry budget.
    pub fn note_timeout(&mut self) {
        self.stats.timeouts += 1;
    }
}

/// A run that could not complete cleanly: the structured, non-panicking
/// alternative every `run_*` driver and the scheduler watchdog degrade
/// into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The scheduler wedged: either every engine stalled with no
    /// pending event, or the no-progress watchdog tripped. `dump` is
    /// the full per-engine stall-reason and ledger report.
    Deadlock {
        /// Cycle the scheduler gave up at.
        at: Cycle,
        /// The per-engine dump, starting `scheduler deadlock at ...`.
        dump: String,
    },
    /// A memory request exhausted its retry budget.
    MemTimeout {
        /// Cycle of the final failed attempt.
        at: Cycle,
        /// Physical address of the request.
        addr: u64,
        /// Attempts made (initial issue + retries).
        attempts: u32,
    },
    /// An uncorrectable ECC error poisoned a read response.
    EccUncorrectable {
        /// Cycle of the poisoned response.
        at: Cycle,
        /// Physical address of the read.
        addr: u64,
    },
    /// A page walk found no valid translation.
    PageFault {
        /// Cycle of the faulting access.
        at: Cycle,
        /// The virtual address that failed to translate.
        va: u64,
    },
    /// The traversal unit trapped; `description` carries the trap
    /// taxonomy entry and faulting address.
    Trap {
        /// Cycle the trap was taken.
        at: Cycle,
        /// Human-readable trap description.
        description: String,
    },
}

impl SimError {
    /// The cycle at which the run failed.
    pub fn at(&self) -> Cycle {
        match self {
            SimError::Deadlock { at, .. }
            | SimError::MemTimeout { at, .. }
            | SimError::EccUncorrectable { at, .. }
            | SimError::PageFault { at, .. }
            | SimError::Trap { at, .. } => *at,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The dump already leads with "scheduler deadlock at cycle
            // ...": print it verbatim so panicking wrappers preserve
            // the historical message.
            SimError::Deadlock { dump, .. } => f.write_str(dump),
            SimError::MemTimeout { at, addr, attempts } => write!(
                f,
                "memory request to {addr:#x} timed out after {attempts} attempts at cycle {at}"
            ),
            SimError::EccUncorrectable { at, addr } => write!(
                f,
                "uncorrectable ECC error on read of {addr:#x} at cycle {at}"
            ),
            SimError::PageFault { at, va } => {
                write!(f, "page fault at virtual address {va:#x} at cycle {at}")
            }
            SimError::Trap { at, description } => {
                write!(f, "traversal trap at cycle {at}: {description}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_cfg(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            bit_flip_rate: 0.2,
            drop_rate: 0.1,
            delay_rate: 0.1,
            corrupt_ref_rate: 0.3,
            corrupt_header_rate: 0.1,
            pte_fault_rate: 0.1,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn zero_rates_never_fire_and_never_draw() {
        let plan = FaultPlan::new(FaultConfig::zero_rates(7));
        let mut inj = plan.injector(FaultSite::Mem);
        for _ in 0..1000 {
            assert_eq!(inj.ecc_read(), EccOutcome::Clean);
            assert!(!inj.drop_response());
            assert!(inj.delay_response().is_none());
            assert!(!inj.pte_fault());
            assert!(inj.corrupt_ref(0x2000_0000).is_none());
            assert!(!inj.corrupt_header());
        }
        assert_eq!(inj.stats().total(), 0);
        // No draws happened: the stream is still at its seed position.
        let fresh = plan.injector(FaultSite::Mem);
        assert_eq!(format!("{:?}", inj.rng), format!("{:?}", fresh.rng));
    }

    #[test]
    fn same_seed_same_site_same_stream() {
        let plan = FaultPlan::new(active_cfg(42));
        let mut a = plan.injector(FaultSite::Traversal);
        let mut b = plan.injector(FaultSite::Traversal);
        for i in 0..500 {
            assert_eq!(a.corrupt_ref(i * 8), b.corrupt_ref(i * 8));
            assert_eq!(a.corrupt_header(), b.corrupt_header());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::new(active_cfg(42));
        let mut a = plan.injector(FaultSite::Mem);
        let mut b = plan.injector(FaultSite::Ptw);
        let fires_a: Vec<bool> = (0..200).map(|_| a.drop_response()).collect();
        let fires_b: Vec<bool> = (0..200).map(|_| b.drop_response()).collect();
        assert_ne!(fires_a, fires_b);
    }

    #[test]
    fn corrupted_refs_are_always_detectable() {
        let plan = FaultPlan::new(FaultConfig {
            corrupt_ref_rate: 1.0,
            ..active_cfg(3)
        });
        let mut inj = plan.injector(FaultSite::Traversal);
        for i in 0..2000u64 {
            let va = 0x4000_0000 + i * 8; // aligned, in the ms space
            let bad = inj.corrupt_ref(va).expect("rate 1.0 always fires");
            let misaligned = !bad.is_multiple_of(8);
            let out_of_range = bad >= 1 << CORRUPT_REF_HIGH_BIT;
            assert!(
                misaligned || out_of_range,
                "corruption {bad:#x} of {va:#x} is not architecturally detectable"
            );
        }
    }

    #[test]
    fn ecc_outcomes_follow_weights_roughly() {
        let plan = FaultPlan::new(FaultConfig {
            bit_flip_rate: 1.0,
            ecc_detect_weight: 0.5,
            ecc_uncorrectable_weight: 0.25,
            ..FaultConfig::default()
        });
        let mut inj = plan.injector(FaultSite::Mem);
        for _ in 0..4000 {
            inj.ecc_read();
        }
        let s = inj.stats();
        assert_eq!(s.ecc_corrected + s.ecc_detected + s.ecc_uncorrectable, 4000);
        // Loose bounds: the split should be near 25/50/25.
        assert!(s.ecc_uncorrectable > 700 && s.ecc_uncorrectable < 1300);
        assert!(s.ecc_detected > 1600 && s.ecc_detected < 2400);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = FaultStats {
            retries: 2,
            dropped: 1,
            ..FaultStats::default()
        };
        let b = FaultStats {
            retries: 3,
            pte_faults: 4,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.retries, 5);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.pte_faults, 4);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn sim_error_display_is_descriptive() {
        let e = SimError::MemTimeout {
            at: 10,
            addr: 0x40,
            attempts: 4,
        };
        assert!(e.to_string().contains("timed out after 4 attempts"));
        let d = SimError::Deadlock {
            at: 5,
            dump: "scheduler deadlock at cycle 5: every engine is stalled".into(),
        };
        assert!(d.to_string().starts_with("scheduler deadlock at cycle 5"));
        assert_eq!(d.at(), 5);
        let p = SimError::PageFault { at: 1, va: 0x123 };
        assert!(p.to_string().contains("0x123"));
    }
}
