//! Seeded random distributions for workload synthesis.
//!
//! The synthetic DaCapo heap generators need three shapes: uniform ranges,
//! log-normal object sizes (heaps are dominated by small objects with a long
//! tail), and Zipf-distributed reference popularity (the paper observes that
//! ~56 hot objects receive ~10% of all mark operations, Fig. 21a). These are
//! implemented directly against the in-tree [`crate::rng::Rng`] trait so the
//! project needs no external crates at all.

use crate::rng::Rng;

/// Samples a standard normal via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use tracegc_sim::rng::StdRng;
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = tracegc_sim::dist::standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a log-normal value with the given parameters of the underlying
/// normal (`mu`, `sigma`).
pub fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// A Zipf(`n`, `s`) sampler over ranks `0..n` using inverse-CDF lookup on a
/// precomputed table.
///
/// Rank 0 is the most popular element. Used to model the skewed object
/// popularity behind the paper's mark-bit cache (Fig. 21).
///
/// # Examples
///
/// ```
/// use tracegc_sim::dist::Zipf;
/// use tracegc_sim::rng::StdRng;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` elements with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one element");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler covers zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`, rank 0 most likely.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of the given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Draws a value from `lo..hi` (exclusive upper bound).
///
/// Thin wrapper kept for call-site readability in the workload generators.
pub fn uniform<R: Rng>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "empty uniform range");
    rng.random_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn normal_has_roughly_zero_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| standard_normal(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 3.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(44);
        let mut counts = vec![0u64; 50];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let zipf = Zipf::new(10, 0.9);
        let total: f64 = (0..10).map(|r| zipf.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(zipf.pmf(10), 0.0);
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((zipf.pmf(r) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_samples_are_in_range() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(45);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(46);
        for _ in 0..1000 {
            let v = uniform(&mut rng, 5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn determinism_same_seed_same_sequence() {
        let zipf = Zipf::new(100, 1.0);
        let seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
    }
}
