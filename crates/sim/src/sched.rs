//! The SoC composition layer: a cycle-stepped [`Engine`] trait and a
//! [`Scheduler`] that ticks arbitrary engine sets on one shared clock.
//!
//! The paper's system is one synchronous SoC — traversal unit,
//! reclamation sweepers, CPU and page-table walker all tick against a
//! single DDR3 controller. Modelling each component as an independently
//! steppable process under a bulk-synchronous scheduler is what makes
//! multi-unit and overlapped-phase scenarios composable: any set of
//! [`Engine`]s can share a clock and a memory system under a pluggable
//! [`Policy`] (lockstep, fixed priority, round-robin datapath
//! time-multiplexing, or the §VII bandwidth throttle).
//!
//! The scheduler is generic over the context type `Ctx` handed to every
//! [`Engine::step`] call, so this crate stays free of heap/memory
//! dependencies; the concrete SoC context (one memory system plus the
//! scheduled heaps) lives downstream in `tracegc-heap`.
//!
//! # Clock protocol
//!
//! Each iteration the scheduler offers the current cycle to its engines
//! and classifies the outcome:
//!
//! * some engine [`Advanced`](Progress::Advanced) — the clock moves one
//!   cycle; advancing engines are charged busy via [`Engine::note_busy`],
//!   stalled ones one cycle of their [`Engine::stall_reason`].
//! * every live engine [`Stalled`](Progress::Stalled) — the clock moves
//!   according to the [`Pacing`] (see below): one cycle under
//!   [`Pacing::Lockstep`], straight to the earliest pending
//!   [`Engine::next_event_at`] under [`Pacing::FastForward`] — charging
//!   each engine its stall reason for the skipped span either way; with
//!   no pending event anywhere the run fails with a
//!   [`SimError::Deadlock`] carrying a per-engine stall dump (see below).
//! * an engine returns [`Done`](Progress::Done) — its completion cycle is
//!   recorded and it is never stepped again. The run ends when every
//!   non-[background](Engine::is_background) engine is done.
//!
//! # Pacing: lockstep vs fast-forward
//!
//! Orthogonal to the arbitration [`Policy`], a [`Pacing`] selects how the
//! clock advances between service rounds:
//!
//! * [`Pacing::Lockstep`] is the reference interpreter: the clock only
//!   ever advances one cycle at a time and every live engine is stepped
//!   at every service cycle. Trivially correct, and dead slow — most
//!   steps of a memory-bound SoC return [`Progress::Stalled`].
//! * [`Pacing::FastForward`] (the default) is event-driven: when a
//!   service round ends with every live engine stalled, the clock hops
//!   straight to the earliest strictly-future [`Engine::next_event_at`]
//!   without stepping anybody, charging each engine's ledger the
//!   skipped span under its current [`Engine::stall_reason`]. The
//!   `next_event_at` contract (see [`Engine::next_event_at`]) makes the
//!   skipped steps provably side-effect-free, so both pacings produce
//!   identical cycle counts, stall ledgers, trap cycles and completion
//!   times — an equivalence pinned by `tests/engine_equivalence.rs`
//!   across thousands of seeded (workload, config, fault-plan, policy)
//!   combinations.
//!
//! The hop is clamped to the watchdog deadline so a livelocked engine
//! set trips the no-progress watchdog at the identical cycle (and with
//! the identical ledger dump) under both pacings. Under
//! [`Policy::RoundRobin`] a full grant round in which no engine advances
//! *parks* the arbiter: the time-multiplexed datapath goes idle, every
//! live engine is charged its own stall reason until the earliest
//! pending event, and the grant pointer holds, so the post-wake service
//! order continues the rotation exactly where it stopped — the rotation
//! is *hop-invariant* (historically the grant was derived from the
//! absolute cycle, `now % n`, so the skip could re-grant the engine
//! just served or silently swallow another engine's turn depending on
//! the parity of the wake cycle). Fast-forward hops the parked span at
//! once, lockstep crawls it cycle by cycle; both charge identical
//! ledgers and resume at the identical grant, an equivalence pinned by
//! the randomized round-robin differential in
//! `tests/engine_equivalence.rs`. Under
//! [`Policy::Throttled`] the fast-forward hop is disabled — the clock
//! already advances in period-sized aligned jumps, and a mid-window hop
//! would let the two pacings step engines at different service cycles,
//! breaking pacing equivalence.
//!
//! The process-wide default pacing is [`Pacing::FastForward`], can be
//! set at startup from the `TRACEGC_SCHED` environment variable
//! (`lockstep` / `fastforward`), overridden per process via
//! [`set_default_pacing`] (the experiment driver's `--sched` flag), per
//! scope via [`with_pacing`] (how the differential tests run one driver
//! both ways), and per scheduler via [`Scheduler::pacing`].
//!
//! # Exec: bulk-synchronous partition parallelism
//!
//! Orthogonal to both [`Policy`] (who is served within a schedule) and
//! [`Pacing`] (how the clock advances between service rounds), an
//! [`Exec`] selects how many *host* worker threads execute independent
//! partitions of the engine set. The partitioning rule is strict:
//! engines that share a scheduler context (one [`Scheduler::run`] call —
//! in the SoC, one DDR3 controller) interact at every service round
//! through that context, so a shared-context schedule is one
//! indivisible partition. What can run in parallel are *whole
//! partitions*: disjoint `(engines, ctx)` groups that provably never
//! exchange state — the multi-unit sweep's grid points, faultsweep's
//! independent fault-rate runs, per-process marks on private memory
//! channels. [`run_partitions`] executes such groups on up to
//! `workers` threads between two barriers (the fork at submission and
//! the join before results are read), returns results in partition
//! order regardless of OS scheduling, and short-circuits the work
//! queue when any partition panics. [`Scheduler::try_run_partitioned`]
//! is the typed entry point: each [`Partition`] owns its engine set
//! *and* its context, so non-interaction is enforced by construction,
//! and the per-partition reports and stall ledgers come back in
//! partition order for a deterministic merge (`busy + Σ stalls ==
//! cycles × lanes` closes per partition, hence over any merge order —
//! the harness always merges in partition order so sidecars are
//! byte-identical for every worker count).
//!
//! The process-wide default is [`Exec::Serial`], can be set at startup
//! from the `TRACEGC_PAR_ENGINES` environment variable (a worker
//! count), overridden per process via [`set_default_exec`] (the
//! experiment driver's `--par-engines` flag) and per scope via
//! [`with_exec`].
//!
//! A no-progress watchdog replaces ad-hoc per-loop deadlock panics:
//! after [`DEFAULT_NO_PROGRESS_LIMIT`] cycles (configurable via
//! [`Scheduler::no_progress_limit`]) in which every engine stalled,
//! [`Scheduler::try_run`] returns a [`SimError::Deadlock`] whose dump
//! lists each engine's name, current stall reason, pending event and
//! [`StallAccounting`] ledger. [`Scheduler::run`] is the historical
//! panicking wrapper: it panics with that same dump as the message.
//!
//! # Examples
//!
//! ```
//! use tracegc_sim::sched::{Engine, Policy, Progress, Scheduler};
//!
//! /// Counts down one unit of work per cycle; `Ctx` is unused.
//! struct Countdown(u64);
//! impl Engine<()> for Countdown {
//!     fn name(&self) -> &'static str {
//!         "countdown"
//!     }
//!     fn step(&mut self, _now: u64, _ctx: &mut ()) -> Progress {
//!         if self.0 == 0 {
//!             return Progress::Done;
//!         }
//!         self.0 -= 1;
//!         Progress::Advanced
//!     }
//!     fn next_event_at(&self) -> Option<u64> {
//!         None
//!     }
//! }
//!
//! let mut e = Countdown(10);
//! let report = Scheduler::new(Policy::Lockstep).run(&mut [&mut e], &mut (), 0);
//! assert_eq!(report.end, 10);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::fault::SimError;
use crate::metrics::{StallAccounting, StallReason};
use crate::Cycle;

/// What an [`Engine`] accomplished in one offered cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// The engine did work this cycle.
    Advanced,
    /// The engine could not make progress; consult
    /// [`Engine::next_event_at`] for when it might.
    Stalled,
    /// The engine has finished; it will not be stepped again.
    Done,
}

/// A cycle-stepped state machine the [`Scheduler`] can tick.
///
/// Implementations exist for the traversal unit, the reclamation
/// unit's sweeper array, the CPU collector phases and the
/// concurrent-mutator model (in their owning crates); anything that can
/// advance one cycle at a time against shared state can join an SoC.
///
/// Engines that keep their own [`StallAccounting`] ledgers internally
/// (self-clocked engines like the sweeper array) leave the `note_*`
/// hooks as the default no-ops; externally-clocked engines route the
/// scheduler's charges into their ledger so the
/// `busy + Σ stalls == cycles` invariant holds per engine.
pub trait Engine<Ctx> {
    /// Short stable name, used in watchdog dumps and progress logs.
    fn name(&self) -> &'static str;

    /// Instance label for watchdog dumps: [`Engine::name`] plus any
    /// per-instance identity (heap index, tenant id, partition). A
    /// fleet deadlock dump that says `traversal` eight times is
    /// useless; one that says `traversal[tenant 3 social-graph]` names
    /// the culprit. Defaults to the bare name.
    fn label(&self) -> String {
        self.name().to_string()
    }

    /// Offers the engine cycle `now`; the engine reports what it did.
    fn step(&mut self, now: Cycle, ctx: &mut Ctx) -> Progress;

    /// Earliest cycle at which a stalled engine could progress, if any.
    ///
    /// # Contract (load-bearing for [`Pacing::FastForward`])
    ///
    /// When a service round ends with every live engine stalled, the
    /// fast-forward scheduler skips *without stepping* every cycle
    /// strictly before the earliest reported event, so implementors
    /// must uphold (and `tests/engine_contract.rs` property-checks):
    ///
    /// * **Never late.** A stalled engine must never report an event
    ///   later than its true next state change: re-stepped at any cycle
    ///   strictly before the reported event it must return
    ///   [`Progress::Stalled`] again and be side-effect-free, absent
    ///   new external input. External wake sources (e.g. mailbox
    ///   traffic from a mutator) must themselves be scheduled engines
    ///   reporting their own events, so the cross-engine minimum covers
    ///   them.
    /// * **Never stale.** An engine that just returned
    ///   [`Progress::Stalled`] at `now` must report an event `> now`
    ///   (or `None`). A past event is not "conservative": it masks the
    ///   engine's real future events behind the scheduler's minimum and
    ///   degrades fast-forward into a one-cycle crawl.
    /// * **Not stalled at the event.** Stepped at the reported cycle,
    ///   the engine must make progress (or finish) — events mark real
    ///   state changes, not guesses.
    /// * **Span-stable stall reasons.** [`Engine::stall_reason`] must
    ///   be constant over the skipped span, so one span-sized ledger
    ///   charge equals lockstep's per-cycle charges.
    ///
    /// `None` means "no self-scheduled wake": the scheduler must step
    /// the engine to discover progress, and deadlocks if every live
    /// engine is stalled with no event.
    fn next_event_at(&self) -> Option<Cycle>;

    /// Why the engine cannot progress at `now` (used for stall charging
    /// and watchdog dumps). Defaults to [`StallReason::Idle`].
    fn stall_reason(&self, _now: Cycle) -> StallReason {
        StallReason::Idle
    }

    /// Charges `n` cycles of forward progress to the engine's ledger.
    /// Default no-op for self-accounting engines.
    fn note_busy(&mut self, _n: u64) {}

    /// Charges `span` stalled cycles starting at `now` to `reason`.
    /// Default no-op for self-accounting engines.
    fn note_stall(&mut self, _now: Cycle, _reason: StallReason, _span: u64) {}

    /// Background engines (e.g. a mutator) never finish and do not gate
    /// run completion.
    fn is_background(&self) -> bool {
        false
    }

    /// A snapshot of the engine's stall ledger for watchdog dumps.
    fn ledger(&self) -> Option<StallAccounting> {
        None
    }
}

/// How the [`Scheduler`] arbitrates its engines each cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Policy {
    /// Every live engine is offered every cycle, in registration order.
    Lockstep,
    /// Every live engine is offered every cycle, in the given order
    /// (a permutation of engine indices; earlier = higher priority).
    Priority(Vec<usize>),
    /// One engine is served per cycle by a rotating grant pointer,
    /// modelling a single time-multiplexed datapath (§VII multi-process
    /// sharing). Unserved engines are charged
    /// [`StallReason::PortBusy`]; the rotation is hop-invariant across
    /// the arbiter's idle-span parking (see the module docs).
    RoundRobin,
    /// Lockstep, but engines are only offered cycles at multiples of
    /// `period` from the start cycle; skipped cycles are charged
    /// [`StallReason::Throttled`] (§VII bandwidth capping).
    Throttled {
        /// Cycles between consecutive service cycles (≥ 1).
        period: Cycle,
    },
}

/// How the scheduler's clock advances between service rounds (see the
/// module docs): `Lockstep` is the one-cycle-at-a-time reference
/// interpreter, `FastForward` (the default) hops the clock straight to
/// the earliest future [`Engine::next_event_at`]. Both produce
/// identical cycle counts and ledgers; only wall-clock differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Step every live engine at every service cycle; the clock only
    /// advances one cycle at a time.
    Lockstep,
    /// Event-driven: skip cycles provably free of state changes,
    /// charging the skipped span to each engine's stall ledger.
    FastForward,
}

impl Pacing {
    /// Parses a CLI/env spelling (`lockstep` / `fastforward`, with
    /// `fast-forward` accepted as an alias).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lockstep" => Some(Self::Lockstep),
            "fastforward" | "fast-forward" => Some(Self::FastForward),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::Lockstep => "lockstep",
            Self::FastForward => "fastforward",
        }
    }
}

/// Process-wide default pacing: 0 = uninitialized, else `Pacing` + 1.
static DEFAULT_PACING: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Scoped override installed by [`with_pacing`]; beats the process
    /// default so parallel tests can pick a pacing without racing.
    static PACING_OVERRIDE: std::cell::Cell<Option<Pacing>> = const { std::cell::Cell::new(None) };
}

fn decode_pacing(v: u8) -> Option<Pacing> {
    match v {
        1 => Some(Pacing::Lockstep),
        2 => Some(Pacing::FastForward),
        _ => None,
    }
}

/// The pacing a [`Scheduler::new`] starts with: a [`with_pacing`] scope
/// if one is active, else the process default ([`set_default_pacing`],
/// falling back to the `TRACEGC_SCHED` environment variable, falling
/// back to [`Pacing::FastForward`]).
pub fn default_pacing() -> Pacing {
    if let Some(p) = PACING_OVERRIDE.with(std::cell::Cell::get) {
        return p;
    }
    if let Some(p) = decode_pacing(DEFAULT_PACING.load(Ordering::Relaxed)) {
        return p;
    }
    let p = std::env::var("TRACEGC_SCHED")
        .ok()
        .as_deref()
        .and_then(Pacing::parse)
        .unwrap_or(Pacing::FastForward);
    DEFAULT_PACING.store(p as u8 + 1, Ordering::Relaxed);
    p
}

/// Sets the process-wide default pacing (the experiment driver's
/// `--sched` flag calls this before spawning its worker pool).
pub fn set_default_pacing(p: Pacing) {
    DEFAULT_PACING.store(p as u8 + 1, Ordering::Relaxed);
}

/// Runs `f` with `p` as this thread's default pacing, restoring the
/// previous scope afterwards. Every `run_*` driver constructs its
/// scheduler via [`Scheduler::new`], so this is how the differential
/// tests run the same driver under both pacings without racing other
/// test threads on the process default.
pub fn with_pacing<R>(p: Pacing, f: impl FnOnce() -> R) -> R {
    let prev = PACING_OVERRIDE.with(|o| o.replace(Some(p)));
    let r = f();
    PACING_OVERRIDE.with(|o| o.set(prev));
    r
}

/// How many host worker threads execute independent partitions (see
/// the module docs): the execution axis orthogonal to [`Policy`] and
/// [`Pacing`]. Purely a wall-clock knob — every output is byte-identical
/// for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    /// Partitions run inline on the calling thread, in order.
    Serial,
    /// Partitions run on up to `workers` threads between barriers;
    /// results are still collected in partition order.
    Parallel {
        /// Worker-thread budget (≥ 2; 0/1 mean [`Exec::Serial`]).
        workers: usize,
    },
}

impl Exec {
    /// The `Exec` for a `--par-engines N` worker budget: `0` and `1`
    /// are [`Exec::Serial`], anything larger [`Exec::Parallel`].
    pub fn from_workers(workers: usize) -> Self {
        if workers <= 1 {
            Self::Serial
        } else {
            Self::Parallel { workers }
        }
    }

    /// The worker-thread budget (1 for [`Exec::Serial`]).
    pub fn workers(self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Parallel { workers } => workers,
        }
    }
}

/// Process-wide default exec: 0 = uninitialized, else workers + 1.
static DEFAULT_EXEC: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_exec`]; beats the process
    /// default so parallel tests can pick an exec without racing.
    static EXEC_OVERRIDE: std::cell::Cell<Option<Exec>> = const { std::cell::Cell::new(None) };
}

/// The exec a partitioned driver starts with: a [`with_exec`] scope if
/// one is active, else the process default ([`set_default_exec`],
/// falling back to the `TRACEGC_PAR_ENGINES` environment variable,
/// falling back to [`Exec::Serial`]).
pub fn default_exec() -> Exec {
    if let Some(e) = EXEC_OVERRIDE.with(std::cell::Cell::get) {
        return e;
    }
    match DEFAULT_EXEC.load(Ordering::Relaxed) {
        0 => {
            let e = std::env::var("TRACEGC_PAR_ENGINES")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .map(Exec::from_workers)
                .unwrap_or(Exec::Serial);
            DEFAULT_EXEC.store(e.workers() + 1, Ordering::Relaxed);
            e
        }
        v => Exec::from_workers(v - 1),
    }
}

/// Sets the process-wide default exec (the experiment driver's
/// `--par-engines` flag calls this before running the registry).
pub fn set_default_exec(e: Exec) {
    DEFAULT_EXEC.store(e.workers() + 1, Ordering::Relaxed);
}

/// Runs `f` with `e` as this thread's default exec, restoring the
/// previous scope afterwards (how the jobs-crossed determinism tests
/// run the same experiment at several worker counts without racing).
pub fn with_exec<R>(e: Exec, f: impl FnOnce() -> R) -> R {
    let prev = EXEC_OVERRIDE.with(|o| o.replace(Some(e)));
    let r = f();
    EXEC_OVERRIDE.with(|o| o.set(prev));
    r
}

/// Sets the shared poison flag iff its owner is unwinding, so sibling
/// workers stop claiming new partitions once any partition panics.
struct PoisonOnPanic<'a>(&'a AtomicBool);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// Executes independent partitions under `exec`, returning results in
/// partition order.
///
/// This is the bulk-synchronous superstep primitive behind
/// [`Scheduler::try_run_partitioned`] and the harness's worker pool:
/// the call is bracketed by two barriers (workers fork on entry and all
/// join before any result is read), partitions are claimed dynamically
/// from an atomic cursor so long partitions do not strand workers
/// behind a static split, and each result lands in the slot of its
/// input index, so the output order — and therefore every downstream
/// merge — is independent of both `exec` and OS scheduling.
///
/// `f` receives the partition index alongside the item, so callers can
/// seed or label per-partition state without smuggling an index through
/// the item type.
///
/// # Panics
///
/// A panic in `f` poisons the work queue: no *new* partition is claimed
/// afterwards (in-flight ones finish), and the panic propagates to the
/// caller once all workers have stopped.
pub fn run_partitions<T, U, F>(exec: Exec, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = exec.workers().clamp(1, n.max(1));
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // Each input sits in its own slot so a worker can take ownership of
    // partition `i` without holding any shared lock while running `f`;
    // each output lands in the slot of the same index, which preserves
    // partition order no matter which worker finishes first.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let poison = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if poison.load(Ordering::SeqCst) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("a work slot is locked at most once")
                    .take()
                    .expect("the cursor hands out each index once");
                let guard = PoisonOnPanic(&poison);
                let result = f(i, item);
                drop(guard);
                *out[i].lock().expect("a result slot is locked at most once") = Some(result);
            });
        }
    });

    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers have joined")
                .expect("every partition was executed")
        })
        .collect()
}

/// One independent engine group for [`Scheduler::try_run_partitioned`]:
/// the engines *and* the context they share. Because every partition
/// owns its context exclusively (`&mut`), two partitions cannot
/// exchange state through a scheduler context by construction — the
/// type-level form of the module docs' partitioning rule.
pub struct Partition<'a, Ctx> {
    /// The partition's engine set (one shared-context schedule).
    pub engines: Vec<&'a mut (dyn Engine<Ctx> + Send)>,
    /// The context exclusively owned by this partition.
    pub ctx: &'a mut Ctx,
}

/// Default no-progress watchdog: panic after this many consecutive
/// cycles in which no engine advanced or finished.
pub const DEFAULT_NO_PROGRESS_LIMIT: Cycle = 10_000_000;

/// Outcome of one [`Scheduler::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocReport {
    /// Cycle the run began.
    pub start: Cycle,
    /// Cycle the last non-background engine finished.
    pub end: Cycle,
    /// Per-engine completion cycles, in registration order (background
    /// engines keep `start`).
    pub ends: Vec<Cycle>,
}

impl SocReport {
    /// Wall-clock cycles of the whole run.
    pub fn cycles(&self) -> Cycle {
        self.end - self.start
    }
}

/// Ticks a set of [`Engine`]s on one shared clock under a [`Policy`].
///
/// The scheduler borrows the engines only for the duration of
/// [`Scheduler::run`], so callers keep ownership and can extract
/// engine-specific results afterwards.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: Policy,
    pacing: Pacing,
    no_progress_limit: Cycle,
}

impl Scheduler {
    /// A scheduler with the given policy, the ambient
    /// [`default_pacing`] and the default watchdog.
    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            pacing: default_pacing(),
            no_progress_limit: DEFAULT_NO_PROGRESS_LIMIT,
        }
    }

    /// Overrides the pacing for this scheduler only.
    pub fn pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Overrides the no-progress watchdog threshold.
    pub fn no_progress_limit(mut self, cycles: Cycle) -> Self {
        self.no_progress_limit = cycles;
        self
    }

    /// Runs the engines to completion from cycle `start`.
    ///
    /// This is the historical panicking wrapper over
    /// [`Scheduler::try_run`], kept for drivers that run trusted
    /// engine sets where a wedge is a simulator bug.
    ///
    /// # Panics
    ///
    /// Panics when every engine stalls with no pending event, or when
    /// the no-progress watchdog trips — both with a per-engine
    /// stall-reason and ledger dump.
    pub fn run<Ctx>(
        &self,
        engines: &mut [&mut dyn Engine<Ctx>],
        ctx: &mut Ctx,
        start: Cycle,
    ) -> SocReport {
        self.try_run(engines, ctx, start)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the engines to completion from cycle `start`, degrading a
    /// scheduler wedge into [`SimError::Deadlock`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] (with the per-engine stall-reason
    /// and ledger dump) when every engine stalls with no pending event
    /// or the no-progress watchdog trips.
    ///
    /// # Panics
    ///
    /// Panics on caller errors: an empty engine set, no foreground
    /// engine, or a non-permutation priority order.
    pub fn try_run<Ctx>(
        &self,
        engines: &mut [&mut dyn Engine<Ctx>],
        ctx: &mut Ctx,
        start: Cycle,
    ) -> Result<SocReport, SimError> {
        assert!(!engines.is_empty(), "scheduler needs at least one engine");
        assert!(
            engines.iter().any(|e| !e.is_background()),
            "scheduler needs a foreground engine to define completion"
        );
        match &self.policy {
            Policy::RoundRobin => self.run_round_robin(engines, ctx, start),
            Policy::Lockstep => self.run_synchronous(engines, ctx, start, None, 1),
            Policy::Priority(order) => {
                self.run_synchronous(engines, ctx, start, Some(order.clone()), 1)
            }
            Policy::Throttled { period } => {
                self.run_synchronous(engines, ctx, start, None, (*period).max(1))
            }
        }
    }

    /// Runs independent engine partitions to completion from cycle
    /// `start`, each under this scheduler's policy/pacing/watchdog, on
    /// up to [`Exec::workers`] host threads.
    ///
    /// Each [`Partition`] is one shared-context schedule — exactly one
    /// [`Scheduler::try_run`] call — so partitions provably never
    /// interact (see the module docs). Reports come back in partition
    /// order regardless of `exec` or OS scheduling; on error the first
    /// failing partition *in partition order* wins, so error surfacing
    /// is deterministic too.
    ///
    /// # Errors
    ///
    /// Returns the first partition's [`SimError::Deadlock`] in
    /// partition order, if any partition wedges.
    ///
    /// # Panics
    ///
    /// Panics on the caller errors [`Scheduler::try_run`] rejects
    /// (empty engine set, no foreground engine, bad priority order) in
    /// any partition, and propagates panics out of engine code.
    pub fn try_run_partitioned<Ctx: Send>(
        &self,
        exec: Exec,
        parts: Vec<Partition<'_, Ctx>>,
        start: Cycle,
    ) -> Result<Vec<SocReport>, SimError> {
        run_partitions(exec, parts, |_, p| {
            let Partition { mut engines, ctx } = p;
            let mut dyns: Vec<&mut dyn Engine<Ctx>> = engines
                .iter_mut()
                .map(|e| &mut **e as &mut dyn Engine<Ctx>)
                .collect();
            self.try_run(&mut dyns, ctx, start)
        })
        .into_iter()
        .collect()
    }

    /// Lockstep / priority / throttled: every live engine is offered
    /// every service cycle.
    fn run_synchronous<Ctx>(
        &self,
        engines: &mut [&mut dyn Engine<Ctx>],
        ctx: &mut Ctx,
        start: Cycle,
        order: Option<Vec<usize>>,
        period: Cycle,
    ) -> Result<SocReport, SimError> {
        let n = engines.len();
        let order: Vec<usize> = order.unwrap_or_else(|| (0..n).collect());
        {
            let mut seen = vec![false; n];
            for &i in &order {
                assert!(i < n && !seen[i], "priority order must permute 0..{n}");
                seen[i] = true;
            }
            assert!(order.len() == n, "priority order must permute 0..{n}");
        }
        let mut done = vec![false; n];
        let mut ends = vec![start; n];
        let mut advanced = vec![false; n];
        let mut now = start;
        let mut last_progress = start;
        loop {
            advanced.iter_mut().for_each(|a| *a = false);
            let mut any_progress = false;
            for &i in &order {
                if done[i] {
                    continue;
                }
                match engines[i].step(now, ctx) {
                    Progress::Done => {
                        done[i] = true;
                        ends[i] = now;
                        any_progress = true;
                    }
                    Progress::Advanced => {
                        advanced[i] = true;
                        any_progress = true;
                    }
                    Progress::Stalled => {}
                }
            }
            if (0..n).all(|i| done[i] || engines[i].is_background()) {
                break;
            }
            if any_progress {
                last_progress = now;
                for i in 0..n {
                    if done[i] {
                        continue;
                    }
                    if advanced[i] {
                        engines[i].note_busy(1);
                    } else {
                        let reason = engines[i].stall_reason(now);
                        engines[i].note_stall(now, reason, 1);
                    }
                }
                now += 1;
            } else {
                // Every live engine stalled. With no pending event
                // anywhere the set can never advance; otherwise the
                // pacing decides how far the clock moves before the
                // next service round.
                let wake = (0..n)
                    .filter(|&i| !done[i])
                    .filter_map(|i| engines[i].next_event_at())
                    .min();
                match wake {
                    None => {
                        return Err(self.deadlock_report(
                            engines,
                            &done,
                            now,
                            "every engine is stalled with no pending event",
                        ))
                    }
                    // Fast-forward: every cycle strictly before the
                    // earliest reported event is provably another
                    // all-stall round (the `next_event_at` contract),
                    // so hop the clock straight there, charging each
                    // engine the span it would have been charged cycle
                    // by cycle. The hop is clamped to the watchdog
                    // deadline so livelocks trip at the same cycle
                    // (with the same ledger) as under lockstep.
                    // Disabled under the §VII throttle policy: there
                    // the clock already advances in period-sized
                    // aligned jumps, and a mid-window hop would let the
                    // two pacings step engines at different service
                    // cycles.
                    Some(t) if t > now && self.pacing == Pacing::FastForward && period == 1 => {
                        let deadline = last_progress
                            .saturating_add(self.no_progress_limit)
                            .saturating_add(1);
                        let t = t.min(deadline);
                        let span = t - now;
                        for i in (0..n).filter(|&i| !done[i]) {
                            let reason = engines[i].stall_reason(now);
                            engines[i].note_stall(now, reason, span);
                        }
                        now = t;
                    }
                    // Lockstep (or a stale event): charge this cycle
                    // and crawl.
                    Some(_) => {
                        for i in (0..n).filter(|&i| !done[i]) {
                            let reason = engines[i].stall_reason(now);
                            engines[i].note_stall(now, reason, 1);
                        }
                        now += 1;
                    }
                }
                if now - last_progress > self.no_progress_limit {
                    return Err(self.deadlock_report(
                        engines,
                        &done,
                        now,
                        "no engine made progress within the watchdog window",
                    ));
                }
            }
            // §VII throttle: align the clock to the next service cycle,
            // charging the gap so per-engine ledgers stay exact.
            if period > 1 {
                let rel = now - start;
                let aligned = start + rel.div_ceil(period) * period;
                if aligned > now {
                    let span = aligned - now;
                    for i in (0..n).filter(|&i| !done[i]) {
                        engines[i].note_stall(now, StallReason::Throttled, span);
                    }
                    now = aligned;
                }
            }
        }
        let end = (0..n)
            .filter(|&i| !engines[i].is_background())
            .map(|i| ends[i])
            .max()
            .expect("at least one foreground engine");
        Ok(SocReport { start, end, ends })
    }

    /// Round-robin: a single time-multiplexed datapath serves one
    /// engine per service cycle, rotating an explicit grant pointer. A
    /// full grant round without progress *parks* the arbiter until the
    /// earliest pending event; the grant pointer is carried across the
    /// parked span, so the rotation is hop-invariant (see the module
    /// docs — the grant was historically derived from the absolute
    /// cycle, `now % n`, so a skip landing on the wrong parity
    /// re-granted the engine just served or swallowed a turn).
    fn run_round_robin<Ctx>(
        &self,
        engines: &mut [&mut dyn Engine<Ctx>],
        ctx: &mut Ctx,
        start: Cycle,
    ) -> Result<SocReport, SimError> {
        let n = engines.len();
        assert!(
            engines.iter().all(|e| !e.is_background()),
            "round-robin arbitration has no background lane"
        );
        let mut done = vec![false; n];
        let mut ends = vec![start; n];
        let mut now = start;
        let mut grant = (start % n as u64) as usize;
        let mut idle_round = 0usize;
        let mut parked = false;
        let mut last_progress = start;
        loop {
            if parked {
                // The datapath is idle: a full grant round found every
                // live engine stalled. Wait for the earliest pending
                // event without rotating the grant — nobody is being
                // served, so every engine is charged its *own* stall
                // reason, not PortBusy.
                let wake = (0..n)
                    .filter(|&j| !done[j])
                    .filter_map(|j| engines[j].next_event_at())
                    .min();
                let t = match wake {
                    None => {
                        return Err(self.deadlock_report(
                            engines,
                            &done,
                            now,
                            "every engine is stalled with no pending event",
                        ))
                    }
                    Some(t) => t,
                };
                if t <= now {
                    // A stale event: charge one idle cycle and resume
                    // service (the passed event may unblock a step).
                    for j in (0..n).filter(|&j| !done[j]) {
                        let reason = engines[j].stall_reason(now);
                        engines[j].note_stall(now, reason, 1);
                    }
                    now += 1;
                    parked = false;
                    idle_round = 0;
                } else {
                    // Fast-forward hops the parked span at once;
                    // lockstep crawls it one cycle at a time. Both
                    // charge every live engine its own (span-stable)
                    // stall reason over the identical span and resume
                    // at the identical grant, so the pacings agree
                    // cycle-for-cycle and ledger-for-ledger. The hop is
                    // clamped to the watchdog deadline so a livelock
                    // trips at the same cycle with the same dump.
                    let deadline = last_progress
                        .saturating_add(self.no_progress_limit)
                        .saturating_add(1);
                    let hop = if self.pacing == Pacing::FastForward {
                        t.min(deadline)
                    } else {
                        now + 1
                    };
                    let span = hop - now;
                    for j in (0..n).filter(|&j| !done[j]) {
                        let reason = engines[j].stall_reason(now);
                        engines[j].note_stall(now, reason, span);
                    }
                    now = hop;
                    if now >= t {
                        parked = false;
                        idle_round = 0;
                    }
                }
                if now - last_progress > self.no_progress_limit {
                    return Err(self.deadlock_report(
                        engines,
                        &done,
                        now,
                        "no engine made progress within the watchdog window",
                    ));
                }
                continue;
            }
            let idx = grant;
            let mut progress = false;
            if !done[idx] {
                match engines[idx].step(now, ctx) {
                    Progress::Done => {
                        done[idx] = true;
                        ends[idx] = now;
                        progress = true;
                    }
                    Progress::Advanced => progress = true,
                    Progress::Stalled => {}
                }
            }
            if done.iter().all(|&d| d) {
                break;
            }
            if progress {
                last_progress = now;
                idle_round = 0;
                if !done[idx] {
                    engines[idx].note_busy(1);
                }
                for j in (0..n).filter(|&j| j != idx && !done[j]) {
                    engines[j].note_stall(now, StallReason::PortBusy, 1);
                }
                now += 1;
            } else {
                idle_round += 1;
                if idle_round >= n {
                    // A full round with no progress: park the arbiter.
                    // This slot's cycle becomes the first parked cycle
                    // (charged by the parked handler above), and the
                    // grant advances exactly once — the slot was
                    // consumed — so service resumes at the rotation
                    // successor whatever the wake cycle's parity.
                    parked = true;
                } else {
                    for j in (0..n).filter(|&j| !done[j]) {
                        let reason = if j == idx {
                            engines[j].stall_reason(now)
                        } else {
                            StallReason::PortBusy
                        };
                        engines[j].note_stall(now, reason, 1);
                    }
                    now += 1;
                }
                if now - last_progress > self.no_progress_limit {
                    return Err(self.deadlock_report(
                        engines,
                        &done,
                        now,
                        "no engine made progress within the watchdog window",
                    ));
                }
            }
            grant = (grant + 1) % n;
        }
        let end = *ends.iter().max().expect("non-empty");
        Ok(SocReport { start, end, ends })
    }

    /// Builds the [`SimError::Deadlock`] carrying the per-engine
    /// stall-reason and ledger dump.
    fn deadlock_report<Ctx>(
        &self,
        engines: &[&mut dyn Engine<Ctx>],
        done: &[bool],
        now: Cycle,
        why: &str,
    ) -> SimError {
        let mut msg = format!("scheduler deadlock at cycle {now}: {why}\n");
        for (i, e) in engines.iter().enumerate() {
            if done[i] {
                msg.push_str(&format!("  [{i}] {}: done\n", e.label()));
                continue;
            }
            msg.push_str(&format!(
                "  [{i}] {}: stalled on {}, next_event={:?}",
                e.label(),
                e.stall_reason(now).name(),
                e.next_event_at()
            ));
            if let Some(ledger) = e.ledger() {
                msg.push_str(&format!(" — busy={}", ledger.busy_cycles()));
                for (reason, cycles) in ledger.breakdown() {
                    if cycles > 0 {
                        msg.push_str(&format!(" {}={cycles}", reason.name()));
                    }
                }
            }
            msg.push('\n');
        }
        SimError::Deadlock { at: now, dump: msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy engine: does `work` units, one per cycle, optionally only
    /// when `gate` divides `now`; self-reports a ledger.
    struct Toy {
        name: &'static str,
        work: u64,
        gate: u64,
        ledger: StallAccounting,
        background: bool,
    }

    impl Toy {
        fn new(name: &'static str, work: u64) -> Self {
            Self {
                name,
                work,
                gate: 1,
                ledger: StallAccounting::default(),
                background: false,
            }
        }
    }

    impl Engine<Vec<&'static str>> for Toy {
        fn name(&self) -> &'static str {
            self.name
        }
        fn step(&mut self, now: Cycle, log: &mut Vec<&'static str>) -> Progress {
            if self.work == 0 && !self.background {
                return Progress::Done;
            }
            if !now.is_multiple_of(self.gate) {
                return Progress::Stalled;
            }
            log.push(self.name);
            self.work = self.work.saturating_sub(1);
            Progress::Advanced
        }
        fn next_event_at(&self) -> Option<Cycle> {
            // Toys with `gate == 1` never stall while live, so the
            // scheduler never consults this.
            None
        }
        fn stall_reason(&self, _now: Cycle) -> StallReason {
            StallReason::MemLatency
        }
        fn note_busy(&mut self, n: u64) {
            self.ledger.busy(n);
        }
        fn note_stall(&mut self, _now: Cycle, reason: StallReason, span: u64) {
            self.ledger.stall(reason, span);
        }
        fn is_background(&self) -> bool {
            self.background
        }
        fn ledger(&self) -> Option<StallAccounting> {
            Some(self.ledger)
        }
    }

    #[test]
    fn lockstep_single_engine_runs_to_completion() {
        let mut e = Toy::new("a", 5);
        let mut log = Vec::new();
        let report = Scheduler::new(Policy::Lockstep).run(&mut [&mut e], &mut log, 100);
        assert_eq!(report.start, 100);
        assert_eq!(report.end, 105);
        assert_eq!(report.ends, vec![105]);
        assert_eq!(report.cycles(), 5);
        assert_eq!(e.ledger.busy_cycles(), 5);
        assert_eq!(e.ledger.total_stalled(), 0);
    }

    #[test]
    fn lockstep_ends_track_each_engine_and_ledgers_cover_spans() {
        let mut a = Toy::new("a", 3);
        let mut b = Toy::new("b", 7);
        let mut log = Vec::new();
        let report = Scheduler::new(Policy::Lockstep).run(&mut [&mut a, &mut b], &mut log, 0);
        assert_eq!(report.ends, vec![3, 7]);
        assert_eq!(report.end, 7);
        // Each engine's ledger covers exactly its live span.
        assert_eq!(a.ledger.total(), 3);
        assert_eq!(b.ledger.total(), 7);
        assert_eq!(b.ledger.busy_cycles(), 7);
    }

    #[test]
    fn priority_orders_intra_cycle_service() {
        let mut a = Toy::new("a", 2);
        let mut b = Toy::new("b", 2);
        let mut log = Vec::new();
        Scheduler::new(Policy::Priority(vec![1, 0])).run(&mut [&mut a, &mut b], &mut log, 0);
        assert_eq!(log, vec!["b", "a", "b", "a"]);
    }

    #[test]
    #[should_panic(expected = "priority order must permute")]
    fn priority_rejects_non_permutations() {
        let mut a = Toy::new("a", 1);
        let mut b = Toy::new("b", 1);
        let mut log = Vec::new();
        Scheduler::new(Policy::Priority(vec![0, 0])).run(&mut [&mut a, &mut b], &mut log, 0);
    }

    #[test]
    fn round_robin_serves_one_engine_per_cycle() {
        let mut a = Toy::new("a", 2);
        let mut b = Toy::new("b", 2);
        let mut log = Vec::new();
        let report = Scheduler::new(Policy::RoundRobin).run(&mut [&mut a, &mut b], &mut log, 0);
        // Interleaved service: a@0 b@1 a@2 b@3, Done on the next served
        // cycle each.
        assert_eq!(log, vec!["a", "b", "a", "b"]);
        assert_eq!(report.ends, vec![4, 5]);
        // Unserved live cycles are charged to the shared port.
        assert!(a.ledger.stalled(StallReason::PortBusy) > 0);
        assert_eq!(a.ledger.total(), 4);
        assert_eq!(b.ledger.total(), 5);
    }

    #[test]
    fn throttled_charges_skipped_cycles() {
        let mut a = Toy::new("a", 4);
        let mut log = Vec::new();
        let report =
            Scheduler::new(Policy::Throttled { period: 4 }).run(&mut [&mut a], &mut log, 0);
        // Service at 0,4,8,12; Done observed at 16.
        assert_eq!(report.end, 16);
        assert_eq!(a.ledger.busy_cycles(), 4);
        assert_eq!(a.ledger.stalled(StallReason::Throttled), 12);
        assert_eq!(a.ledger.total(), 16);
    }

    #[test]
    fn background_engines_do_not_gate_completion() {
        let mut fg = Toy::new("fg", 3);
        let mut bg = Toy::new("bg", 0);
        bg.background = true;
        let mut log = Vec::new();
        let report = Scheduler::new(Policy::Lockstep).run(&mut [&mut bg, &mut fg], &mut log, 0);
        assert_eq!(report.end, 3);
        assert_eq!(report.ends, vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "scheduler deadlock")]
    fn all_stalled_with_no_event_panics_with_dump() {
        struct Stuck;
        impl Engine<()> for Stuck {
            fn name(&self) -> &'static str {
                "stuck"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        let mut e = Stuck;
        Scheduler::new(Policy::Lockstep).run(&mut [&mut e], &mut (), 0);
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn no_progress_watchdog_trips_on_livelock() {
        /// Always stalled, but always claims an event one cycle away.
        struct Livelock;
        impl Engine<()> for Livelock {
            fn name(&self) -> &'static str {
                "livelock"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                Some(u64::MAX)
            }
        }
        let mut e = Livelock;
        Scheduler::new(Policy::Lockstep)
            .no_progress_limit(1000)
            .run(&mut [&mut e], &mut (), 0);
    }

    #[test]
    fn deadlock_dump_uses_instance_labels() {
        struct Tenant(usize);
        impl Engine<()> for Tenant {
            fn name(&self) -> &'static str {
                "traversal"
            }
            fn label(&self) -> String {
                format!("traversal[tenant {}]", self.0)
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        let (mut a, mut b) = (Tenant(0), Tenant(3));
        let err = Scheduler::new(Policy::Lockstep)
            .try_run(&mut [&mut a, &mut b], &mut (), 0)
            .unwrap_err();
        match &err {
            SimError::Deadlock { dump, .. } => {
                assert!(dump.contains("traversal[tenant 0]"));
                assert!(dump.contains("traversal[tenant 3]"));
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn try_run_reports_deadlock_without_panicking() {
        struct Stuck;
        impl Engine<()> for Stuck {
            fn name(&self) -> &'static str {
                "stuck"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        let mut e = Stuck;
        let err = Scheduler::new(Policy::Lockstep)
            .try_run(&mut [&mut e], &mut (), 7)
            .unwrap_err();
        match &err {
            SimError::Deadlock { at, dump } => {
                assert_eq!(*at, 7);
                assert!(dump.contains("scheduler deadlock at cycle 7"));
                assert!(dump.contains("stuck"));
                assert!(dump.contains("no pending event"));
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn try_run_reports_watchdog_trip_with_ledger_dump() {
        struct Livelock(StallAccounting);
        impl Engine<()> for Livelock {
            fn name(&self) -> &'static str {
                "livelock"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                Some(u64::MAX)
            }
            fn note_stall(&mut self, _now: Cycle, reason: StallReason, span: u64) {
                self.0.stall(reason, span);
            }
            fn ledger(&self) -> Option<StallAccounting> {
                Some(self.0)
            }
        }
        let mut e = Livelock(StallAccounting::default());
        let err = Scheduler::new(Policy::Lockstep)
            .no_progress_limit(1000)
            .try_run(&mut [&mut e], &mut (), 0)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("watchdog"));
        // The dump includes the engine's stall ledger.
        assert!(msg.contains("livelock"));
        assert!(msg.contains("idle="));
    }

    #[test]
    fn try_run_round_robin_reports_deadlock() {
        struct Stuck;
        impl Engine<()> for Stuck {
            fn name(&self) -> &'static str {
                "stuck"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        let (mut a, mut b) = (Stuck, Stuck);
        let err = Scheduler::new(Policy::RoundRobin)
            .try_run(&mut [&mut a, &mut b], &mut (), 0)
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    #[should_panic(expected = "foreground engine")]
    fn all_background_is_rejected() {
        let mut bg = Toy::new("bg", 0);
        bg.background = true;
        let mut log = Vec::new();
        Scheduler::new(Policy::Lockstep).run(&mut [&mut bg], &mut log, 0);
    }

    /// Stalls until `wake`, then does `work` units on its served slots,
    /// logging each service.
    struct Waker {
        name: &'static str,
        wake: Cycle,
        work: u64,
    }

    impl Engine<Vec<(&'static str, Cycle)>> for Waker {
        fn name(&self) -> &'static str {
            self.name
        }
        fn step(&mut self, now: Cycle, log: &mut Vec<(&'static str, Cycle)>) -> Progress {
            if self.work == 0 {
                return Progress::Done;
            }
            if now < self.wake {
                return Progress::Stalled;
            }
            log.push((self.name, now));
            self.work -= 1;
            Progress::Advanced
        }
        fn next_event_at(&self) -> Option<Cycle> {
            Some(self.wake)
        }
    }

    #[test]
    fn round_robin_rotation_is_hop_invariant_across_idle_spans() {
        // a is served at 0, b at 1; both stall until 11, parking the
        // arbiter. Hop-invariance: after the wake the rotation resumes
        // at a (the successor of b's consumed slot). The historical
        // `now % n` grant re-derived the slot from the wake cycle's
        // parity and served b at 11 — a's turn silently swallowed.
        let run = |pacing: Pacing| {
            let mut a = Waker {
                name: "a",
                wake: 11,
                work: 1,
            };
            let mut b = Waker {
                name: "b",
                wake: 11,
                work: 1,
            };
            let mut log = Vec::new();
            let report = Scheduler::new(Policy::RoundRobin).pacing(pacing).run(
                &mut [&mut a, &mut b],
                &mut log,
                0,
            );
            (log, report.ends)
        };
        let (log, ends) = run(Pacing::FastForward);
        assert_eq!(
            log,
            vec![("a", 11), ("b", 12)],
            "post-park service must continue the rotation at a"
        );
        assert_eq!(ends, vec![13, 14]);
        // The parked span is a pure arbitration event: both pacings
        // must serve the identical slots and finish at the same cycles.
        assert_eq!(run(Pacing::Lockstep), (log, ends));
    }

    #[test]
    fn round_robin_parked_crawl_and_hop_charge_identical_ledgers() {
        // Same shape as above, but with ledgered engines: the lockstep
        // crawl's per-cycle charges must sum to exactly the
        // fast-forward span charge, per engine and per reason.
        struct Ledgered {
            wake: Cycle,
            work: u64,
            ledger: StallAccounting,
        }
        impl Engine<()> for Ledgered {
            fn name(&self) -> &'static str {
                "ledgered"
            }
            fn step(&mut self, now: Cycle, _ctx: &mut ()) -> Progress {
                if self.work == 0 {
                    return Progress::Done;
                }
                if now < self.wake {
                    return Progress::Stalled;
                }
                self.work -= 1;
                Progress::Advanced
            }
            fn next_event_at(&self) -> Option<Cycle> {
                Some(self.wake)
            }
            fn stall_reason(&self, _now: Cycle) -> StallReason {
                StallReason::MemLatency
            }
            fn note_busy(&mut self, n: u64) {
                self.ledger.busy(n);
            }
            fn note_stall(&mut self, _now: Cycle, reason: StallReason, span: u64) {
                self.ledger.stall(reason, span);
            }
        }
        let run = |pacing: Pacing| {
            let mut a = Ledgered {
                wake: 40,
                work: 2,
                ledger: StallAccounting::default(),
            };
            let mut b = Ledgered {
                wake: 41,
                work: 1,
                ledger: StallAccounting::default(),
            };
            let report = Scheduler::new(Policy::RoundRobin).pacing(pacing).run(
                &mut [&mut a, &mut b],
                &mut (),
                0,
            );
            (report.ends, a.ledger, b.ledger)
        };
        let (ff_ends, ff_a, ff_b) = run(Pacing::FastForward);
        let (ls_ends, ls_a, ls_b) = run(Pacing::Lockstep);
        assert_eq!(ff_ends, ls_ends);
        assert_eq!(ff_a, ls_a);
        assert_eq!(ff_b, ls_b);
        // Per-engine closure over its live span.
        assert_eq!(ff_a.total(), ff_ends[0]);
        assert_eq!(ff_b.total(), ff_ends[1]);
    }

    #[test]
    fn exec_from_workers_folds_trivial_budgets_to_serial() {
        assert_eq!(Exec::from_workers(0), Exec::Serial);
        assert_eq!(Exec::from_workers(1), Exec::Serial);
        assert_eq!(Exec::from_workers(4), Exec::Parallel { workers: 4 });
        assert_eq!(Exec::Serial.workers(), 1);
        assert_eq!(Exec::Parallel { workers: 8 }.workers(), 8);
    }

    #[test]
    fn with_exec_scopes_and_restores() {
        let outer = default_exec();
        let inner = with_exec(Exec::Parallel { workers: 3 }, default_exec);
        assert_eq!(inner, Exec::Parallel { workers: 3 });
        assert_eq!(default_exec(), outer);
    }

    #[test]
    fn run_partitions_preserves_partition_order_for_any_worker_count() {
        let items: Vec<u64> = (0..23).collect();
        let serial = run_partitions(Exec::Serial, items.clone(), |i, x| (i as u64) * 100 + x * 2);
        for workers in [2, 3, 8] {
            let par = run_partitions(Exec::Parallel { workers }, items.clone(), |i, x| {
                (i as u64) * 100 + x * 2
            });
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn run_partitions_panic_poisons_the_work_queue() {
        use std::sync::atomic::AtomicBool;
        // Two workers, four partitions. Partition 0 blocks until
        // partition 1 has started, then lingers long enough for 1's
        // panic to poison the queue; partitions 2 and 3 must never
        // start.
        let started: Vec<AtomicBool> = (0..4).map(|_| AtomicBool::new(false)).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_partitions(
                Exec::Parallel { workers: 2 },
                vec![0usize, 1, 2, 3],
                |_, i| {
                    started[i].store(true, Ordering::SeqCst);
                    match i {
                        0 => {
                            while !started[1].load(Ordering::SeqCst) {
                                std::thread::yield_now();
                            }
                            std::thread::sleep(std::time::Duration::from_millis(100));
                        }
                        1 => panic!("partition 1 failed"),
                        _ => {}
                    }
                    i
                },
            )
        }));
        assert!(r.is_err(), "the partition panic must propagate");
        assert!(
            !started[2].load(Ordering::SeqCst) && !started[3].load(Ordering::SeqCst),
            "partitions after the panic must not be started"
        );
    }

    #[test]
    fn try_run_partitioned_matches_serial_runs_exactly() {
        let build = || {
            (0..5)
                .map(|i| Toy::new("toy", 3 + i as u64))
                .collect::<Vec<_>>()
        };
        let serial: Vec<SocReport> = build()
            .iter_mut()
            .map(|t| {
                Scheduler::new(Policy::Lockstep)
                    .try_run(&mut [t as &mut dyn Engine<_>], &mut Vec::new(), 0)
                    .unwrap()
            })
            .collect();
        for exec in [Exec::Serial, Exec::Parallel { workers: 4 }] {
            let mut toys = build();
            let mut ctxs: Vec<Vec<&'static str>> = (0..toys.len()).map(|_| Vec::new()).collect();
            let parts: Vec<Partition<'_, Vec<&'static str>>> = toys
                .iter_mut()
                .zip(ctxs.iter_mut())
                .map(|(t, ctx)| Partition {
                    engines: vec![t as &mut (dyn Engine<_> + Send)],
                    ctx,
                })
                .collect();
            let reports = Scheduler::new(Policy::Lockstep)
                .try_run_partitioned(exec, parts, 0)
                .unwrap();
            assert_eq!(reports, serial, "{exec:?}");
            // Ledgers merge deterministically in partition order and
            // stay closed: busy + stalls == cycles per engine.
            let mut merged = StallAccounting::default();
            for (t, r) in toys.iter().zip(&reports) {
                assert_eq!(t.ledger.total(), r.cycles());
                merged.merge(&t.ledger);
            }
            assert_eq!(merged.total(), reports.iter().map(SocReport::cycles).sum());
        }
    }

    #[test]
    fn try_run_partitioned_surfaces_the_first_deadlock_in_partition_order() {
        struct Stuck;
        impl Engine<()> for Stuck {
            fn name(&self) -> &'static str {
                "stuck"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        /// Completes after `n` cycles.
        struct Countdown(u64);
        impl Engine<()> for Countdown {
            fn name(&self) -> &'static str {
                "countdown"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                if self.0 == 0 {
                    return Progress::Done;
                }
                self.0 -= 1;
                Progress::Advanced
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        // Partition 0 completes; partition 1 deadlocks immediately.
        let mut a = Countdown(4);
        let mut stuck = Stuck;
        let (mut ctx_a, mut ctx_b) = ((), ());
        let parts = vec![
            Partition {
                engines: vec![&mut a as &mut (dyn Engine<()> + Send)],
                ctx: &mut ctx_a,
            },
            Partition {
                engines: vec![&mut stuck as &mut (dyn Engine<()> + Send)],
                ctx: &mut ctx_b,
            },
        ];
        let err = Scheduler::new(Policy::Lockstep)
            .try_run_partitioned(Exec::Parallel { workers: 2 }, parts, 0)
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }
}
