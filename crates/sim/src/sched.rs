//! The SoC composition layer: a cycle-stepped [`Engine`] trait and a
//! [`Scheduler`] that ticks arbitrary engine sets on one shared clock.
//!
//! The paper's system is one synchronous SoC — traversal unit,
//! reclamation sweepers, CPU and page-table walker all tick against a
//! single DDR3 controller. Modelling each component as an independently
//! steppable process under a bulk-synchronous scheduler is what makes
//! multi-unit and overlapped-phase scenarios composable: any set of
//! [`Engine`]s can share a clock and a memory system under a pluggable
//! [`Policy`] (lockstep, fixed priority, round-robin datapath
//! time-multiplexing, or the §VII bandwidth throttle).
//!
//! The scheduler is generic over the context type `Ctx` handed to every
//! [`Engine::step`] call, so this crate stays free of heap/memory
//! dependencies; the concrete SoC context (one memory system plus the
//! scheduled heaps) lives downstream in `tracegc-heap`.
//!
//! # Clock protocol
//!
//! Each iteration the scheduler offers the current cycle to its engines
//! and classifies the outcome:
//!
//! * some engine [`Advanced`](Progress::Advanced) — the clock moves one
//!   cycle; advancing engines are charged busy via [`Engine::note_busy`],
//!   stalled ones one cycle of their [`Engine::stall_reason`].
//! * every live engine [`Stalled`](Progress::Stalled) — the clock moves
//!   according to the [`Pacing`] (see below): one cycle under
//!   [`Pacing::Lockstep`], straight to the earliest pending
//!   [`Engine::next_event_at`] under [`Pacing::FastForward`] — charging
//!   each engine its stall reason for the skipped span either way; with
//!   no pending event anywhere the run fails with a
//!   [`SimError::Deadlock`] carrying a per-engine stall dump (see below).
//! * an engine returns [`Done`](Progress::Done) — its completion cycle is
//!   recorded and it is never stepped again. The run ends when every
//!   non-[background](Engine::is_background) engine is done.
//!
//! # Pacing: lockstep vs fast-forward
//!
//! Orthogonal to the arbitration [`Policy`], a [`Pacing`] selects how the
//! clock advances between service rounds:
//!
//! * [`Pacing::Lockstep`] is the reference interpreter: the clock only
//!   ever advances one cycle at a time and every live engine is stepped
//!   at every service cycle. Trivially correct, and dead slow — most
//!   steps of a memory-bound SoC return [`Progress::Stalled`].
//! * [`Pacing::FastForward`] (the default) is event-driven: when a
//!   service round ends with every live engine stalled, the clock hops
//!   straight to the earliest strictly-future [`Engine::next_event_at`]
//!   without stepping anybody, charging each engine's ledger the
//!   skipped span under its current [`Engine::stall_reason`]. The
//!   `next_event_at` contract (see [`Engine::next_event_at`]) makes the
//!   skipped steps provably side-effect-free, so both pacings produce
//!   identical cycle counts, stall ledgers, trap cycles and completion
//!   times — an equivalence pinned by `tests/engine_equivalence.rs`
//!   across thousands of seeded (workload, config, fault-plan, policy)
//!   combinations.
//!
//! The hop is clamped to the watchdog deadline so a livelocked engine
//! set trips the no-progress watchdog at the identical cycle (and with
//! the identical ledger dump) under both pacings. [`Policy::RoundRobin`]
//! is pacing-invariant: its idle-round skip models the time-multiplexed
//! datapath going idle and is part of the arbitration semantics (its
//! exact ledgers are pinned by pre-refactor goldens). Under
//! [`Policy::Throttled`] the fast-forward hop is disabled — the clock
//! already advances in period-sized aligned jumps, and a mid-window hop
//! would let the two pacings step engines at different service cycles,
//! breaking pacing equivalence.
//!
//! The process-wide default pacing is [`Pacing::FastForward`], can be
//! set at startup from the `TRACEGC_SCHED` environment variable
//! (`lockstep` / `fastforward`), overridden per process via
//! [`set_default_pacing`] (the experiment driver's `--sched` flag), per
//! scope via [`with_pacing`] (how the differential tests run one driver
//! both ways), and per scheduler via [`Scheduler::pacing`].
//!
//! A no-progress watchdog replaces ad-hoc per-loop deadlock panics:
//! after [`DEFAULT_NO_PROGRESS_LIMIT`] cycles (configurable via
//! [`Scheduler::no_progress_limit`]) in which every engine stalled,
//! [`Scheduler::try_run`] returns a [`SimError::Deadlock`] whose dump
//! lists each engine's name, current stall reason, pending event and
//! [`StallAccounting`] ledger. [`Scheduler::run`] is the historical
//! panicking wrapper: it panics with that same dump as the message.
//!
//! # Examples
//!
//! ```
//! use tracegc_sim::sched::{Engine, Policy, Progress, Scheduler};
//!
//! /// Counts down one unit of work per cycle; `Ctx` is unused.
//! struct Countdown(u64);
//! impl Engine<()> for Countdown {
//!     fn name(&self) -> &'static str {
//!         "countdown"
//!     }
//!     fn step(&mut self, _now: u64, _ctx: &mut ()) -> Progress {
//!         if self.0 == 0 {
//!             return Progress::Done;
//!         }
//!         self.0 -= 1;
//!         Progress::Advanced
//!     }
//!     fn next_event_at(&self) -> Option<u64> {
//!         None
//!     }
//! }
//!
//! let mut e = Countdown(10);
//! let report = Scheduler::new(Policy::Lockstep).run(&mut [&mut e], &mut (), 0);
//! assert_eq!(report.end, 10);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

use crate::fault::SimError;
use crate::metrics::{StallAccounting, StallReason};
use crate::Cycle;

/// What an [`Engine`] accomplished in one offered cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// The engine did work this cycle.
    Advanced,
    /// The engine could not make progress; consult
    /// [`Engine::next_event_at`] for when it might.
    Stalled,
    /// The engine has finished; it will not be stepped again.
    Done,
}

/// A cycle-stepped state machine the [`Scheduler`] can tick.
///
/// Implementations exist for the traversal unit, the reclamation
/// unit's sweeper array, the CPU collector phases and the
/// concurrent-mutator model (in their owning crates); anything that can
/// advance one cycle at a time against shared state can join an SoC.
///
/// Engines that keep their own [`StallAccounting`] ledgers internally
/// (self-clocked engines like the sweeper array) leave the `note_*`
/// hooks as the default no-ops; externally-clocked engines route the
/// scheduler's charges into their ledger so the
/// `busy + Σ stalls == cycles` invariant holds per engine.
pub trait Engine<Ctx> {
    /// Short stable name, used in watchdog dumps and progress logs.
    fn name(&self) -> &'static str;

    /// Offers the engine cycle `now`; the engine reports what it did.
    fn step(&mut self, now: Cycle, ctx: &mut Ctx) -> Progress;

    /// Earliest cycle at which a stalled engine could progress, if any.
    ///
    /// # Contract (load-bearing for [`Pacing::FastForward`])
    ///
    /// When a service round ends with every live engine stalled, the
    /// fast-forward scheduler skips *without stepping* every cycle
    /// strictly before the earliest reported event, so implementors
    /// must uphold (and `tests/engine_contract.rs` property-checks):
    ///
    /// * **Never late.** A stalled engine must never report an event
    ///   later than its true next state change: re-stepped at any cycle
    ///   strictly before the reported event it must return
    ///   [`Progress::Stalled`] again and be side-effect-free, absent
    ///   new external input. External wake sources (e.g. mailbox
    ///   traffic from a mutator) must themselves be scheduled engines
    ///   reporting their own events, so the cross-engine minimum covers
    ///   them.
    /// * **Never stale.** An engine that just returned
    ///   [`Progress::Stalled`] at `now` must report an event `> now`
    ///   (or `None`). A past event is not "conservative": it masks the
    ///   engine's real future events behind the scheduler's minimum and
    ///   degrades fast-forward into a one-cycle crawl.
    /// * **Not stalled at the event.** Stepped at the reported cycle,
    ///   the engine must make progress (or finish) — events mark real
    ///   state changes, not guesses.
    /// * **Span-stable stall reasons.** [`Engine::stall_reason`] must
    ///   be constant over the skipped span, so one span-sized ledger
    ///   charge equals lockstep's per-cycle charges.
    ///
    /// `None` means "no self-scheduled wake": the scheduler must step
    /// the engine to discover progress, and deadlocks if every live
    /// engine is stalled with no event.
    fn next_event_at(&self) -> Option<Cycle>;

    /// Why the engine cannot progress at `now` (used for stall charging
    /// and watchdog dumps). Defaults to [`StallReason::Idle`].
    fn stall_reason(&self, _now: Cycle) -> StallReason {
        StallReason::Idle
    }

    /// Charges `n` cycles of forward progress to the engine's ledger.
    /// Default no-op for self-accounting engines.
    fn note_busy(&mut self, _n: u64) {}

    /// Charges `span` stalled cycles starting at `now` to `reason`.
    /// Default no-op for self-accounting engines.
    fn note_stall(&mut self, _now: Cycle, _reason: StallReason, _span: u64) {}

    /// Background engines (e.g. a mutator) never finish and do not gate
    /// run completion.
    fn is_background(&self) -> bool {
        false
    }

    /// A snapshot of the engine's stall ledger for watchdog dumps.
    fn ledger(&self) -> Option<StallAccounting> {
        None
    }
}

/// How the [`Scheduler`] arbitrates its engines each cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Policy {
    /// Every live engine is offered every cycle, in registration order.
    Lockstep,
    /// Every live engine is offered every cycle, in the given order
    /// (a permutation of engine indices; earlier = higher priority).
    Priority(Vec<usize>),
    /// One engine is served per cycle (`now % n`), modelling a single
    /// time-multiplexed datapath (§VII multi-process sharing). Unserved
    /// engines are charged [`StallReason::PortBusy`].
    RoundRobin,
    /// Lockstep, but engines are only offered cycles at multiples of
    /// `period` from the start cycle; skipped cycles are charged
    /// [`StallReason::Throttled`] (§VII bandwidth capping).
    Throttled {
        /// Cycles between consecutive service cycles (≥ 1).
        period: Cycle,
    },
}

/// How the scheduler's clock advances between service rounds (see the
/// module docs): `Lockstep` is the one-cycle-at-a-time reference
/// interpreter, `FastForward` (the default) hops the clock straight to
/// the earliest future [`Engine::next_event_at`]. Both produce
/// identical cycle counts and ledgers; only wall-clock differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Step every live engine at every service cycle; the clock only
    /// advances one cycle at a time.
    Lockstep,
    /// Event-driven: skip cycles provably free of state changes,
    /// charging the skipped span to each engine's stall ledger.
    FastForward,
}

impl Pacing {
    /// Parses a CLI/env spelling (`lockstep` / `fastforward`, with
    /// `fast-forward` accepted as an alias).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lockstep" => Some(Self::Lockstep),
            "fastforward" | "fast-forward" => Some(Self::FastForward),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::Lockstep => "lockstep",
            Self::FastForward => "fastforward",
        }
    }
}

/// Process-wide default pacing: 0 = uninitialized, else `Pacing` + 1.
static DEFAULT_PACING: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Scoped override installed by [`with_pacing`]; beats the process
    /// default so parallel tests can pick a pacing without racing.
    static PACING_OVERRIDE: std::cell::Cell<Option<Pacing>> = const { std::cell::Cell::new(None) };
}

fn decode_pacing(v: u8) -> Option<Pacing> {
    match v {
        1 => Some(Pacing::Lockstep),
        2 => Some(Pacing::FastForward),
        _ => None,
    }
}

/// The pacing a [`Scheduler::new`] starts with: a [`with_pacing`] scope
/// if one is active, else the process default ([`set_default_pacing`],
/// falling back to the `TRACEGC_SCHED` environment variable, falling
/// back to [`Pacing::FastForward`]).
pub fn default_pacing() -> Pacing {
    if let Some(p) = PACING_OVERRIDE.with(std::cell::Cell::get) {
        return p;
    }
    if let Some(p) = decode_pacing(DEFAULT_PACING.load(Ordering::Relaxed)) {
        return p;
    }
    let p = std::env::var("TRACEGC_SCHED")
        .ok()
        .as_deref()
        .and_then(Pacing::parse)
        .unwrap_or(Pacing::FastForward);
    DEFAULT_PACING.store(p as u8 + 1, Ordering::Relaxed);
    p
}

/// Sets the process-wide default pacing (the experiment driver's
/// `--sched` flag calls this before spawning its worker pool).
pub fn set_default_pacing(p: Pacing) {
    DEFAULT_PACING.store(p as u8 + 1, Ordering::Relaxed);
}

/// Runs `f` with `p` as this thread's default pacing, restoring the
/// previous scope afterwards. Every `run_*` driver constructs its
/// scheduler via [`Scheduler::new`], so this is how the differential
/// tests run the same driver under both pacings without racing other
/// test threads on the process default.
pub fn with_pacing<R>(p: Pacing, f: impl FnOnce() -> R) -> R {
    let prev = PACING_OVERRIDE.with(|o| o.replace(Some(p)));
    let r = f();
    PACING_OVERRIDE.with(|o| o.set(prev));
    r
}

/// Default no-progress watchdog: panic after this many consecutive
/// cycles in which no engine advanced or finished.
pub const DEFAULT_NO_PROGRESS_LIMIT: Cycle = 10_000_000;

/// Outcome of one [`Scheduler::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocReport {
    /// Cycle the run began.
    pub start: Cycle,
    /// Cycle the last non-background engine finished.
    pub end: Cycle,
    /// Per-engine completion cycles, in registration order (background
    /// engines keep `start`).
    pub ends: Vec<Cycle>,
}

impl SocReport {
    /// Wall-clock cycles of the whole run.
    pub fn cycles(&self) -> Cycle {
        self.end - self.start
    }
}

/// Ticks a set of [`Engine`]s on one shared clock under a [`Policy`].
///
/// The scheduler borrows the engines only for the duration of
/// [`Scheduler::run`], so callers keep ownership and can extract
/// engine-specific results afterwards.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: Policy,
    pacing: Pacing,
    no_progress_limit: Cycle,
}

impl Scheduler {
    /// A scheduler with the given policy, the ambient
    /// [`default_pacing`] and the default watchdog.
    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            pacing: default_pacing(),
            no_progress_limit: DEFAULT_NO_PROGRESS_LIMIT,
        }
    }

    /// Overrides the pacing for this scheduler only.
    pub fn pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Overrides the no-progress watchdog threshold.
    pub fn no_progress_limit(mut self, cycles: Cycle) -> Self {
        self.no_progress_limit = cycles;
        self
    }

    /// Runs the engines to completion from cycle `start`.
    ///
    /// This is the historical panicking wrapper over
    /// [`Scheduler::try_run`], kept for drivers that run trusted
    /// engine sets where a wedge is a simulator bug.
    ///
    /// # Panics
    ///
    /// Panics when every engine stalls with no pending event, or when
    /// the no-progress watchdog trips — both with a per-engine
    /// stall-reason and ledger dump.
    pub fn run<Ctx>(
        &self,
        engines: &mut [&mut dyn Engine<Ctx>],
        ctx: &mut Ctx,
        start: Cycle,
    ) -> SocReport {
        self.try_run(engines, ctx, start)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the engines to completion from cycle `start`, degrading a
    /// scheduler wedge into [`SimError::Deadlock`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] (with the per-engine stall-reason
    /// and ledger dump) when every engine stalls with no pending event
    /// or the no-progress watchdog trips.
    ///
    /// # Panics
    ///
    /// Panics on caller errors: an empty engine set, no foreground
    /// engine, or a non-permutation priority order.
    pub fn try_run<Ctx>(
        &self,
        engines: &mut [&mut dyn Engine<Ctx>],
        ctx: &mut Ctx,
        start: Cycle,
    ) -> Result<SocReport, SimError> {
        assert!(!engines.is_empty(), "scheduler needs at least one engine");
        assert!(
            engines.iter().any(|e| !e.is_background()),
            "scheduler needs a foreground engine to define completion"
        );
        match &self.policy {
            Policy::RoundRobin => self.run_round_robin(engines, ctx, start),
            Policy::Lockstep => self.run_synchronous(engines, ctx, start, None, 1),
            Policy::Priority(order) => {
                self.run_synchronous(engines, ctx, start, Some(order.clone()), 1)
            }
            Policy::Throttled { period } => {
                self.run_synchronous(engines, ctx, start, None, (*period).max(1))
            }
        }
    }

    /// Lockstep / priority / throttled: every live engine is offered
    /// every service cycle.
    fn run_synchronous<Ctx>(
        &self,
        engines: &mut [&mut dyn Engine<Ctx>],
        ctx: &mut Ctx,
        start: Cycle,
        order: Option<Vec<usize>>,
        period: Cycle,
    ) -> Result<SocReport, SimError> {
        let n = engines.len();
        let order: Vec<usize> = order.unwrap_or_else(|| (0..n).collect());
        {
            let mut seen = vec![false; n];
            for &i in &order {
                assert!(i < n && !seen[i], "priority order must permute 0..{n}");
                seen[i] = true;
            }
            assert!(order.len() == n, "priority order must permute 0..{n}");
        }
        let mut done = vec![false; n];
        let mut ends = vec![start; n];
        let mut advanced = vec![false; n];
        let mut now = start;
        let mut last_progress = start;
        loop {
            advanced.iter_mut().for_each(|a| *a = false);
            let mut any_progress = false;
            for &i in &order {
                if done[i] {
                    continue;
                }
                match engines[i].step(now, ctx) {
                    Progress::Done => {
                        done[i] = true;
                        ends[i] = now;
                        any_progress = true;
                    }
                    Progress::Advanced => {
                        advanced[i] = true;
                        any_progress = true;
                    }
                    Progress::Stalled => {}
                }
            }
            if (0..n).all(|i| done[i] || engines[i].is_background()) {
                break;
            }
            if any_progress {
                last_progress = now;
                for i in 0..n {
                    if done[i] {
                        continue;
                    }
                    if advanced[i] {
                        engines[i].note_busy(1);
                    } else {
                        let reason = engines[i].stall_reason(now);
                        engines[i].note_stall(now, reason, 1);
                    }
                }
                now += 1;
            } else {
                // Every live engine stalled. With no pending event
                // anywhere the set can never advance; otherwise the
                // pacing decides how far the clock moves before the
                // next service round.
                let wake = (0..n)
                    .filter(|&i| !done[i])
                    .filter_map(|i| engines[i].next_event_at())
                    .min();
                match wake {
                    None => {
                        return Err(self.deadlock_report(
                            engines,
                            &done,
                            now,
                            "every engine is stalled with no pending event",
                        ))
                    }
                    // Fast-forward: every cycle strictly before the
                    // earliest reported event is provably another
                    // all-stall round (the `next_event_at` contract),
                    // so hop the clock straight there, charging each
                    // engine the span it would have been charged cycle
                    // by cycle. The hop is clamped to the watchdog
                    // deadline so livelocks trip at the same cycle
                    // (with the same ledger) as under lockstep.
                    // Disabled under the §VII throttle policy: there
                    // the clock already advances in period-sized
                    // aligned jumps, and a mid-window hop would let the
                    // two pacings step engines at different service
                    // cycles.
                    Some(t) if t > now && self.pacing == Pacing::FastForward && period == 1 => {
                        let deadline = last_progress
                            .saturating_add(self.no_progress_limit)
                            .saturating_add(1);
                        let t = t.min(deadline);
                        let span = t - now;
                        for i in (0..n).filter(|&i| !done[i]) {
                            let reason = engines[i].stall_reason(now);
                            engines[i].note_stall(now, reason, span);
                        }
                        now = t;
                    }
                    // Lockstep (or a stale event): charge this cycle
                    // and crawl.
                    Some(_) => {
                        for i in (0..n).filter(|&i| !done[i]) {
                            let reason = engines[i].stall_reason(now);
                            engines[i].note_stall(now, reason, 1);
                        }
                        now += 1;
                    }
                }
                if now - last_progress > self.no_progress_limit {
                    return Err(self.deadlock_report(
                        engines,
                        &done,
                        now,
                        "no engine made progress within the watchdog window",
                    ));
                }
            }
            // §VII throttle: align the clock to the next service cycle,
            // charging the gap so per-engine ledgers stay exact.
            if period > 1 {
                let rel = now - start;
                let aligned = start + rel.div_ceil(period) * period;
                if aligned > now {
                    let span = aligned - now;
                    for i in (0..n).filter(|&i| !done[i]) {
                        engines[i].note_stall(now, StallReason::Throttled, span);
                    }
                    now = aligned;
                }
            }
        }
        let end = (0..n)
            .filter(|&i| !engines[i].is_background())
            .map(|i| ends[i])
            .max()
            .expect("at least one foreground engine");
        Ok(SocReport { start, end, ends })
    }

    /// Round-robin: the single datapath serves engine `now % n` each
    /// cycle; a full round without progress skips to the earliest event.
    fn run_round_robin<Ctx>(
        &self,
        engines: &mut [&mut dyn Engine<Ctx>],
        ctx: &mut Ctx,
        start: Cycle,
    ) -> Result<SocReport, SimError> {
        let n = engines.len();
        assert!(
            engines.iter().all(|e| !e.is_background()),
            "round-robin arbitration has no background lane"
        );
        let mut done = vec![false; n];
        let mut ends = vec![start; n];
        let mut now = start;
        let mut idle_round = 0usize;
        let mut last_progress = start;
        loop {
            let idx = (now % n as u64) as usize;
            let mut progress = false;
            if !done[idx] {
                match engines[idx].step(now, ctx) {
                    Progress::Done => {
                        done[idx] = true;
                        ends[idx] = now;
                        progress = true;
                    }
                    Progress::Advanced => progress = true,
                    Progress::Stalled => {}
                }
            }
            if done.iter().all(|&d| d) {
                break;
            }
            if progress {
                last_progress = now;
                idle_round = 0;
                if !done[idx] {
                    engines[idx].note_busy(1);
                }
                for j in (0..n).filter(|&j| j != idx && !done[j]) {
                    engines[j].note_stall(now, StallReason::PortBusy, 1);
                }
                now += 1;
            } else {
                idle_round += 1;
                if idle_round >= n {
                    // A full round with no progress: skip to the earliest
                    // pending completion of any unfinished engine.
                    let wake = (0..n)
                        .filter(|&j| !done[j])
                        .filter_map(|j| engines[j].next_event_at())
                        .min();
                    match wake {
                        Some(t) if t > now => {
                            let span = t - now;
                            for j in (0..n).filter(|&j| !done[j]) {
                                let reason = engines[j].stall_reason(now);
                                engines[j].note_stall(now, reason, span);
                            }
                            now = t;
                        }
                        Some(_) => {
                            for j in (0..n).filter(|&j| !done[j]) {
                                let reason = engines[j].stall_reason(now);
                                engines[j].note_stall(now, reason, 1);
                            }
                            now += 1;
                        }
                        None => {
                            return Err(self.deadlock_report(
                                engines,
                                &done,
                                now,
                                "every engine is stalled with no pending event",
                            ))
                        }
                    }
                    idle_round = 0;
                } else {
                    for j in (0..n).filter(|&j| !done[j]) {
                        let reason = if j == idx {
                            engines[j].stall_reason(now)
                        } else {
                            StallReason::PortBusy
                        };
                        engines[j].note_stall(now, reason, 1);
                    }
                    now += 1;
                }
                if now - last_progress > self.no_progress_limit {
                    return Err(self.deadlock_report(
                        engines,
                        &done,
                        now,
                        "no engine made progress within the watchdog window",
                    ));
                }
            }
        }
        let end = *ends.iter().max().expect("non-empty");
        Ok(SocReport { start, end, ends })
    }

    /// Builds the [`SimError::Deadlock`] carrying the per-engine
    /// stall-reason and ledger dump.
    fn deadlock_report<Ctx>(
        &self,
        engines: &[&mut dyn Engine<Ctx>],
        done: &[bool],
        now: Cycle,
        why: &str,
    ) -> SimError {
        let mut msg = format!("scheduler deadlock at cycle {now}: {why}\n");
        for (i, e) in engines.iter().enumerate() {
            if done[i] {
                msg.push_str(&format!("  [{i}] {}: done\n", e.name()));
                continue;
            }
            msg.push_str(&format!(
                "  [{i}] {}: stalled on {}, next_event={:?}",
                e.name(),
                e.stall_reason(now).name(),
                e.next_event_at()
            ));
            if let Some(ledger) = e.ledger() {
                msg.push_str(&format!(" — busy={}", ledger.busy_cycles()));
                for (reason, cycles) in ledger.breakdown() {
                    if cycles > 0 {
                        msg.push_str(&format!(" {}={cycles}", reason.name()));
                    }
                }
            }
            msg.push('\n');
        }
        SimError::Deadlock { at: now, dump: msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy engine: does `work` units, one per cycle, optionally only
    /// when `gate` divides `now`; self-reports a ledger.
    struct Toy {
        name: &'static str,
        work: u64,
        gate: u64,
        ledger: StallAccounting,
        background: bool,
    }

    impl Toy {
        fn new(name: &'static str, work: u64) -> Self {
            Self {
                name,
                work,
                gate: 1,
                ledger: StallAccounting::default(),
                background: false,
            }
        }
    }

    impl Engine<Vec<&'static str>> for Toy {
        fn name(&self) -> &'static str {
            self.name
        }
        fn step(&mut self, now: Cycle, log: &mut Vec<&'static str>) -> Progress {
            if self.work == 0 && !self.background {
                return Progress::Done;
            }
            if !now.is_multiple_of(self.gate) {
                return Progress::Stalled;
            }
            log.push(self.name);
            self.work = self.work.saturating_sub(1);
            Progress::Advanced
        }
        fn next_event_at(&self) -> Option<Cycle> {
            // Toys with `gate == 1` never stall while live, so the
            // scheduler never consults this.
            None
        }
        fn stall_reason(&self, _now: Cycle) -> StallReason {
            StallReason::MemLatency
        }
        fn note_busy(&mut self, n: u64) {
            self.ledger.busy(n);
        }
        fn note_stall(&mut self, _now: Cycle, reason: StallReason, span: u64) {
            self.ledger.stall(reason, span);
        }
        fn is_background(&self) -> bool {
            self.background
        }
        fn ledger(&self) -> Option<StallAccounting> {
            Some(self.ledger)
        }
    }

    #[test]
    fn lockstep_single_engine_runs_to_completion() {
        let mut e = Toy::new("a", 5);
        let mut log = Vec::new();
        let report = Scheduler::new(Policy::Lockstep).run(&mut [&mut e], &mut log, 100);
        assert_eq!(report.start, 100);
        assert_eq!(report.end, 105);
        assert_eq!(report.ends, vec![105]);
        assert_eq!(report.cycles(), 5);
        assert_eq!(e.ledger.busy_cycles(), 5);
        assert_eq!(e.ledger.total_stalled(), 0);
    }

    #[test]
    fn lockstep_ends_track_each_engine_and_ledgers_cover_spans() {
        let mut a = Toy::new("a", 3);
        let mut b = Toy::new("b", 7);
        let mut log = Vec::new();
        let report = Scheduler::new(Policy::Lockstep).run(&mut [&mut a, &mut b], &mut log, 0);
        assert_eq!(report.ends, vec![3, 7]);
        assert_eq!(report.end, 7);
        // Each engine's ledger covers exactly its live span.
        assert_eq!(a.ledger.total(), 3);
        assert_eq!(b.ledger.total(), 7);
        assert_eq!(b.ledger.busy_cycles(), 7);
    }

    #[test]
    fn priority_orders_intra_cycle_service() {
        let mut a = Toy::new("a", 2);
        let mut b = Toy::new("b", 2);
        let mut log = Vec::new();
        Scheduler::new(Policy::Priority(vec![1, 0])).run(&mut [&mut a, &mut b], &mut log, 0);
        assert_eq!(log, vec!["b", "a", "b", "a"]);
    }

    #[test]
    #[should_panic(expected = "priority order must permute")]
    fn priority_rejects_non_permutations() {
        let mut a = Toy::new("a", 1);
        let mut b = Toy::new("b", 1);
        let mut log = Vec::new();
        Scheduler::new(Policy::Priority(vec![0, 0])).run(&mut [&mut a, &mut b], &mut log, 0);
    }

    #[test]
    fn round_robin_serves_one_engine_per_cycle() {
        let mut a = Toy::new("a", 2);
        let mut b = Toy::new("b", 2);
        let mut log = Vec::new();
        let report = Scheduler::new(Policy::RoundRobin).run(&mut [&mut a, &mut b], &mut log, 0);
        // Interleaved service: a@0 b@1 a@2 b@3, Done on the next served
        // cycle each.
        assert_eq!(log, vec!["a", "b", "a", "b"]);
        assert_eq!(report.ends, vec![4, 5]);
        // Unserved live cycles are charged to the shared port.
        assert!(a.ledger.stalled(StallReason::PortBusy) > 0);
        assert_eq!(a.ledger.total(), 4);
        assert_eq!(b.ledger.total(), 5);
    }

    #[test]
    fn throttled_charges_skipped_cycles() {
        let mut a = Toy::new("a", 4);
        let mut log = Vec::new();
        let report =
            Scheduler::new(Policy::Throttled { period: 4 }).run(&mut [&mut a], &mut log, 0);
        // Service at 0,4,8,12; Done observed at 16.
        assert_eq!(report.end, 16);
        assert_eq!(a.ledger.busy_cycles(), 4);
        assert_eq!(a.ledger.stalled(StallReason::Throttled), 12);
        assert_eq!(a.ledger.total(), 16);
    }

    #[test]
    fn background_engines_do_not_gate_completion() {
        let mut fg = Toy::new("fg", 3);
        let mut bg = Toy::new("bg", 0);
        bg.background = true;
        let mut log = Vec::new();
        let report = Scheduler::new(Policy::Lockstep).run(&mut [&mut bg, &mut fg], &mut log, 0);
        assert_eq!(report.end, 3);
        assert_eq!(report.ends, vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "scheduler deadlock")]
    fn all_stalled_with_no_event_panics_with_dump() {
        struct Stuck;
        impl Engine<()> for Stuck {
            fn name(&self) -> &'static str {
                "stuck"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        let mut e = Stuck;
        Scheduler::new(Policy::Lockstep).run(&mut [&mut e], &mut (), 0);
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn no_progress_watchdog_trips_on_livelock() {
        /// Always stalled, but always claims an event one cycle away.
        struct Livelock;
        impl Engine<()> for Livelock {
            fn name(&self) -> &'static str {
                "livelock"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                Some(u64::MAX)
            }
        }
        let mut e = Livelock;
        Scheduler::new(Policy::Lockstep)
            .no_progress_limit(1000)
            .run(&mut [&mut e], &mut (), 0);
    }

    #[test]
    fn try_run_reports_deadlock_without_panicking() {
        struct Stuck;
        impl Engine<()> for Stuck {
            fn name(&self) -> &'static str {
                "stuck"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        let mut e = Stuck;
        let err = Scheduler::new(Policy::Lockstep)
            .try_run(&mut [&mut e], &mut (), 7)
            .unwrap_err();
        match &err {
            SimError::Deadlock { at, dump } => {
                assert_eq!(*at, 7);
                assert!(dump.contains("scheduler deadlock at cycle 7"));
                assert!(dump.contains("stuck"));
                assert!(dump.contains("no pending event"));
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn try_run_reports_watchdog_trip_with_ledger_dump() {
        struct Livelock(StallAccounting);
        impl Engine<()> for Livelock {
            fn name(&self) -> &'static str {
                "livelock"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                Some(u64::MAX)
            }
            fn note_stall(&mut self, _now: Cycle, reason: StallReason, span: u64) {
                self.0.stall(reason, span);
            }
            fn ledger(&self) -> Option<StallAccounting> {
                Some(self.0)
            }
        }
        let mut e = Livelock(StallAccounting::default());
        let err = Scheduler::new(Policy::Lockstep)
            .no_progress_limit(1000)
            .try_run(&mut [&mut e], &mut (), 0)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("watchdog"));
        // The dump includes the engine's stall ledger.
        assert!(msg.contains("livelock"));
        assert!(msg.contains("idle="));
    }

    #[test]
    fn try_run_round_robin_reports_deadlock() {
        struct Stuck;
        impl Engine<()> for Stuck {
            fn name(&self) -> &'static str {
                "stuck"
            }
            fn step(&mut self, _now: Cycle, _ctx: &mut ()) -> Progress {
                Progress::Stalled
            }
            fn next_event_at(&self) -> Option<Cycle> {
                None
            }
        }
        let (mut a, mut b) = (Stuck, Stuck);
        let err = Scheduler::new(Policy::RoundRobin)
            .try_run(&mut [&mut a, &mut b], &mut (), 0)
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    #[should_panic(expected = "foreground engine")]
    fn all_background_is_rejected() {
        let mut bg = Toy::new("bg", 0);
        bg.background = true;
        let mut log = Vec::new();
        Scheduler::new(Policy::Lockstep).run(&mut [&mut bg], &mut log, 0);
    }
}
