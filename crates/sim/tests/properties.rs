//! Property-based tests for the simulation primitives, driven by the
//! in-tree deterministic PRNG: each property runs ~100 randomized cases
//! from fixed seeds, so failures reproduce exactly.

use tracegc_sim::dist::Zipf;
use tracegc_sim::rng::{Rng, StdRng};
use tracegc_sim::{BandwidthMeter, BoundedQueue, Histogram, LatencyRecorder};

const CASES: u64 = 100;

/// One independent RNG per (property, case) pair.
fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x51D0_0000 + property * 10_007 + case)
}

#[test]
fn bounded_queue_is_fifo_and_lossless() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let capacity = rng.random_range(1usize..64);
        let n_ops = rng.random_range(1usize..300);
        let mut q = BoundedQueue::new(capacity);
        let mut model = std::collections::VecDeque::new();
        for _ in 0..n_ops {
            if rng.random::<bool>() {
                let v = rng.random::<u32>();
                let accepted = q.try_push(v).is_ok();
                assert_eq!(accepted, model.len() < capacity, "case {case}");
                if accepted {
                    model.push_back(v);
                }
            } else {
                assert_eq!(q.pop(), model.pop_front(), "case {case}");
            }
            assert_eq!(q.len(), model.len(), "case {case}");
            assert_eq!(q.is_full(), model.len() == capacity, "case {case}");
        }
    }
}

#[test]
fn histogram_counts_every_sample() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let bin_width = rng.random_range(1u64..50);
        let samples: Vec<u64> = (0..rng.random_range(1usize..200))
            .map(|_| rng.random_range(0u64..1000))
            .collect();
        let mut h = Histogram::new(bin_width, 16);
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), samples.len() as u64, "case {case}");
        let binned: u64 = (0..16).map(|i| h.bin(i)).sum::<u64>() + h.overflow();
        assert_eq!(binned, samples.len() as u64, "case {case}");
        assert_eq!(h.max(), *samples.iter().max().unwrap(), "case {case}");
    }
}

#[test]
fn percentiles_are_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let samples: Vec<u64> = (0..rng.random_range(2usize..300))
            .map(|_| rng.random_range(0u64..100_000))
            .collect();
        let mut r = LatencyRecorder::new();
        for &s in &samples {
            r.record(s);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = r.percentile(p).unwrap();
            assert!(v >= last, "case {case}: p{p} = {v} < previous {last}");
            last = v;
        }
        // Exact nearest-rank endpoints: p0 is the smallest sample, p100
        // the largest.
        assert_eq!(r.percentile(0.0), Some(*samples.iter().min().unwrap()));
        assert_eq!(r.percentile(100.0), Some(*samples.iter().max().unwrap()));
    }
}

#[test]
fn cdf_is_a_distribution() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let samples: Vec<u64> = (0..rng.random_range(1usize..200))
            .map(|_| rng.random_range(0u64..1000))
            .collect();
        let mut r = LatencyRecorder::new();
        for &s in &samples {
            r.record(s);
        }
        let cdf = r.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12, "case {case}");
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1, "case {case}");
        }
    }
}

#[test]
fn bandwidth_meter_conserves_bytes() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let window = rng.random_range(1u64..100_000);
        let events: Vec<(u64, u64)> = (0..rng.random_range(1usize..200))
            .map(|_| (rng.random_range(0u64..1 << 20), rng.random_range(1u64..128)))
            .collect();
        let mut m = BandwidthMeter::new(window);
        let mut total = 0;
        for &(cycle, bytes) in &events {
            m.record(cycle, bytes);
            total += bytes;
        }
        assert_eq!(m.total_bytes(), total, "case {case}");
        let series_total: f64 = m.series_gbps().iter().sum::<f64>() * window as f64;
        assert!((series_total - total as f64).abs() < 1e-6, "case {case}");
    }
}

#[test]
fn bandwidth_average_never_exceeds_peak() {
    // average_gbps is a span-weighted mean of the per-window rates that
    // peak_gbps maximizes over, so avg ≤ peak must hold for any record
    // sequence.
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let window = rng.random_range(1u64..10_000);
        let mut m = BandwidthMeter::new(window);
        for _ in 0..rng.random_range(1usize..200) {
            m.record(
                rng.random_range(0u64..1 << 18),
                rng.random_range(1u64..4096),
            );
        }
        let (avg, peak) = (m.average_gbps(), m.peak_gbps());
        assert!(
            avg <= peak + 1e-9,
            "case {case}: average {avg} exceeds peak {peak}"
        );
        assert!(avg > 0.0, "case {case}: bytes were recorded");
    }
}

#[test]
fn zipf_is_a_valid_distribution() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let n = rng.random_range(1usize..500);
        let s = rng.random::<f64>() * 3.0;
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "case {case}: pmf sums to {total}"
        );
        // Monotone non-increasing popularity.
        for r in 1..n {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12, "case {case}: rank {r}");
        }
    }
}
