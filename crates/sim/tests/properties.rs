//! Property-based tests for the simulation primitives.

use proptest::prelude::*;

use tracegc_sim::dist::Zipf;
use tracegc_sim::{BandwidthMeter, BoundedQueue, Histogram, LatencyRecorder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bounded_queue_is_fifo_and_lossless(
        capacity in 1usize..64,
        ops in proptest::collection::vec(any::<Option<u32>>(), 1..300),
    ) {
        let mut q = BoundedQueue::new(capacity);
        let mut model = std::collections::VecDeque::new();
        for op in &ops {
            match op {
                Some(v) => {
                    let accepted = q.try_push(*v).is_ok();
                    prop_assert_eq!(accepted, model.len() < capacity);
                    if accepted {
                        model.push_back(*v);
                    }
                }
                None => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_full(), model.len() == capacity);
        }
    }

    #[test]
    fn histogram_counts_every_sample(
        samples in proptest::collection::vec(0u64..1000, 1..200),
        bin_width in 1u64..50,
    ) {
        let mut h = Histogram::new(bin_width, 16);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let binned: u64 = (0..16).map(|i| h.bin(i)).sum::<u64>() + h.overflow();
        prop_assert_eq!(binned, samples.len() as u64);
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }

    #[test]
    fn percentiles_are_monotone(
        samples in proptest::collection::vec(0u64..100_000, 2..300),
    ) {
        let mut r = LatencyRecorder::new();
        for &s in &samples {
            r.record(s);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = r.percentile(p).unwrap();
            prop_assert!(v >= last, "p{p} = {v} < previous {last}");
            last = v;
        }
        prop_assert_eq!(r.percentile(100.0), Some(*samples.iter().max().unwrap()));
    }

    #[test]
    fn cdf_is_a_distribution(
        samples in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let mut r = LatencyRecorder::new();
        for &s in &samples {
            r.record(s);
        }
        let cdf = r.cdf();
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn bandwidth_meter_conserves_bytes(
        events in proptest::collection::vec((0u64..1 << 20, 1u64..128), 1..200),
        window in 1u64..100_000,
    ) {
        let mut m = BandwidthMeter::new(window);
        let mut total = 0;
        for (cycle, bytes) in &events {
            m.record(*cycle, *bytes);
            total += bytes;
        }
        prop_assert_eq!(m.total_bytes(), total);
        let series_total: f64 = m.series_gbps().iter().sum::<f64>() * window as f64;
        prop_assert!((series_total - total as f64).abs() < 1e-6);
    }

    #[test]
    fn zipf_is_a_valid_distribution(n in 1usize..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // Monotone non-increasing popularity.
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }
}
