//! The TileLink-style memory request vocabulary.
//!
//! The accelerator talks to the memory system through a TileLink-like port
//! that supports transfer sizes from 8 to 64 bytes, naturally aligned
//! (§V-C: copying 15 references at `0x1a18` decomposes into 8-, 32-, 64-
//! and 16-byte requests). Every request carries a [`Source`] so the
//! per-requester breakdowns of Fig. 18 can be reconstructed.

/// Identifies which unit issued a request (the categories of Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Source {
    /// The traversal unit's marker (fetch-or AMO on header words).
    Marker,
    /// The traversal unit's tracer (reference-section copies).
    Tracer,
    /// Mark-queue spill engine traffic (`outQ` writes / `inQ` reads).
    MarkQueue,
    /// Page-table walker fills.
    Ptw,
    /// Reclamation-unit block sweepers.
    Sweeper,
    /// The root reader copying `hwgc-space` into the mark queue.
    RootReader,
    /// CPU cache hierarchy traffic (L2 fills and write-backs).
    Cpu,
}

impl Source {
    /// All source kinds, in the display order used by the figures.
    pub const ALL: [Source; 7] = [
        Source::MarkQueue,
        Source::Tracer,
        Source::Ptw,
        Source::Marker,
        Source::Sweeper,
        Source::RootReader,
        Source::Cpu,
    ];

    /// Stable index for per-source stat arrays.
    pub fn index(self) -> usize {
        match self {
            Source::MarkQueue => 0,
            Source::Tracer => 1,
            Source::Ptw => 2,
            Source::Marker => 3,
            Source::Sweeper => 4,
            Source::RootReader => 5,
            Source::Cpu => 6,
        }
    }

    /// Human-readable label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Source::MarkQueue => "mark-queue",
            Source::Tracer => "tracer",
            Source::Ptw => "ptw",
            Source::Marker => "marker",
            Source::Sweeper => "sweeper",
            Source::RootReader => "root-reader",
            Source::Cpu => "cpu",
        }
    }
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a request does to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain read (TileLink `Get`).
    Read,
    /// Plain write (TileLink `Put`).
    Write,
    /// Atomic fetch-or, returning the old value — the marker's single-AMO
    /// mark (§IV-A.II). Occupies the bus like a read plus a write-back.
    Amo,
}

/// One memory request presented to the controller.
///
/// # Examples
///
/// ```
/// use tracegc_mem::{MemReq, Source};
///
/// let req = MemReq::read(0x1a18, 8, Source::Tracer);
/// assert!(req.is_aligned());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Physical byte address.
    pub addr: u64,
    /// Transfer size in bytes (8–64, power of two for TileLink requests).
    pub bytes: u32,
    /// Read, write or AMO.
    pub kind: AccessKind,
    /// Issuing unit.
    pub source: Source,
}

impl MemReq {
    /// Builds a read request.
    pub fn read(addr: u64, bytes: u32, source: Source) -> Self {
        Self {
            addr,
            bytes,
            kind: AccessKind::Read,
            source,
        }
    }

    /// Builds a write request.
    pub fn write(addr: u64, bytes: u32, source: Source) -> Self {
        Self {
            addr,
            bytes,
            kind: AccessKind::Write,
            source,
        }
    }

    /// Builds an atomic fetch-or request (always 8 bytes: one header word).
    pub fn amo(addr: u64, source: Source) -> Self {
        Self {
            addr,
            bytes: 8,
            kind: AccessKind::Amo,
            source,
        }
    }

    /// TileLink requires power-of-two sizes, naturally aligned, 8–64 bytes.
    pub fn is_aligned(&self) -> bool {
        self.bytes.is_power_of_two()
            && (8..=64).contains(&self.bytes)
            && self.addr.is_multiple_of(self.bytes as u64)
    }
}

/// Decomposes a `[start, start+len)` byte range into the largest naturally
/// aligned power-of-two transfers the TileLink port supports, in address
/// order — the tracer's request generator (§V-C, Fig. 14).
///
/// The paper's example: 15 references (120 bytes) at `0x1a18` produce
/// transfer sizes 8, 32, 64, 16.
///
/// # Examples
///
/// ```
/// use tracegc_mem::req::decompose_aligned;
///
/// let chunks = decompose_aligned(0x1a18, 120);
/// let sizes: Vec<u32> = chunks.iter().map(|c| c.1).collect();
/// assert_eq!(sizes, vec![8, 32, 64, 16]);
/// ```
///
/// # Panics
///
/// Panics if `start` or `len` is not 8-byte aligned.
pub fn decompose_aligned(start: u64, len: u64) -> Vec<(u64, u32)> {
    assert!(
        start.is_multiple_of(8),
        "transfer start must be 8-byte aligned"
    );
    assert!(
        len.is_multiple_of(8),
        "transfer length must be a multiple of 8"
    );
    let mut out = Vec::new();
    let mut addr = start;
    let mut remaining = len;
    while remaining > 0 {
        // Largest power-of-two size (<= 64) that the current alignment
        // permits and that fits in the remainder.
        let align = if addr == 0 {
            64
        } else {
            1u64 << addr.trailing_zeros().min(6)
        };
        let fit = if remaining >= 64 {
            64
        } else {
            1u64 << (63 - remaining.leading_zeros())
        };
        let size = align.min(fit).min(64);
        out.push((addr, size as u32));
        addr += size;
        remaining -= size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_decomposition() {
        // 15 refs * 8B at 0x1a18 -> 8, 32, 64, 16 (paper §V-C).
        let chunks = decompose_aligned(0x1a18, 15 * 8);
        assert_eq!(
            chunks,
            vec![(0x1a18, 8), (0x1a20, 32), (0x1a40, 64), (0x1a80, 16)]
        );
    }

    #[test]
    fn decomposition_covers_range_exactly() {
        let chunks = decompose_aligned(0x100, 256);
        let total: u64 = chunks.iter().map(|c| c.1 as u64).sum();
        assert_eq!(total, 256);
        assert_eq!(chunks[0].0, 0x100);
        // Contiguous, non-overlapping.
        for w in chunks.windows(2) {
            assert_eq!(w[0].0 + w[0].1 as u64, w[1].0);
        }
    }

    #[test]
    fn every_chunk_is_tilelink_legal() {
        for (start, len) in [(0x1a18u64, 120u64), (0x8, 8), (0x38, 72), (0x0, 64)] {
            for (addr, bytes) in decompose_aligned(start, len) {
                let r = MemReq::read(addr, bytes, Source::Tracer);
                assert!(r.is_aligned(), "illegal chunk {addr:#x}+{bytes}");
            }
        }
    }

    #[test]
    fn aligned_checks() {
        assert!(MemReq::read(0x40, 64, Source::Cpu).is_aligned());
        assert!(!MemReq::read(0x48, 64, Source::Cpu).is_aligned());
        assert!(!MemReq::read(0x40, 4, Source::Cpu).is_aligned());
        assert!(!MemReq::read(0x40, 48, Source::Cpu).is_aligned());
    }

    #[test]
    fn source_indices_are_unique_and_dense() {
        let mut seen = [false; Source::ALL.len()];
        for s in Source::ALL {
            assert!(!seen[s.index()]);
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn amo_is_one_word() {
        let r = MemReq::amo(0x1008, Source::Marker);
        assert_eq!(r.bytes, 8);
        assert_eq!(r.kind, AccessKind::Amo);
        assert!(r.is_aligned());
    }
}
