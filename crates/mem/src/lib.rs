//! Memory system models for the tracegc SoC.
//!
//! This crate provides the substrate the paper's evaluation runs on
//! (Table I): a flat simulated [`PhysMem`], a DDR3-2000 bank/row timing
//! model with FR-FCFS and FIFO scheduling ([`ddr3`]), the idealized
//! 1-cycle / 8 GB/s latency–bandwidth pipe used for Fig. 17 ([`pipe`]),
//! set-associative write-back caches with MSHRs ([`cache`]), and the
//! TileLink-style request vocabulary shared by every requester ([`req`]).
//!
//! # Timing model
//!
//! All timing components use *timestamp passing*: a requester presents a
//! request together with the earliest cycle at which it could reach the
//! controller, and the model returns the cycle at which the response data
//! is available, mutating its internal bank/bus/MSHR state along the way.
//! This keeps the simulation deterministic and fast while preserving the
//! properties the paper measures — bank-level parallelism, row-buffer
//! locality, scheduling policy, outstanding-request limits and bus
//! bandwidth.
//!
//! # Examples
//!
//! ```
//! use tracegc_mem::{MemReq, MemSystem, Source};
//! use tracegc_mem::ddr3::Ddr3Config;
//!
//! let mut mem = MemSystem::ddr3(Ddr3Config::default());
//! let req = MemReq::read(0x1000, 64, Source::Tracer);
//! let done = mem.schedule(&req, 100);
//! assert!(done > 100);
//! ```

pub mod cache;
pub mod ddr3;
pub mod phys;
pub mod pipe;
pub mod req;
pub mod system;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use phys::PhysMem;
pub use req::{AccessKind, MemReq, Source};
pub use system::{MemStats, MemSystem};
