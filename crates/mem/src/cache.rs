//! Set-associative write-back caches with MSHRs.
//!
//! Used in three places, mirroring the paper:
//! * the Rocket CPU's 16 KiB L1 D-cache and 256 KiB L2 (Table I),
//! * the traversal unit's 16 KiB *shared* cache in the unpartitioned
//!   configuration of Fig. 18a (where PTW traffic drowns out everyone
//!   else), and
//! * the 8 KiB PTW cache holding the top page-table levels (§V-C).
//!
//! The model is timestamp-passing: an access consults the tag array
//! immediately, and misses are charged the fill latency returned by the
//! next level. The MSHR file bounds the number of outstanding fills — the
//! very limit (§IV-A: "a typical L1 cache design has 32 MSHRs") that
//! motivates the accelerator's custom marker.

use tracegc_sim::Cycle;

use crate::req::{MemReq, Source};
use crate::system::MemSystem;

/// The fixed cache-line size used throughout the SoC.
pub const LINE_BYTES: u64 = 64;

/// Cache geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Latency of a hit, in cycles.
    pub hit_latency: Cycle,
    /// Number of miss-status holding registers (outstanding fills).
    pub mshrs: usize,
}

impl CacheConfig {
    /// The Rocket L1 D-cache of Table I: 16 KiB, 4-way, 2-cycle hits.
    pub fn rocket_l1d() -> Self {
        Self {
            size_bytes: 16 * 1024,
            ways: 4,
            hit_latency: 2,
            mshrs: 2,
        }
    }

    /// The Rocket L2 of Table I: 256 KiB, 8-way.
    pub fn rocket_l2() -> Self {
        Self {
            size_bytes: 256 * 1024,
            ways: 8,
            hit_latency: 14,
            mshrs: 8,
        }
    }

    /// The traversal unit's shared 16 KiB cache (pre-partitioning, §V-C).
    pub fn hwgc_shared() -> Self {
        Self {
            size_bytes: 16 * 1024,
            ways: 4,
            hit_latency: 2,
            mshrs: 8,
        }
    }

    /// The PTW's dedicated 8 KiB cache (§V-C: "backed by an 8KB cache, to
    /// hold the top levels of the page table").
    pub fn ptw_cache() -> Self {
        Self {
            size_bytes: 8 * 1024,
            ways: 4,
            hit_latency: 1,
            mshrs: 1,
        }
    }
}

/// Per-cache statistics, split by requesting [`Source`] for Fig. 18a.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Hits per source.
    pub hits_by_source: [u64; Source::ALL.len()],
    /// Misses per source.
    pub misses_by_source: [u64; Source::ALL.len()],
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits_by_source.iter().sum()
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses_by_source.iter().sum()
    }

    /// Total accesses (requests reaching the cache) per source — the
    /// quantity plotted in Fig. 18a.
    pub fn accesses(&self, source: Source) -> u64 {
        self.hits_by_source[source.index()] + self.misses_by_source[source.index()]
    }

    /// Miss ratio over all sources (0.0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }
}

/// A level below a cache that can fill lines and absorb write-backs.
pub trait Backing {
    /// Requests the 64-byte line at `line_addr`, presented at `at`;
    /// returns the cycle the line data is available.
    fn fill(&mut self, line_addr: u64, at: Cycle) -> Cycle;

    /// Writes back the dirty 64-byte line at `line_addr`. Write-backs are
    /// posted (they do not delay the triggering access).
    fn writeback(&mut self, line_addr: u64, at: Cycle);
}

/// Adapts a [`MemSystem`] as the backing store of the last-level cache,
/// tagging its traffic with a fixed [`Source`].
#[derive(Debug)]
pub struct MemBacking<'a> {
    /// The memory controller.
    pub mem: &'a mut MemSystem,
    /// Source label applied to fills and write-backs.
    pub source: Source,
}

impl Backing for MemBacking<'_> {
    fn fill(&mut self, line_addr: u64, at: Cycle) -> Cycle {
        self.mem
            .schedule(&MemReq::read(line_addr, LINE_BYTES as u32, self.source), at)
    }

    fn writeback(&mut self, line_addr: u64, at: Cycle) {
        self.mem.schedule(
            &MemReq::write(line_addr, LINE_BYTES as u32, self.source),
            at,
        );
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

#[derive(Debug, Clone, Copy)]
struct Mshr {
    line_addr: u64,
    completion: Cycle,
}

/// A set-associative, write-allocate, write-back cache with a bounded
/// MSHR file.
///
/// # Examples
///
/// ```
/// use tracegc_mem::{Cache, CacheConfig, MemSystem, Source};
/// use tracegc_mem::cache::MemBacking;
///
/// let mut mem = MemSystem::pipe(Default::default());
/// let mut l1 = Cache::new(CacheConfig::rocket_l1d());
/// let mut backing = MemBacking { mem: &mut mem, source: Source::Cpu };
/// let miss = l1.access(0x80, false, 0, Source::Cpu, &mut backing);
/// let hit = l1.access(0x80, false, miss, Source::Cpu, &mut backing);
/// assert!(hit - miss < miss);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    num_sets: u64,
    mshrs: Vec<Mshr>,
    use_counter: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/MSHRs, capacity not
    /// a multiple of `ways * 64`, or a non-power-of-two set count).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0, "cache must have at least one way");
        assert!(cfg.mshrs > 0, "cache must have at least one MSHR");
        let line_capacity = cfg.size_bytes / LINE_BYTES;
        assert!(
            line_capacity.is_multiple_of(cfg.ways as u64),
            "capacity must divide evenly into ways"
        );
        let num_sets = line_capacity / cfg.ways as u64;
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Self {
            sets: vec![vec![Line::default(); cfg.ways]; num_sets as usize],
            num_sets,
            cfg,
            mshrs: Vec::new(),
            use_counter: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / LINE_BYTES) & (self.num_sets - 1)) as usize
    }

    fn prune_mshrs(&mut self, now: Cycle) {
        self.mshrs.retain(|m| m.completion > now);
    }

    /// Performs an access at `now`; returns the cycle the data is
    /// available to the requester. Misses are filled from `backing`.
    pub fn access(
        &mut self,
        addr: u64,
        write: bool,
        now: Cycle,
        source: Source,
        backing: &mut dyn Backing,
    ) -> Cycle {
        let line_addr = addr & !(LINE_BYTES - 1);
        let set_idx = self.set_index(line_addr);
        self.use_counter += 1;
        let stamp = self.use_counter;

        // Hit path.
        if let Some(way) = self.sets[set_idx]
            .iter()
            .position(|l| l.valid && l.tag == line_addr)
        {
            let line = &mut self.sets[set_idx][way];
            line.last_use = stamp;
            line.dirty |= write;
            self.stats.hits_by_source[source.index()] += 1;
            return now + self.cfg.hit_latency;
        }

        self.stats.misses_by_source[source.index()] += 1;
        self.prune_mshrs(now);

        // Secondary miss: a fill for this line is already in flight.
        if let Some(m) = self.mshrs.iter().find(|m| m.line_addr == line_addr) {
            let ready = m.completion.max(now) + self.cfg.hit_latency;
            // The line will be installed by the primary miss; just record
            // the write intent.
            if write {
                if let Some(way) = self.sets[set_idx]
                    .iter()
                    .position(|l| l.valid && l.tag == line_addr)
                {
                    self.sets[set_idx][way].dirty = true;
                }
            }
            return ready;
        }

        // Structural stall: all MSHRs busy.
        let mut now = now;
        if self.mshrs.len() >= self.cfg.mshrs {
            let earliest = self
                .mshrs
                .iter()
                .map(|m| m.completion)
                .min()
                .expect("mshr file non-empty");
            now = now.max(earliest);
            self.prune_mshrs(now);
        }

        // Victim selection: invalid way first, else LRU.
        let set = &mut self.sets[set_idx];
        let way = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set")
        });
        if set[way].valid && set[way].dirty {
            let victim = set[way].tag;
            self.stats.writebacks += 1;
            backing.writeback(victim, now);
        }

        let fill_done = backing.fill(line_addr, now);
        let set = &mut self.sets[set_idx];
        set[way] = Line {
            tag: line_addr,
            valid: true,
            dirty: write,
            last_use: stamp,
        };
        self.mshrs.push(Mshr {
            line_addr,
            completion: fill_done,
        });
        fill_done + self.cfg.hit_latency
    }

    /// Invalidates every line without writing anything back. Used between
    /// independent experiment runs.
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
        self.mshrs.clear();
    }
}

/// A two-level hierarchy adapter: presents an L2 cache backed by memory as
/// the [`Backing`] of an L1 cache.
#[derive(Debug)]
pub struct L2Backing<'a> {
    /// The second-level cache.
    pub l2: &'a mut Cache,
    /// The memory controller behind the L2.
    pub mem: &'a mut MemSystem,
    /// Source label for L2 fill/write-back traffic.
    pub source: Source,
}

impl Backing for L2Backing<'_> {
    fn fill(&mut self, line_addr: u64, at: Cycle) -> Cycle {
        let mut backing = MemBacking {
            mem: self.mem,
            source: self.source,
        };
        self.l2
            .access(line_addr, false, at, self.source, &mut backing)
    }

    fn writeback(&mut self, line_addr: u64, at: Cycle) {
        let mut backing = MemBacking {
            mem: self.mem,
            source: self.source,
        };
        // Write-back allocates in L2 (write-allocate policy).
        self.l2
            .access(line_addr, true, at, self.source, &mut backing);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::PipeConfig;

    fn harness() -> (MemSystem, Cache) {
        (
            MemSystem::pipe(PipeConfig::default()),
            Cache::new(CacheConfig::rocket_l1d()),
        )
    }

    #[test]
    fn second_access_hits() {
        let (mut mem, mut c) = harness();
        let mut b = MemBacking {
            mem: &mut mem,
            source: Source::Cpu,
        };
        let t1 = c.access(0x1000, false, 0, Source::Cpu, &mut b);
        let t2 = c.access(0x1008, false, t1, Source::Cpu, &mut b); // same line
        assert_eq!(t2 - t1, c.config().hit_latency);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn miss_latency_exceeds_hit_latency() {
        let (mut mem, mut c) = harness();
        let mut b = MemBacking {
            mem: &mut mem,
            source: Source::Cpu,
        };
        let miss = c.access(0, false, 0, Source::Cpu, &mut b);
        assert!(miss > c.config().hit_latency);
    }

    #[test]
    fn dirty_victim_is_written_back() {
        let cfg = CacheConfig {
            size_bytes: 2 * 64, // 2 lines
            ways: 1,            // direct-mapped, 2 sets
            hit_latency: 1,
            mshrs: 4,
        };
        let mut c = Cache::new(cfg);
        let mut mem = MemSystem::pipe(PipeConfig::default());
        let mut b = MemBacking {
            mem: &mut mem,
            source: Source::Cpu,
        };
        // Write line 0, then read a conflicting line (same set).
        c.access(0, true, 0, Source::Cpu, &mut b);
        c.access(128, false, 100, Source::Cpu, &mut b);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn mshr_limit_stalls() {
        let cfg = CacheConfig {
            size_bytes: 64 * 64,
            ways: 4,
            hit_latency: 1,
            mshrs: 1,
        };
        let mut c = Cache::new(cfg);
        let mut mem = MemSystem::pipe(PipeConfig {
            latency: 100,
            bytes_per_cycle: 64,
        });
        let mut b = MemBacking {
            mem: &mut mem,
            source: Source::Cpu,
        };
        let d0 = c.access(0, false, 0, Source::Cpu, &mut b);
        // Second miss to a different line at the same time must wait for
        // the single MSHR.
        let d1 = c.access(4096, false, 0, Source::Cpu, &mut b);
        assert!(d1 >= d0);
    }

    #[test]
    fn secondary_miss_shares_fill() {
        let (mut mem, mut c) = harness();
        let mut b = MemBacking {
            mem: &mut mem,
            source: Source::Cpu,
        };
        let d0 = c.access(0x40, false, 0, Source::Cpu, &mut b);
        // Another access to the same line before the fill completes.
        let d1 = c.access(0x48, false, 1, Source::Cpu, &mut b);
        assert!(d1 <= d0 + c.config().hit_latency);
        // Only one fill went to memory.
        assert_eq!(mem.stats().total_requests, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cfg = CacheConfig {
            size_bytes: 2 * 64,
            ways: 2, // one set, two ways
            hit_latency: 1,
            mshrs: 4,
        };
        let mut c = Cache::new(cfg);
        let mut mem = MemSystem::pipe(PipeConfig::default());
        let mut b = MemBacking {
            mem: &mut mem,
            source: Source::Cpu,
        };
        c.access(0, false, 0, Source::Cpu, &mut b); // A
        c.access(64, false, 10, Source::Cpu, &mut b); // B
        c.access(0, false, 20, Source::Cpu, &mut b); // touch A
        c.access(128, false, 30, Source::Cpu, &mut b); // C evicts B
        let hits_before = c.stats().hits();
        c.access(0, false, 40, Source::Cpu, &mut b); // A still resident
        assert_eq!(c.stats().hits(), hits_before + 1);
    }

    #[test]
    fn per_source_accounting_for_fig18a() {
        let (mut mem, mut c) = harness();
        let mut b = MemBacking {
            mem: &mut mem,
            source: Source::Cpu,
        };
        c.access(0, false, 0, Source::Ptw, &mut b);
        c.access(0, false, 10, Source::Ptw, &mut b);
        c.access(4096, false, 20, Source::Marker, &mut b);
        assert_eq!(c.stats().accesses(Source::Ptw), 2);
        assert_eq!(c.stats().accesses(Source::Marker), 1);
    }

    #[test]
    fn two_level_hierarchy_l2_absorbs_l1_misses() {
        let mut l1 = Cache::new(CacheConfig::rocket_l1d());
        let mut l2 = Cache::new(CacheConfig::rocket_l2());
        let mut mem = MemSystem::pipe(PipeConfig::default());
        // First access: misses both levels, one DRAM fill.
        {
            let mut b = L2Backing {
                l2: &mut l2,
                mem: &mut mem,
                source: Source::Cpu,
            };
            l1.access(0x2000, false, 0, Source::Cpu, &mut b);
        }
        // Evict from L1 by filling its set, then re-access: should hit L2.
        l1.invalidate_all();
        let before = mem.stats().total_requests;
        {
            let mut b = L2Backing {
                l2: &mut l2,
                mem: &mut mem,
                source: Source::Cpu,
            };
            l1.access(0x2000, false, 1000, Source::Cpu, &mut b);
        }
        assert_eq!(
            mem.stats().total_requests,
            before,
            "L2 should absorb the fill"
        );
    }

    #[test]
    fn invalidate_all_clears_contents() {
        let (mut mem, mut c) = harness();
        let mut b = MemBacking {
            mem: &mut mem,
            source: Source::Cpu,
        };
        c.access(0, false, 0, Source::Cpu, &mut b);
        c.invalidate_all();
        c.access(0, false, 100, Source::Cpu, &mut b);
        assert_eq!(c.stats().misses(), 2);
    }
}
