//! Simulated physical memory.
//!
//! A word-addressed memory standing in for the 2 GiB DRAM of the paper's
//! Table I. Both the CPU collector model and the accelerator operate
//! *functionally* on this memory: the heap, the page tables, the spill
//! region and the root region all live here, so the marked-object sets
//! produced by every agent can be compared bit-for-bit.
//!
//! The default backing is **sparse**: the address space is divided into
//! [`CHUNK_BYTES`]-sized chunks held in a dense chunk table, and a chunk
//! is allocated only on the first write of a nonzero word into it. Reads
//! of untouched chunks observe zeros (zero-page semantics), and writing
//! a zero — including [`PhysMem::zero_range`] — never allocates. A 4 GiB
//! address space with a 300 MB live footprint therefore costs roughly
//! 300 MB of host RSS plus one table slot (8 bytes) per chunk. The old
//! flat `Vec<u64>` backing remains available via [`PhysMem::new_flat`]
//! so differential tests can pin the two representations word-for-word
//! equal.

/// Sparse-chunk granularity: 64 KiB, matching the heap's block size so a
/// touched heap block maps onto exactly one resident chunk.
pub const CHUNK_BYTES: u64 = 64 * 1024;
const CHUNK_WORDS: u64 = CHUNK_BYTES / 8;

#[derive(Clone)]
enum Backing {
    /// Dense table of lazily allocated chunks; `None` reads as zeros.
    Sparse { chunks: Vec<Option<Box<[u64]>>> },
    /// The original fully materialized array, for differential tests.
    Flat { words: Vec<u64> },
}

/// Byte-addressed simulated physical memory backed by 64-bit words.
///
/// All accesses are 8-byte aligned 64-bit word operations — the paper's
/// heap stores references, headers and free-list links as 64-bit words,
/// and the accelerator's functional work is entirely word-granular.
///
/// # Examples
///
/// ```
/// use tracegc_mem::PhysMem;
///
/// let mut mem = PhysMem::new(4096);
/// mem.write_u64(16, 0xdead_beef);
/// assert_eq!(mem.read_u64(16), 0xdead_beef);
/// ```
#[derive(Clone)]
pub struct PhysMem {
    len_words: u64,
    backing: Backing,
}

impl std::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The chunk table would dump megabytes of zeros; summarize.
        f.debug_struct("PhysMem")
            .field("size_bytes", &self.size_bytes())
            .field("resident_bytes", &self.resident_bytes())
            .field("flat", &matches!(self.backing, Backing::Flat { .. }))
            .finish()
    }
}

impl PhysMem {
    /// Creates a zeroed sparse memory of `bytes` bytes. No chunk storage
    /// is allocated until the first nonzero write.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of 8.
    pub fn new(bytes: u64) -> Self {
        assert!(
            bytes.is_multiple_of(8),
            "physical memory size must be word-aligned"
        );
        let len_words = bytes / 8;
        let n_chunks = len_words.div_ceil(CHUNK_WORDS) as usize;
        Self {
            len_words,
            backing: Backing::Sparse {
                chunks: vec![None; n_chunks],
            },
        }
    }

    /// Creates a zeroed memory of `bytes` bytes with the flat, fully
    /// materialized backing — host RSS is paid up front for the whole
    /// address space. Only differential tests should need this.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of 8.
    pub fn new_flat(bytes: u64) -> Self {
        assert!(
            bytes.is_multiple_of(8),
            "physical memory size must be word-aligned"
        );
        Self {
            len_words: bytes / 8,
            backing: Backing::Flat {
                words: vec![0; (bytes / 8) as usize],
            },
        }
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len_words * 8
    }

    /// Number of chunks currently backed by host storage (always the
    /// full chunk count for the flat backing).
    pub fn allocated_chunks(&self) -> usize {
        match &self.backing {
            Backing::Sparse { chunks } => chunks.iter().filter(|c| c.is_some()).count(),
            Backing::Flat { .. } => self.len_words.div_ceil(CHUNK_WORDS) as usize,
        }
    }

    /// Bytes of chunk storage resident on the host — the memory actually
    /// paid for, as opposed to [`PhysMem::size_bytes`] addressable.
    pub fn resident_bytes(&self) -> u64 {
        match &self.backing {
            Backing::Sparse { chunks } => chunks
                .iter()
                .filter_map(|c| c.as_ref().map(|w| w.len() as u64 * 8))
                .sum(),
            Backing::Flat { .. } => self.len_words * 8,
        }
    }

    #[inline]
    fn index(&self, paddr: u64) -> u64 {
        debug_assert!(
            paddr.is_multiple_of(8),
            "unaligned word access at {paddr:#x}"
        );
        let idx = paddr / 8;
        assert!(
            idx < self.len_words,
            "physical address {paddr:#x} out of range ({} bytes)",
            self.size_bytes()
        );
        idx
    }

    /// Reads the word at byte address `paddr`. Untouched sparse chunks
    /// read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is unaligned (debug builds) or out of range.
    #[inline]
    pub fn read_u64(&self, paddr: u64) -> u64 {
        let idx = self.index(paddr);
        match &self.backing {
            Backing::Sparse { chunks } => match &chunks[(idx / CHUNK_WORDS) as usize] {
                Some(words) => words[(idx % CHUNK_WORDS) as usize],
                None => 0,
            },
            Backing::Flat { words } => words[idx as usize],
        }
    }

    /// Writes the word at byte address `paddr`. Writing zero into an
    /// untouched sparse chunk is elided — it never allocates storage.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is unaligned (debug builds) or out of range.
    #[inline]
    pub fn write_u64(&mut self, paddr: u64, value: u64) {
        let idx = self.index(paddr);
        match &mut self.backing {
            Backing::Sparse { chunks } => {
                let ci = (idx / CHUNK_WORDS) as usize;
                if chunks[ci].is_none() {
                    if value == 0 {
                        return;
                    }
                    let len = (self.len_words - ci as u64 * CHUNK_WORDS).min(CHUNK_WORDS) as usize;
                    chunks[ci] = Some(vec![0u64; len].into_boxed_slice());
                }
                chunks[ci].as_mut().expect("chunk just ensured")[(idx % CHUNK_WORDS) as usize] =
                    value;
            }
            Backing::Flat { words } => words[idx as usize] = value,
        }
    }

    /// Atomically ORs `bits` into the word at `paddr` and returns the *old*
    /// value — the accelerator's single-AMO mark operation (§IV-A.II).
    #[inline]
    pub fn fetch_or_u64(&mut self, paddr: u64, bits: u64) -> u64 {
        let old = self.read_u64(paddr);
        let new = old | bits;
        if new != old {
            self.write_u64(paddr, new);
        }
        old
    }

    /// Zeroes `len` bytes starting at `paddr` (word-aligned, word-sized).
    /// Untouched sparse chunks stay unallocated.
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds.
    pub fn zero_range(&mut self, paddr: u64, len: u64) {
        assert!(
            len.is_multiple_of(8),
            "zero_range length must be word-aligned"
        );
        if len == 0 {
            return;
        }
        // Bounds-check both ends up front so partial ranges never write.
        let first = self.index(paddr);
        let last = self.index(paddr + len - 8);
        match &mut self.backing {
            Backing::Sparse { chunks } => {
                // Zero whole resident chunks at once; skip absent ones.
                let mut idx = first;
                while idx <= last {
                    let ci = (idx / CHUNK_WORDS) as usize;
                    let lo = (idx % CHUNK_WORDS) as usize;
                    let chunk_end = ((ci as u64 + 1) * CHUNK_WORDS - 1).min(last);
                    if let Some(words) = &mut chunks[ci] {
                        let hi = (chunk_end % CHUNK_WORDS) as usize;
                        words[lo..=hi].fill(0);
                    }
                    idx = chunk_end + 1;
                }
            }
            Backing::Flat { words } => words[first as usize..=last as usize].fill(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let mut mem = PhysMem::new(64);
        mem.write_u64(0, 1);
        mem.write_u64(56, u64::MAX);
        assert_eq!(mem.read_u64(0), 1);
        assert_eq!(mem.read_u64(56), u64::MAX);
        assert_eq!(mem.read_u64(8), 0);
    }

    #[test]
    fn fetch_or_returns_old_value() {
        let mut mem = PhysMem::new(16);
        mem.write_u64(8, 0b100);
        let old = mem.fetch_or_u64(8, 0b011);
        assert_eq!(old, 0b100);
        assert_eq!(mem.read_u64(8), 0b111);
    }

    #[test]
    fn zero_range_clears_words() {
        let mut mem = PhysMem::new(64);
        for a in (0..64).step_by(8) {
            mem.write_u64(a, 7);
        }
        mem.zero_range(16, 24);
        assert_eq!(mem.read_u64(8), 7);
        assert_eq!(mem.read_u64(16), 0);
        assert_eq!(mem.read_u64(32), 0);
        assert_eq!(mem.read_u64(40), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mem = PhysMem::new(8);
        let _ = mem.read_u64(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_out_of_range_panics() {
        let mem = PhysMem::new_flat(8);
        let _ = mem.read_u64(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_range_end_out_of_range_panics() {
        let mut mem = PhysMem::new(64);
        mem.zero_range(32, 64);
    }

    #[test]
    fn size_reports_bytes() {
        assert_eq!(PhysMem::new(4096).size_bytes(), 4096);
        assert_eq!(PhysMem::new_flat(4096).size_bytes(), 4096);
    }

    #[test]
    fn untouched_memory_allocates_no_chunks() {
        let mem = PhysMem::new(1 << 30);
        assert_eq!(mem.allocated_chunks(), 0);
        assert_eq!(mem.resident_bytes(), 0);
        assert_eq!(mem.read_u64(1 << 29), 0);
        assert_eq!(mem.allocated_chunks(), 0);
    }

    #[test]
    fn zero_writes_are_elided() {
        let mut mem = PhysMem::new(1 << 30);
        mem.write_u64(0, 0);
        mem.zero_range(CHUNK_BYTES * 3, CHUNK_BYTES * 2);
        assert_eq!(mem.fetch_or_u64(CHUNK_BYTES * 7, 0), 0);
        assert_eq!(mem.allocated_chunks(), 0);
        mem.write_u64(CHUNK_BYTES * 9 + 8, 42);
        assert_eq!(mem.allocated_chunks(), 1);
        assert_eq!(mem.resident_bytes(), CHUNK_BYTES);
    }

    #[test]
    fn writes_straddling_chunks_are_independent() {
        let mut mem = PhysMem::new(CHUNK_BYTES * 4);
        mem.write_u64(CHUNK_BYTES - 8, 1);
        mem.write_u64(CHUNK_BYTES, 2);
        assert_eq!(mem.allocated_chunks(), 2);
        assert_eq!(mem.read_u64(CHUNK_BYTES - 8), 1);
        assert_eq!(mem.read_u64(CHUNK_BYTES), 2);
        mem.zero_range(0, CHUNK_BYTES * 2);
        assert_eq!(mem.read_u64(CHUNK_BYTES - 8), 0);
        assert_eq!(mem.read_u64(CHUNK_BYTES), 0);
    }

    #[test]
    fn short_tail_chunk_is_addressable() {
        let bytes = CHUNK_BYTES + 16;
        let mut mem = PhysMem::new(bytes);
        mem.write_u64(bytes - 8, 99);
        assert_eq!(mem.read_u64(bytes - 8), 99);
        assert_eq!(mem.resident_bytes(), 16);
    }

    #[test]
    fn flat_backing_pays_up_front() {
        let mem = PhysMem::new_flat(CHUNK_BYTES * 4);
        assert_eq!(mem.allocated_chunks(), 4);
        assert_eq!(mem.resident_bytes(), CHUNK_BYTES * 4);
    }
}
