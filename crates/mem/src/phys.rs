//! Simulated physical memory.
//!
//! A flat, word-addressed array standing in for the 2 GiB DRAM of the
//! paper's Table I (scaled down — the workloads use tens of MiB). Both the
//! CPU collector model and the accelerator operate *functionally* on this
//! memory: the heap, the page tables, the spill region and the root region
//! all live here, so the marked-object sets produced by every agent can be
//! compared bit-for-bit.

/// Byte-addressed simulated physical memory backed by 64-bit words.
///
/// All accesses are 8-byte aligned 64-bit word operations — the paper's
/// heap stores references, headers and free-list links as 64-bit words,
/// and the accelerator's functional work is entirely word-granular.
///
/// # Examples
///
/// ```
/// use tracegc_mem::PhysMem;
///
/// let mut mem = PhysMem::new(4096);
/// mem.write_u64(16, 0xdead_beef);
/// assert_eq!(mem.read_u64(16), 0xdead_beef);
/// ```
#[derive(Debug, Clone)]
pub struct PhysMem {
    words: Vec<u64>,
}

impl PhysMem {
    /// Creates a zeroed memory of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of 8.
    pub fn new(bytes: u64) -> Self {
        assert!(
            bytes.is_multiple_of(8),
            "physical memory size must be word-aligned"
        );
        Self {
            words: vec![0; (bytes / 8) as usize],
        }
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    #[inline]
    fn index(&self, paddr: u64) -> usize {
        debug_assert!(
            paddr.is_multiple_of(8),
            "unaligned word access at {paddr:#x}"
        );
        let idx = (paddr / 8) as usize;
        assert!(
            idx < self.words.len(),
            "physical address {paddr:#x} out of range ({} bytes)",
            self.size_bytes()
        );
        idx
    }

    /// Reads the word at byte address `paddr`.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is unaligned (debug builds) or out of range.
    #[inline]
    pub fn read_u64(&self, paddr: u64) -> u64 {
        self.words[self.index(paddr)]
    }

    /// Writes the word at byte address `paddr`.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is unaligned (debug builds) or out of range.
    #[inline]
    pub fn write_u64(&mut self, paddr: u64, value: u64) {
        let idx = self.index(paddr);
        self.words[idx] = value;
    }

    /// Atomically ORs `bits` into the word at `paddr` and returns the *old*
    /// value — the accelerator's single-AMO mark operation (§IV-A.II).
    #[inline]
    pub fn fetch_or_u64(&mut self, paddr: u64, bits: u64) -> u64 {
        let idx = self.index(paddr);
        let old = self.words[idx];
        self.words[idx] = old | bits;
        old
    }

    /// Zeroes `len` bytes starting at `paddr` (word-aligned, word-sized).
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds.
    pub fn zero_range(&mut self, paddr: u64, len: u64) {
        assert!(
            len.is_multiple_of(8),
            "zero_range length must be word-aligned"
        );
        for off in (0..len).step_by(8) {
            self.write_u64(paddr + off, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let mut mem = PhysMem::new(64);
        mem.write_u64(0, 1);
        mem.write_u64(56, u64::MAX);
        assert_eq!(mem.read_u64(0), 1);
        assert_eq!(mem.read_u64(56), u64::MAX);
        assert_eq!(mem.read_u64(8), 0);
    }

    #[test]
    fn fetch_or_returns_old_value() {
        let mut mem = PhysMem::new(16);
        mem.write_u64(8, 0b100);
        let old = mem.fetch_or_u64(8, 0b011);
        assert_eq!(old, 0b100);
        assert_eq!(mem.read_u64(8), 0b111);
    }

    #[test]
    fn zero_range_clears_words() {
        let mut mem = PhysMem::new(64);
        for a in (0..64).step_by(8) {
            mem.write_u64(a, 7);
        }
        mem.zero_range(16, 24);
        assert_eq!(mem.read_u64(8), 7);
        assert_eq!(mem.read_u64(16), 0);
        assert_eq!(mem.read_u64(32), 0);
        assert_eq!(mem.read_u64(40), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mem = PhysMem::new(8);
        let _ = mem.read_u64(8);
    }

    #[test]
    fn size_reports_bytes() {
        assert_eq!(PhysMem::new(4096).size_bytes(), 4096);
    }
}
