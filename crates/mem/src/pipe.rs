//! The idealized latency–bandwidth pipe memory model.
//!
//! For the "Potential Performance" study (Fig. 17) the paper replaces the
//! DDR3 model with "a latency-bandwidth pipe of latency 1 cycle and
//! bandwidth 8 GB/s" to find how much bandwidth the traversal unit could
//! exploit in a high-end SoC. This module is that model: a request begins
//! its transfer as soon as the pipe is free, occupies the pipe in
//! proportion to its size, and completes one latency after its transfer
//! finishes.

use tracegc_sim::Cycle;

use crate::req::{AccessKind, MemReq};

/// Configuration of the pipe model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeConfig {
    /// Fixed access latency in cycles.
    pub latency: Cycle,
    /// Bandwidth in bytes per cycle (8 B/cycle = 8 GB/s at 1 GHz).
    pub bytes_per_cycle: u64,
}

impl Default for PipeConfig {
    /// The paper's Fig. 17 configuration: 1-cycle latency, 8 GB/s.
    fn default() -> Self {
        Self {
            latency: 1,
            bytes_per_cycle: 8,
        }
    }
}

/// Pipe model statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipeStats {
    /// Total requests scheduled.
    pub requests: u64,
    /// Total cycles the pipe was occupied transferring data.
    pub busy_cycles: u64,
}

/// The latency–bandwidth pipe.
///
/// # Examples
///
/// ```
/// use tracegc_mem::pipe::{PipeConfig, PipeModel};
/// use tracegc_mem::{MemReq, Source};
///
/// let mut pipe = PipeModel::new(PipeConfig::default());
/// // 64 bytes at 8 B/cycle: 8 transfer cycles + 1 latency.
/// let done = pipe.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
/// assert_eq!(done, 9);
/// ```
#[derive(Debug, Clone)]
pub struct PipeModel {
    cfg: PipeConfig,
    free_at: Cycle,
    stats: PipeStats,
}

impl PipeModel {
    /// Creates the pipe.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(cfg: PipeConfig) -> Self {
        assert!(cfg.bytes_per_cycle > 0, "pipe bandwidth must be non-zero");
        Self {
            cfg,
            free_at: 0,
            stats: PipeStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipeConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> PipeStats {
        self.stats
    }

    /// Schedules `req` presented at `earliest`; returns the response-ready
    /// cycle.
    pub fn schedule(&mut self, req: &MemReq, earliest: Cycle) -> Cycle {
        let mut transfer = (req.bytes as u64).div_ceil(self.cfg.bytes_per_cycle).max(1);
        if req.kind == AccessKind::Amo {
            // Read + write-back occupies the pipe twice.
            transfer *= 2;
        }
        let start = earliest.max(self.free_at);
        self.free_at = start + transfer;
        self.stats.requests += 1;
        self.stats.busy_cycles += transfer;
        start + transfer + self.cfg.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::Source;

    #[test]
    fn sixty_four_bytes_at_eight_gbps() {
        let mut p = PipeModel::new(PipeConfig::default());
        let done = p.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
        assert_eq!(done, 9); // 8 transfer + 1 latency
    }

    #[test]
    fn back_to_back_requests_rate_limit() {
        let mut p = PipeModel::new(PipeConfig::default());
        let d0 = p.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
        let d1 = p.schedule(&MemReq::read(64, 64, Source::Tracer), 0);
        assert_eq!(d1 - d0, 8); // full 64 B every 8 cycles == 8 GB/s
    }

    #[test]
    fn small_requests_waste_bandwidth_potential() {
        // 8-byte requests each take a cycle: max 8 GB/s only with 64 B.
        let mut p = PipeModel::new(PipeConfig::default());
        let mut last = 0;
        for i in 0..16u64 {
            last = p.schedule(&MemReq::read(i * 8, 8, Source::Marker), 0);
        }
        // 16 requests * 1 cycle + latency.
        assert_eq!(last, 17);
    }

    #[test]
    fn idle_pipe_respects_presentation_time() {
        let mut p = PipeModel::new(PipeConfig::default());
        let done = p.schedule(&MemReq::read(0, 8, Source::Marker), 100);
        assert_eq!(done, 102);
    }

    #[test]
    fn amo_occupies_double() {
        let mut p = PipeModel::new(PipeConfig::default());
        let done = p.schedule(&MemReq::amo(0, Source::Marker), 0);
        assert_eq!(done, 3); // 2 transfer cycles + 1 latency
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut p = PipeModel::new(PipeConfig::default());
        p.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
        p.schedule(&MemReq::read(64, 32, Source::Tracer), 0);
        assert_eq!(p.stats().busy_cycles, 8 + 4);
        assert_eq!(p.stats().requests, 2);
    }
}
