//! The shared memory port: one controller, many requesters, full accounting.
//!
//! [`MemSystem`] wraps either the DDR3 model or the latency–bandwidth pipe
//! behind a single interface and layers on the instrumentation the paper's
//! figures need: per-[`Source`] request and byte counters
//! (Fig. 18b), a windowed [`BandwidthMeter`] (Fig. 16), and inter-request
//! gap tracking (Fig. 17b reports one request every 8.66 cycles).

use tracegc_sim::{BandwidthMeter, Cycle, EventTrace, TraceEvent};

use crate::ddr3::{Ddr3Config, Ddr3Model, Ddr3Stats};
use crate::pipe::{PipeConfig, PipeModel};
use crate::req::{AccessKind, MemReq, Source};

/// Aggregated controller statistics.
#[derive(Debug, Clone)]
pub struct MemStats {
    /// Requests per source (indexed by [`Source::index`]).
    pub requests_by_source: [u64; Source::ALL.len()],
    /// Bytes per source.
    pub bytes_by_source: [u64; Source::ALL.len()],
    /// Total requests.
    pub total_requests: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Cycle of the first scheduled request.
    pub first_request_at: Option<Cycle>,
    /// Presentation cycle of the most recent request.
    pub last_request_at: Cycle,
    /// Sum of presentation-time gaps between consecutive requests, for the
    /// mean-issue-interval statistic of Fig. 17b.
    pub gap_sum: u64,
}

impl Default for MemStats {
    fn default() -> Self {
        Self {
            requests_by_source: [0; Source::ALL.len()],
            bytes_by_source: [0; Source::ALL.len()],
            total_requests: 0,
            total_bytes: 0,
            first_request_at: None,
            last_request_at: 0,
            gap_sum: 0,
        }
    }
}

impl MemStats {
    /// Requests issued by `source`.
    pub fn requests(&self, source: Source) -> u64 {
        self.requests_by_source[source.index()]
    }

    /// Bytes moved by `source`.
    pub fn bytes(&self, source: Source) -> u64 {
        self.bytes_by_source[source.index()]
    }

    /// Mean cycles between consecutive request presentations (Fig. 17b).
    pub fn mean_issue_interval(&self) -> f64 {
        if self.total_requests <= 1 {
            0.0
        } else {
            self.gap_sum as f64 / (self.total_requests - 1) as f64
        }
    }
}

enum Controller {
    Ddr3(Ddr3Model),
    Pipe(PipeModel),
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Controller::Ddr3(_) => f.write_str("Controller::Ddr3"),
            Controller::Pipe(_) => f.write_str("Controller::Pipe"),
        }
    }
}

/// The SoC's single memory controller with full per-source accounting.
///
/// # Examples
///
/// ```
/// use tracegc_mem::{MemReq, MemSystem, Source};
///
/// let mut mem = MemSystem::pipe(Default::default());
/// mem.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
/// assert_eq!(mem.stats().requests(Source::Tracer), 1);
/// ```
#[derive(Debug)]
pub struct MemSystem {
    controller: Controller,
    stats: MemStats,
    meter: BandwidthMeter,
    trace: Option<EventTrace>,
}

/// Bandwidth-meter window: 50 µs at 1 GHz, fine enough for Fig. 16's
/// time-series plot over multi-millisecond pauses.
const METER_WINDOW: Cycle = 50_000;

impl MemSystem {
    /// Creates a DDR3-backed memory system (Table I defaults via
    /// `Ddr3Config::default()`).
    pub fn ddr3(cfg: Ddr3Config) -> Self {
        Self {
            controller: Controller::Ddr3(Ddr3Model::new(cfg)),
            stats: MemStats::default(),
            meter: BandwidthMeter::new(METER_WINDOW),
            trace: None,
        }
    }

    /// Creates the idealized latency–bandwidth pipe system (Fig. 17).
    pub fn pipe(cfg: PipeConfig) -> Self {
        Self {
            controller: Controller::Pipe(PipeModel::new(cfg)),
            stats: MemStats::default(),
            meter: BandwidthMeter::new(METER_WINDOW),
            trace: None,
        }
    }

    /// Turns on per-request event tracing into a bounded ring of
    /// `capacity` events. Off by default; tracing adds one ring push per
    /// scheduled request.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventTrace::new(capacity));
    }

    /// Drains the request-event ring (empty when tracing is disabled),
    /// leaving a fresh ring of the same capacity behind.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.trace {
            Some(t) => {
                let cap = t.capacity();
                std::mem::replace(t, EventTrace::new(cap)).into_vec()
            }
            None => Vec::new(),
        }
    }

    /// Schedules a request presented at `earliest`; returns the
    /// response-ready cycle.
    pub fn schedule(&mut self, req: &MemReq, earliest: Cycle) -> Cycle {
        debug_assert!(req.is_aligned(), "misaligned request {req:?}");
        let done = match &mut self.controller {
            Controller::Ddr3(m) => m.schedule(req, earliest),
            Controller::Pipe(m) => m.schedule(req, earliest),
        };
        let s = &mut self.stats;
        s.requests_by_source[req.source.index()] += 1;
        s.bytes_by_source[req.source.index()] += req.bytes as u64;
        s.total_requests += 1;
        s.total_bytes += req.bytes as u64;
        if s.first_request_at.is_none() {
            s.first_request_at = Some(earliest);
        } else {
            s.gap_sum += earliest.saturating_sub(s.last_request_at);
        }
        s.last_request_at = s.last_request_at.max(earliest);
        self.meter.record(done, req.bytes as u64);
        if let Some(trace) = &mut self.trace {
            let kind = match req.kind {
                AccessKind::Read => "mem_read",
                AccessKind::Write => "mem_write",
                AccessKind::Amo => "mem_amo",
            };
            trace.record(earliest, req.source.label(), kind, req.bytes as u64);
        }
        done
    }

    /// Aggregated per-source statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The bandwidth-over-time meter (Fig. 16).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// DDR3-level stats when backed by the DDR3 model (activates, row hits
    /// and conflicts feed the energy model of Fig. 23).
    pub fn ddr3_stats(&self) -> Option<Ddr3Stats> {
        match &self.controller {
            Controller::Ddr3(m) => Some(m.stats()),
            Controller::Pipe(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::MemReq;

    #[test]
    fn per_source_accounting() {
        let mut mem = MemSystem::pipe(PipeConfig::default());
        mem.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
        mem.schedule(&MemReq::read(64, 8, Source::Marker), 10);
        mem.schedule(&MemReq::amo(128, Source::Marker), 20);
        let s = mem.stats();
        assert_eq!(s.requests(Source::Tracer), 1);
        assert_eq!(s.requests(Source::Marker), 2);
        assert_eq!(s.bytes(Source::Tracer), 64);
        assert_eq!(s.bytes(Source::Marker), 16);
        assert_eq!(s.total_requests, 3);
        assert_eq!(s.total_bytes, 80);
    }

    #[test]
    fn mean_issue_interval_reflects_gaps() {
        let mut mem = MemSystem::pipe(PipeConfig::default());
        for i in 0..10u64 {
            mem.schedule(&MemReq::read(i * 64, 64, Source::Tracer), i * 10);
        }
        assert!((mem.stats().mean_issue_interval() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn meter_accumulates_bytes() {
        let mut mem = MemSystem::ddr3(Ddr3Config::default());
        for i in 0..4u64 {
            mem.schedule(&MemReq::read(i * 64, 64, Source::Sweeper), 0);
        }
        assert_eq!(mem.meter().total_bytes(), 256);
    }

    #[test]
    fn trace_ring_records_scheduled_requests() {
        let mut mem = MemSystem::pipe(PipeConfig::default());
        // Disabled by default: no events.
        mem.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
        assert!(mem.take_trace().is_empty());
        mem.enable_trace(8);
        mem.schedule(&MemReq::read(64, 64, Source::Tracer), 10);
        mem.schedule(&MemReq::write(128, 8, Source::MarkQueue), 20);
        mem.schedule(&MemReq::amo(192, Source::Marker), 30);
        let events = mem.take_trace();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, "mem_read");
        assert_eq!(events[1].component, "mark-queue");
        assert_eq!(events[2].kind, "mem_amo");
        assert_eq!(events[0].arg, 64);
        // Drained: the ring restarts empty.
        assert!(mem.take_trace().is_empty());
    }

    #[test]
    fn ddr3_stats_only_for_ddr3() {
        let mem = MemSystem::ddr3(Ddr3Config::default());
        assert!(mem.ddr3_stats().is_some());
        let pipe = MemSystem::pipe(PipeConfig::default());
        assert!(pipe.ddr3_stats().is_none());
    }

    use crate::pipe::PipeConfig;
}
