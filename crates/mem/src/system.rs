//! The shared memory port: one controller, many requesters, full accounting.
//!
//! [`MemSystem`] wraps either the DDR3 model or the latency–bandwidth pipe
//! behind a single interface and layers on the instrumentation the paper's
//! figures need: per-[`Source`] request and byte counters
//! (Fig. 18b), a windowed [`BandwidthMeter`] (Fig. 16), and inter-request
//! gap tracking (Fig. 17b reports one request every 8.66 cycles).

use tracegc_sim::fault::{EccOutcome, FaultInjector, FaultStats, SimError};
use tracegc_sim::{BandwidthMeter, Cycle, EventTrace, TraceEvent};

use crate::ddr3::{Ddr3Config, Ddr3Model, Ddr3Stats};
use crate::pipe::{PipeConfig, PipeModel};
use crate::req::{AccessKind, MemReq, Source};

/// Aggregated controller statistics.
#[derive(Debug, Clone)]
pub struct MemStats {
    /// Requests per source (indexed by [`Source::index`]).
    pub requests_by_source: [u64; Source::ALL.len()],
    /// Bytes per source.
    pub bytes_by_source: [u64; Source::ALL.len()],
    /// Total requests.
    pub total_requests: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Cycle of the first scheduled request.
    pub first_request_at: Option<Cycle>,
    /// Presentation cycle of the most recent request.
    pub last_request_at: Cycle,
    /// Sum of presentation-time gaps between consecutive requests, for the
    /// mean-issue-interval statistic of Fig. 17b.
    pub gap_sum: u64,
}

impl Default for MemStats {
    fn default() -> Self {
        Self {
            requests_by_source: [0; Source::ALL.len()],
            bytes_by_source: [0; Source::ALL.len()],
            total_requests: 0,
            total_bytes: 0,
            first_request_at: None,
            last_request_at: 0,
            gap_sum: 0,
        }
    }
}

impl MemStats {
    /// Requests issued by `source`.
    pub fn requests(&self, source: Source) -> u64 {
        self.requests_by_source[source.index()]
    }

    /// Bytes moved by `source`.
    pub fn bytes(&self, source: Source) -> u64 {
        self.bytes_by_source[source.index()]
    }

    /// Mean cycles between consecutive request presentations (Fig. 17b).
    pub fn mean_issue_interval(&self) -> f64 {
        if self.total_requests <= 1 {
            0.0
        } else {
            self.gap_sum as f64 / (self.total_requests - 1) as f64
        }
    }
}

enum Controller {
    Ddr3(Ddr3Model),
    Pipe(PipeModel),
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Controller::Ddr3(_) => f.write_str("Controller::Ddr3"),
            Controller::Pipe(_) => f.write_str("Controller::Pipe"),
        }
    }
}

/// The SoC's single memory controller with full per-source accounting.
///
/// # Examples
///
/// ```
/// use tracegc_mem::{MemReq, MemSystem, Source};
///
/// let mut mem = MemSystem::pipe(Default::default());
/// mem.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
/// assert_eq!(mem.stats().requests(Source::Tracer), 1);
/// ```
#[derive(Debug)]
pub struct MemSystem {
    controller: Controller,
    stats: MemStats,
    meter: BandwidthMeter,
    trace: Option<EventTrace>,
    /// Optional fault source ([`FaultSite::Mem`]); `None` in clean runs.
    ///
    /// [`FaultSite::Mem`]: tracegc_sim::fault::FaultSite::Mem
    fault: Option<FaultInjector>,
    /// First unrecoverable memory fault, latched until a requester
    /// polls [`MemSystem::take_fault`] and escalates it to a trap.
    pending_fault: Option<SimError>,
}

/// Bandwidth-meter window: 50 µs at 1 GHz, fine enough for Fig. 16's
/// time-series plot over multi-millisecond pauses.
const METER_WINDOW: Cycle = 50_000;

impl MemSystem {
    /// Creates a DDR3-backed memory system (Table I defaults via
    /// `Ddr3Config::default()`).
    pub fn ddr3(cfg: Ddr3Config) -> Self {
        Self {
            controller: Controller::Ddr3(Ddr3Model::new(cfg)),
            stats: MemStats::default(),
            meter: BandwidthMeter::new(METER_WINDOW),
            trace: None,
            fault: None,
            pending_fault: None,
        }
    }

    /// Creates the idealized latency–bandwidth pipe system (Fig. 17).
    pub fn pipe(cfg: PipeConfig) -> Self {
        Self {
            controller: Controller::Pipe(PipeModel::new(cfg)),
            stats: MemStats::default(),
            meter: BandwidthMeter::new(METER_WINDOW),
            trace: None,
            fault: None,
            pending_fault: None,
        }
    }

    /// Attaches a fault injector; every subsequently scheduled request
    /// rolls for delays, drops (timeout + bounded retry with backoff)
    /// and, on reads, ECC bit flips. Injectors with all-zero rates
    /// never draw, so attaching one does not perturb a clean run.
    pub fn set_fault_injector(&mut self, inj: FaultInjector) {
        self.fault = Some(inj);
    }

    /// What fired so far at this site, when an injector is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(|f| f.stats())
    }

    /// Detaches the fault injector, returning it (with its accumulated
    /// statistics). The software-fallback mark path runs on recovered
    /// memory: after a trap the driver detaches injection so the
    /// fallback provably completes instead of re-faulting forever.
    pub fn take_fault_injector(&mut self) -> Option<FaultInjector> {
        self.fault.take()
    }

    /// Takes the latched unrecoverable fault (uncorrectable ECC or an
    /// exhausted retry budget), if any. Requesters poll this once per
    /// cycle and escalate to a structured trap.
    pub fn take_fault(&mut self) -> Option<SimError> {
        self.pending_fault.take()
    }

    /// Peeks at the latched unrecoverable fault without clearing it.
    pub fn pending_fault(&self) -> Option<&SimError> {
        self.pending_fault.as_ref()
    }

    /// Turns on per-request event tracing into a bounded ring of
    /// `capacity` events. Off by default; tracing adds one ring push per
    /// scheduled request.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventTrace::new(capacity));
    }

    /// Drains the request-event ring (empty when tracing is disabled),
    /// leaving a fresh ring of the same capacity behind.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.trace {
            Some(t) => {
                let cap = t.capacity();
                std::mem::replace(t, EventTrace::new(cap)).into_vec()
            }
            None => Vec::new(),
        }
    }

    /// Schedules a request presented at `earliest`; returns the
    /// response-ready cycle.
    ///
    /// With a fault injector attached, the returned cycle includes any
    /// injected delays, ECC-correction penalties and timeout/backoff
    /// retries; unrecoverable outcomes additionally latch a
    /// [`SimError`] for [`MemSystem::take_fault`] (the returned timing
    /// then marks when the failure became architecturally visible).
    pub fn schedule(&mut self, req: &MemReq, earliest: Cycle) -> Cycle {
        debug_assert!(req.is_aligned(), "misaligned request {req:?}");
        let done = match self.fault.is_some() {
            false => self.dispatch(req, earliest),
            true => self.dispatch_faulted(req, earliest),
        };
        let s = &mut self.stats;
        s.requests_by_source[req.source.index()] += 1;
        s.bytes_by_source[req.source.index()] += req.bytes as u64;
        s.total_requests += 1;
        s.total_bytes += req.bytes as u64;
        if s.first_request_at.is_none() {
            s.first_request_at = Some(earliest);
        } else {
            s.gap_sum += earliest.saturating_sub(s.last_request_at);
        }
        s.last_request_at = s.last_request_at.max(earliest);
        self.meter.record(done, req.bytes as u64);
        if let Some(trace) = &mut self.trace {
            let kind = match req.kind {
                AccessKind::Read => "mem_read",
                AccessKind::Write => "mem_write",
                AccessKind::Amo => "mem_amo",
            };
            trace.record(earliest, req.source.label(), kind, req.bytes as u64);
        }
        done
    }

    /// One clean pass through the controller timing model.
    fn dispatch(&mut self, req: &MemReq, present: Cycle) -> Cycle {
        match &mut self.controller {
            Controller::Ddr3(m) => m.schedule(req, present),
            Controller::Pipe(m) => m.schedule(req, present),
        }
    }

    /// The faulted request path: rolls per attempt for a dropped
    /// response (requester times out, backs off, retries) and — on
    /// reads — an ECC bit flip (corrected in-line, detected-and-
    /// retried, or uncorrectable). Unrecoverable outcomes latch a
    /// [`SimError`]; the request still completes with defined timing so
    /// the simulation stays cycle-deterministic while the requester
    /// escalates.
    fn dispatch_faulted(&mut self, req: &MemReq, earliest: Cycle) -> Cycle {
        let is_read = matches!(req.kind, AccessKind::Read | AccessKind::Amo);
        let mut present = earliest;
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            let done = self.dispatch(req, present);
            let inj = self.fault.as_mut().expect("fault injector present");
            let cfg = *inj.config();
            let backoff = (attempts as u64 - 1) * cfg.retry_backoff_cycles;
            if inj.drop_response() {
                if attempts > cfg.max_retries {
                    inj.note_timeout();
                    self.latch(SimError::MemTimeout {
                        at: present + cfg.timeout_cycles,
                        addr: req.addr,
                        attempts,
                    });
                    return present + cfg.timeout_cycles;
                }
                inj.note_retry();
                present = present + cfg.timeout_cycles + backoff;
                continue;
            }
            let ecc = if is_read {
                inj.ecc_read()
            } else {
                EccOutcome::Clean
            };
            match ecc {
                EccOutcome::Clean => {
                    return match inj.delay_response() {
                        Some(d) => done + d,
                        None => done,
                    }
                }
                EccOutcome::Corrected => return done + cfg.ecc_correct_cycles,
                EccOutcome::Detected => {
                    if attempts > cfg.max_retries {
                        inj.note_timeout();
                        self.latch(SimError::MemTimeout {
                            at: done,
                            addr: req.addr,
                            attempts,
                        });
                        return done;
                    }
                    inj.note_retry();
                    present = done + backoff;
                }
                EccOutcome::Uncorrectable => {
                    self.latch(SimError::EccUncorrectable {
                        at: done,
                        addr: req.addr,
                    });
                    return done;
                }
            }
        }
    }

    /// Latches the first unrecoverable fault (later ones are dropped —
    /// the first trap freezes the requester anyway).
    fn latch(&mut self, err: SimError) {
        if self.pending_fault.is_none() {
            self.pending_fault = Some(err);
        }
    }

    /// Aggregated per-source statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The bandwidth-over-time meter (Fig. 16).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// DDR3-level stats when backed by the DDR3 model (activates, row hits
    /// and conflicts feed the energy model of Fig. 23).
    pub fn ddr3_stats(&self) -> Option<Ddr3Stats> {
        match &self.controller {
            Controller::Ddr3(m) => Some(m.stats()),
            Controller::Pipe(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::MemReq;

    #[test]
    fn per_source_accounting() {
        let mut mem = MemSystem::pipe(PipeConfig::default());
        mem.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
        mem.schedule(&MemReq::read(64, 8, Source::Marker), 10);
        mem.schedule(&MemReq::amo(128, Source::Marker), 20);
        let s = mem.stats();
        assert_eq!(s.requests(Source::Tracer), 1);
        assert_eq!(s.requests(Source::Marker), 2);
        assert_eq!(s.bytes(Source::Tracer), 64);
        assert_eq!(s.bytes(Source::Marker), 16);
        assert_eq!(s.total_requests, 3);
        assert_eq!(s.total_bytes, 80);
    }

    #[test]
    fn mean_issue_interval_reflects_gaps() {
        let mut mem = MemSystem::pipe(PipeConfig::default());
        for i in 0..10u64 {
            mem.schedule(&MemReq::read(i * 64, 64, Source::Tracer), i * 10);
        }
        assert!((mem.stats().mean_issue_interval() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn meter_accumulates_bytes() {
        let mut mem = MemSystem::ddr3(Ddr3Config::default());
        for i in 0..4u64 {
            mem.schedule(&MemReq::read(i * 64, 64, Source::Sweeper), 0);
        }
        assert_eq!(mem.meter().total_bytes(), 256);
    }

    #[test]
    fn trace_ring_records_scheduled_requests() {
        let mut mem = MemSystem::pipe(PipeConfig::default());
        // Disabled by default: no events.
        mem.schedule(&MemReq::read(0, 64, Source::Tracer), 0);
        assert!(mem.take_trace().is_empty());
        mem.enable_trace(8);
        mem.schedule(&MemReq::read(64, 64, Source::Tracer), 10);
        mem.schedule(&MemReq::write(128, 8, Source::MarkQueue), 20);
        mem.schedule(&MemReq::amo(192, Source::Marker), 30);
        let events = mem.take_trace();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, "mem_read");
        assert_eq!(events[1].component, "mark-queue");
        assert_eq!(events[2].kind, "mem_amo");
        assert_eq!(events[0].arg, 64);
        // Drained: the ring restarts empty.
        assert!(mem.take_trace().is_empty());
    }

    use tracegc_sim::fault::{FaultConfig, FaultPlan, FaultSite};

    fn injector(cfg: FaultConfig) -> tracegc_sim::fault::FaultInjector {
        FaultPlan::new(cfg).injector(FaultSite::Mem)
    }

    #[test]
    fn zero_rate_injector_does_not_perturb_timing() {
        let mut clean = MemSystem::ddr3(Ddr3Config::default());
        let mut faulted = MemSystem::ddr3(Ddr3Config::default());
        faulted.set_fault_injector(injector(FaultConfig::zero_rates(9)));
        for i in 0..50u64 {
            let req = MemReq::read(i * 4096, 64, Source::Tracer);
            let t = i * 7;
            assert_eq!(clean.schedule(&req, t), faulted.schedule(&req, t));
        }
        assert!(faulted.pending_fault().is_none());
        assert_eq!(faulted.fault_stats().unwrap().total(), 0);
    }

    #[test]
    fn dropped_responses_retry_with_backoff_then_time_out() {
        let mut mem = MemSystem::ddr3(Ddr3Config::default());
        mem.set_fault_injector(injector(FaultConfig {
            drop_rate: 1.0,
            max_retries: 2,
            timeout_cycles: 100,
            retry_backoff_cycles: 10,
            ..FaultConfig::default()
        }));
        let done = mem.schedule(&MemReq::read(0, 64, Source::Marker), 0);
        // Attempt 1 at 0, retry at 100, retry at 210; the third attempt
        // exhausts the budget and times out at 210 + 100.
        assert_eq!(done, 310);
        let stats = *mem.fault_stats().unwrap();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.timeouts, 1);
        match mem.take_fault() {
            Some(SimError::MemTimeout { attempts, addr, .. }) => {
                assert_eq!(attempts, 3);
                assert_eq!(addr, 0);
            }
            other => panic!("expected MemTimeout, got {other:?}"),
        }
        // The latch is cleared once taken.
        assert!(mem.take_fault().is_none());
    }

    #[test]
    fn uncorrectable_ecc_poisons_reads_only() {
        let cfg = FaultConfig {
            bit_flip_rate: 1.0,
            ecc_detect_weight: 0.0,
            ecc_uncorrectable_weight: 1.0,
            ..FaultConfig::default()
        };
        let mut mem = MemSystem::ddr3(Ddr3Config::default());
        mem.set_fault_injector(injector(cfg));
        // Writes carry no ECC read path.
        mem.schedule(&MemReq::write(0, 64, Source::MarkQueue), 0);
        assert!(mem.pending_fault().is_none());
        mem.schedule(&MemReq::read(64, 64, Source::Tracer), 10);
        assert!(matches!(
            mem.take_fault(),
            Some(SimError::EccUncorrectable { addr: 64, .. })
        ));
    }

    #[test]
    fn corrected_ecc_costs_latency_but_no_fault() {
        let cfg = FaultConfig {
            bit_flip_rate: 1.0,
            ecc_detect_weight: 0.0,
            ecc_uncorrectable_weight: 0.0,
            ecc_correct_cycles: 4,
            ..FaultConfig::default()
        };
        let mut clean = MemSystem::ddr3(Ddr3Config::default());
        let mut faulted = MemSystem::ddr3(Ddr3Config::default());
        faulted.set_fault_injector(injector(cfg));
        let req = MemReq::read(0, 64, Source::Tracer);
        let base = clean.schedule(&req, 0);
        assert_eq!(faulted.schedule(&req, 0), base + 4);
        assert!(faulted.pending_fault().is_none());
        assert_eq!(faulted.fault_stats().unwrap().ecc_corrected, 1);
    }

    #[test]
    fn delayed_responses_arrive_late_but_intact() {
        let cfg = FaultConfig {
            delay_rate: 1.0,
            delay_cycles: 77,
            ..FaultConfig::default()
        };
        let mut clean = MemSystem::ddr3(Ddr3Config::default());
        let mut faulted = MemSystem::ddr3(Ddr3Config::default());
        faulted.set_fault_injector(injector(cfg));
        let req = MemReq::read(0, 64, Source::Sweeper);
        let base = clean.schedule(&req, 0);
        assert_eq!(faulted.schedule(&req, 0), base + 77);
        assert!(faulted.pending_fault().is_none());
        assert_eq!(faulted.fault_stats().unwrap().delayed, 1);
    }

    #[test]
    fn ddr3_stats_only_for_ddr3() {
        let mem = MemSystem::ddr3(Ddr3Config::default());
        assert!(mem.ddr3_stats().is_some());
        let pipe = MemSystem::pipe(PipeConfig::default());
        assert!(pipe.ddr3_stats().is_none());
    }

    use crate::pipe::PipeConfig;
}
