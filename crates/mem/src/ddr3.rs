//! DDR3 memory controller timing model.
//!
//! Models the paper's Table I memory system: 2 GiB single-rank DDR3-2000
//! behind an FR-FCFS memory access scheduler with an open-page policy,
//! 14-14-14-47 ns timings (CL–tRCD–tRP–tRAS) and a 16-read / 8-write
//! outstanding-request window. The paper found the accelerator's speedup
//! "significantly improved changing from FIFO MAS to FR-FCFS and
//! increasing the maximum number of outstanding reads from 8 to 16"
//! (§VI-A) — both knobs are modelled here and exercised by the `ablA`
//! experiment.
//!
//! # Approximations
//!
//! The model is greedy: requests are scheduled in presentation order, and
//! FR-FCFS is approximated by per-bank independence (a request only waits
//! for *its* bank and the shared data bus), while FIFO serializes the
//! column-access start times of consecutive requests. Row-buffer hits,
//! misses and conflicts pay CL, tRCD+CL and tRP+tRCD+CL respectively, and
//! tRAS constrains precharge after activate.

use std::collections::BinaryHeap;

use tracegc_sim::{ns, Cycle};

use crate::req::{AccessKind, MemReq};

/// Scheduling policy of the memory access scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// First-ready, first-come-first-served: banks proceed independently,
    /// exploiting bank-level parallelism and row-buffer locality.
    #[default]
    FrFcfs,
    /// Strictly in-order servicing: each request's column access cannot
    /// begin before the previous request's column access began.
    Fifo,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep rows open after access (Table I).
    #[default]
    Open,
    /// Precharge immediately after each access; every access pays
    /// activation but never a conflict precharge.
    Closed,
}

/// DDR3 controller configuration (defaults = the paper's Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ddr3Config {
    /// Number of banks in the single rank.
    pub banks: usize,
    /// CAS latency in cycles (14 ns at 1 GHz).
    pub t_cas: Cycle,
    /// RAS-to-CAS delay.
    pub t_rcd: Cycle,
    /// Row precharge time.
    pub t_rp: Cycle,
    /// Minimum activate-to-precharge time.
    pub t_ras: Cycle,
    /// Cycles the shared data bus is occupied per 64-byte burst
    /// (DDR3-2000 moves 16 B/ns, so a 64 B line takes 4 ns).
    pub burst_64b: Cycle,
    /// Maximum outstanding reads the controller accepts.
    pub max_reads: usize,
    /// Maximum outstanding writes the controller accepts.
    pub max_writes: usize,
    /// Scheduling policy.
    pub scheduler: Scheduler,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
    /// FR-FCFS row-hit batching window: an access counts as a row hit if
    /// its row is among this many recently used rows of the bank. This
    /// emulates the reordering a first-ready scheduler performs when
    /// several sequential streams interleave in its queue (our greedy
    /// model schedules in presentation order, so without this window two
    /// interleaved streams would conflict on every access — something a
    /// real FR-FCFS controller avoids by batching row hits). FIFO uses a
    /// window of 1 (the single physical row buffer, no reordering).
    pub row_window: usize,
}

impl Default for Ddr3Config {
    fn default() -> Self {
        Self {
            banks: 8,
            t_cas: ns(14),
            t_rcd: ns(14),
            t_rp: ns(14),
            t_ras: ns(47),
            burst_64b: 4,
            max_reads: 16,
            max_writes: 8,
            scheduler: Scheduler::FrFcfs,
            page_policy: PagePolicy::Open,
            row_window: 4,
        }
    }
}

impl Ddr3Config {
    /// The weaker configuration the paper started from: FIFO scheduling
    /// with only 8 outstanding reads (§VI-A).
    pub fn fifo_8_reads() -> Self {
        Self {
            scheduler: Scheduler::Fifo,
            max_reads: 8,
            row_window: 1,
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Bank {
    /// Recently used rows, most recent first (see
    /// [`Ddr3Config::row_window`]).
    open_rows: std::collections::VecDeque<u64>,
    /// Earliest cycle the bank can accept its next command.
    ready_at: Cycle,
    /// When the current row was activated (for tRAS).
    activated_at: Cycle,
}

impl Bank {
    fn touch(&mut self, row: u64, window: usize) {
        if let Some(pos) = self.open_rows.iter().position(|&r| r == row) {
            self.open_rows.remove(pos);
        }
        self.open_rows.push_front(row);
        self.open_rows.truncate(window.max(1));
    }
}

/// Per-model timing statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ddr3Stats {
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to an idle (closed) bank.
    pub row_empty: u64,
    /// Row-buffer conflicts (precharge needed).
    pub row_conflicts: u64,
    /// Activate commands issued (drives the energy model).
    pub activates: u64,
    /// Total requests scheduled.
    pub requests: u64,
}

/// Data-bus occupancy tracked as merged busy intervals, so requests
/// presented slightly out of time order (parallel agents leapfrogging
/// each other by a few tens of cycles) can fill earlier bus gaps instead
/// of queueing behind a single high-water mark.
#[derive(Debug, Clone, Default)]
struct BusSchedule {
    /// Non-overlapping busy intervals, keyed by start.
    intervals: std::collections::BTreeMap<Cycle, Cycle>,
}

impl BusSchedule {
    /// Reserves `dur` bus cycles at the first gap at or after `earliest`;
    /// returns the reserved start.
    fn reserve(&mut self, earliest: Cycle, dur: Cycle) -> Cycle {
        let mut t = earliest;
        if let Some((_, &e)) = self.intervals.range(..=t).next_back() {
            if e > t {
                t = e;
            }
        }
        loop {
            match self.intervals.range(t..).next() {
                Some((&s, &e)) if s < t + dur => t = e,
                _ => break,
            }
        }
        let mut start = t;
        let mut end = t + dur;
        if let Some((&ps, &pe)) = self.intervals.range(..=start).next_back() {
            if pe == start {
                self.intervals.remove(&ps);
                start = ps;
            }
        }
        if let Some((&ns, &ne)) = self.intervals.range(end..).next() {
            if ns == end {
                self.intervals.remove(&ns);
                end = ne;
            }
        }
        self.intervals.insert(start, end);
        t
    }
}

/// The DDR3 bank/bus timing model.
///
/// See the [module docs](self) for the modelling approach.
#[derive(Debug, Clone)]
pub struct Ddr3Model {
    cfg: Ddr3Config,
    banks: Vec<Bank>,
    bus: BusSchedule,
    /// Completion times of in-flight reads (min-heap via Reverse).
    reads_inflight: BinaryHeap<std::cmp::Reverse<Cycle>>,
    writes_inflight: BinaryHeap<std::cmp::Reverse<Cycle>>,
    /// FIFO policy: column-access start of the previous request.
    last_col_start: Cycle,
    stats: Ddr3Stats,
}

impl Ddr3Model {
    /// Creates a model with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or not a power of two.
    pub fn new(cfg: Ddr3Config) -> Self {
        // Constructor-time config validation is the only assertion in
        // this model; the scheduling hot path below is panic-free, and
        // injected faults (drops, delays, ECC) are layered on top by
        // `MemSystem`, keeping this timing model golden-path only.
        assert!(
            cfg.banks > 0 && cfg.banks.is_power_of_two(),
            "ddr3 bank count must be a non-zero power of two, got {}",
            cfg.banks
        );
        Self {
            banks: vec![Bank::default(); cfg.banks],
            cfg,
            bus: BusSchedule::default(),
            reads_inflight: BinaryHeap::new(),
            writes_inflight: BinaryHeap::new(),
            last_col_start: 0,
            stats: Ddr3Stats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &Ddr3Config {
        &self.cfg
    }

    /// Timing statistics so far.
    pub fn stats(&self) -> Ddr3Stats {
        self.stats
    }

    #[inline]
    fn bank_of(&self, addr: u64) -> usize {
        // Cache-line (64 B) interleaving across banks.
        ((addr >> 6) as usize) & (self.cfg.banks - 1)
    }

    #[inline]
    fn row_of(&self, addr: u64) -> u64 {
        // 2 KiB row buffer per bank; lines of one bank are 512 B apart in
        // the flat address space, so 32 consecutive per-bank lines (16 KiB
        // of address space) share a row.
        addr >> 14
    }

    fn drain_window(heap: &mut BinaryHeap<std::cmp::Reverse<Cycle>>, now: Cycle) {
        while let Some(&std::cmp::Reverse(t)) = heap.peek() {
            if t <= now {
                heap.pop();
            } else {
                break;
            }
        }
    }

    /// Schedules `req` as if presented to the controller at `earliest`;
    /// returns the cycle the response data is fully transferred.
    pub fn schedule(&mut self, req: &MemReq, earliest: Cycle) -> Cycle {
        let mut start = earliest;

        // Outstanding-request window: wait until a slot frees.
        let (heap, cap) = match req.kind {
            AccessKind::Write => (&mut self.writes_inflight, self.cfg.max_writes),
            _ => (&mut self.reads_inflight, self.cfg.max_reads),
        };
        Self::drain_window(heap, start);
        if heap.len() >= cap {
            if let Some(&std::cmp::Reverse(t)) = heap.peek() {
                start = start.max(t);
            }
            Self::drain_window(heap, start);
        }

        let bank_idx = self.bank_of(req.addr);
        let row = self.row_of(req.addr);
        let bank = &mut self.banks[bank_idx];

        let mut cmd_at = start.max(bank.ready_at);
        if self.cfg.scheduler == Scheduler::Fifo {
            // Strict ordering: the column access may not begin before the
            // previous request's column access began.
            cmd_at = cmd_at.max(self.last_col_start);
        }

        // Bank state machine: determine column-access start.
        let window = match self.cfg.scheduler {
            Scheduler::FrFcfs => self.cfg.row_window,
            Scheduler::Fifo => 1,
        };
        let row_hit = bank.open_rows.iter().any(|&r| r == row);
        let col_start = match (self.cfg.page_policy, bank.open_rows.is_empty(), row_hit) {
            (PagePolicy::Open, false, true) => {
                self.stats.row_hits += 1;
                cmd_at
            }
            (PagePolicy::Open, false, false) => {
                self.stats.row_conflicts += 1;
                self.stats.activates += 1;
                // Precharge may not happen before tRAS has elapsed.
                let pre_at = cmd_at.max(bank.activated_at + self.cfg.t_ras);
                let act_at = pre_at + self.cfg.t_rp;
                bank.activated_at = act_at;
                act_at + self.cfg.t_rcd
            }
            (PagePolicy::Open, true, _) | (PagePolicy::Closed, _, _) => {
                self.stats.row_empty += 1;
                self.stats.activates += 1;
                bank.activated_at = cmd_at;
                cmd_at + self.cfg.t_rcd
            }
        };
        match self.cfg.page_policy {
            PagePolicy::Open => bank.touch(row, window),
            PagePolicy::Closed => bank.open_rows.clear(),
        }
        // Back-to-back column commands on the same bank pipeline at the
        // burst rate. Writes are buffered by the controller and drained
        // with low priority (standard read-priority scheduling), so they
        // do not stall subsequent reads at the bank.
        if req.kind != AccessKind::Write {
            bank.ready_at = bank.ready_at.max(col_start + self.cfg.burst_64b);
        }

        let data_ready_at_pins = col_start + self.cfg.t_cas;
        let burst = self.burst_cycles(req.bytes);
        let data_start = self.bus.reserve(data_ready_at_pins, burst);
        let done = data_start + burst;

        // AMO performs a read followed by an internal write-back; charge
        // one extra burst on the bus.
        let done = if req.kind == AccessKind::Amo {
            self.bus.reserve(done, burst);
            done + 1
        } else {
            done
        };

        match req.kind {
            AccessKind::Write => self.writes_inflight.push(std::cmp::Reverse(done)),
            _ => self.reads_inflight.push(std::cmp::Reverse(done)),
        }
        self.last_col_start = col_start;
        self.stats.requests += 1;
        done
    }

    /// Data-bus occupancy in cycles for a transfer of `bytes`.
    fn burst_cycles(&self, bytes: u32) -> Cycle {
        // 16 B move per cycle at DDR3-2000; smaller transfers still occupy
        // at least one bus cycle.
        (bytes as Cycle).div_ceil(16).max(1) * self.cfg.burst_64b / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::Source;

    fn read64(addr: u64) -> MemReq {
        MemReq::read(addr, 64, Source::Cpu)
    }

    #[test]
    fn first_access_pays_activation_and_cas() {
        let mut m = Ddr3Model::new(Ddr3Config::default());
        let done = m.schedule(&read64(0), 0);
        // tRCD + CL + burst = 14 + 14 + 4.
        assert_eq!(done, 32);
        assert_eq!(m.stats().row_empty, 1);
    }

    #[test]
    fn row_hit_is_faster_than_row_conflict() {
        let mut m = Ddr3Model::new(Ddr3Config::default());
        let t0 = m.schedule(&read64(0), 0);
        // Same bank, same row (same 64 B line re-read).
        let hit_done = m.schedule(&read64(0), t0);
        let hit_latency = hit_done - t0;
        // Same bank (bank 0 = addr>>6 multiple of 8), different row.
        let conflict_done = m.schedule(&read64(1 << 14), hit_done);
        let conflict_latency = conflict_done - hit_done;
        assert!(hit_latency < conflict_latency);
        assert_eq!(m.stats().row_hits, 1);
        assert_eq!(m.stats().row_conflicts, 1);
    }

    #[test]
    fn bank_parallelism_overlaps_under_frfcfs() {
        let mut m = Ddr3Model::new(Ddr3Config::default());
        // Two different banks, presented at the same time: the second should
        // not pay the full serialized latency.
        let d0 = m.schedule(&read64(0), 0);
        let d1 = m.schedule(&read64(64), 0);
        assert!(d1 < d0 + d0, "banks should overlap: {d0} {d1}");
        // Completion separated only by the bus burst.
        assert_eq!(d1 - d0, 4);
    }

    #[test]
    fn fifo_serializes_more_than_frfcfs() {
        let run = |cfg: Ddr3Config| {
            let mut m = Ddr3Model::new(cfg);
            let mut last = 0;
            for i in 0..64u64 {
                // Stride across banks and rows to defeat locality.
                last = m.schedule(&read64(i * 64 * 9 + (i % 3) * (1 << 14)), 0);
            }
            last
        };
        let frfcfs = run(Ddr3Config::default());
        let fifo = run(Ddr3Config {
            scheduler: Scheduler::Fifo,
            ..Ddr3Config::default()
        });
        assert!(fifo > frfcfs, "fifo={fifo} frfcfs={frfcfs}");
    }

    #[test]
    fn outstanding_read_window_throttles() {
        let narrow = Ddr3Config {
            max_reads: 1,
            ..Ddr3Config::default()
        };
        let mut m = Ddr3Model::new(narrow);
        let d0 = m.schedule(&read64(0), 0);
        // With a single-entry window the next request cannot even start
        // before the first completes.
        let d1 = m.schedule(&read64(64), 0);
        assert!(d1 >= d0 + 4);

        let mut wide = Ddr3Model::new(Ddr3Config::default());
        let w0 = wide.schedule(&read64(0), 0);
        let w1 = wide.schedule(&read64(64), 0);
        assert!(w1 - w0 < d1 - d0 || w1 < d1);
    }

    #[test]
    fn closed_page_never_conflicts() {
        let mut m = Ddr3Model::new(Ddr3Config {
            page_policy: PagePolicy::Closed,
            ..Ddr3Config::default()
        });
        let mut t = 0;
        for i in 0..16u64 {
            t = m.schedule(&read64((i % 2) << 14), t);
        }
        assert_eq!(m.stats().row_conflicts, 0);
        assert_eq!(m.stats().row_hits, 0);
    }

    #[test]
    fn amo_costs_more_than_read() {
        let mut m1 = Ddr3Model::new(Ddr3Config::default());
        let read_done = m1.schedule(&MemReq::read(0x40, 8, Source::Marker), 0);
        let mut m2 = Ddr3Model::new(Ddr3Config::default());
        let amo_done = m2.schedule(&MemReq::amo(0x40, Source::Marker), 0);
        assert!(amo_done > read_done);
    }

    #[test]
    fn completions_never_precede_presentation() {
        let mut m = Ddr3Model::new(Ddr3Config::default());
        for i in 0..100u64 {
            let t = i * 3;
            let done = m.schedule(&read64(i * 128), t);
            assert!(done > t);
        }
    }

    #[test]
    fn small_bursts_use_less_bus_time() {
        let m = Ddr3Model::new(Ddr3Config::default());
        assert_eq!(m.burst_cycles(8), 1);
        assert_eq!(m.burst_cycles(16), 1);
        assert_eq!(m.burst_cycles(32), 2);
        assert_eq!(m.burst_cycles(64), 4);
    }
}
