//! Property-based tests for the memory system: TileLink decomposition,
//! DDR3 timing sanity and cache coherence of the timestamp model.

use proptest::prelude::*;

use tracegc_mem::cache::{Backing, MemBacking};
use tracegc_mem::ddr3::{Ddr3Config, Ddr3Model};
use tracegc_mem::pipe::{PipeConfig, PipeModel};
use tracegc_mem::req::decompose_aligned;
use tracegc_mem::{Cache, CacheConfig, MemReq, MemSystem, Source};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decomposition_covers_exactly_and_legally(
        start in (0u64..1 << 30).prop_map(|v| v & !7),
        words in 1u64..64,
    ) {
        let len = words * 8;
        let chunks = decompose_aligned(start, len);
        // Contiguous, covering, non-overlapping.
        let mut cursor = start;
        for (addr, bytes) in &chunks {
            prop_assert_eq!(*addr, cursor);
            cursor += *bytes as u64;
            // TileLink legality.
            let req = MemReq::read(*addr, *bytes, Source::Tracer);
            prop_assert!(req.is_aligned(), "illegal chunk {:#x}+{}", addr, bytes);
        }
        prop_assert_eq!(cursor, start + len);
    }

    #[test]
    fn ddr3_completion_always_after_presentation(
        addrs in proptest::collection::vec((0u64..1 << 26).prop_map(|v| v & !63), 1..64),
        gaps in proptest::collection::vec(0u64..50, 1..64),
    ) {
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut now = 0;
        for (addr, gap) in addrs.iter().zip(&gaps) {
            now += gap;
            let done = model.schedule(&MemReq::read(*addr, 64, Source::Cpu), now);
            prop_assert!(done > now, "completion {done} <= presentation {now}");
        }
    }

    #[test]
    fn ddr3_single_stream_completions_are_monotone(
        addrs in proptest::collection::vec((0u64..1 << 26).prop_map(|v| v & !63), 2..64),
    ) {
        // One agent issuing strictly after each completion must observe
        // monotone completions.
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut now = 0;
        let mut last_done = 0;
        for addr in &addrs {
            let done = model.schedule(&MemReq::read(*addr, 64, Source::Cpu), now);
            prop_assert!(done >= last_done);
            last_done = done;
            now = done;
        }
    }

    #[test]
    fn ddr3_bandwidth_never_exceeds_the_bus(
        addrs in proptest::collection::vec((0u64..1 << 26).prop_map(|v| v & !63), 16..128),
    ) {
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut last = 0u64;
        for addr in &addrs {
            last = last.max(model.schedule(&MemReq::read(*addr, 64, Source::Cpu), 0));
        }
        // 16 bytes per cycle is the physical DDR3-2000 limit.
        let bytes = addrs.len() as u64 * 64;
        prop_assert!(bytes <= last * 16, "{bytes} bytes in {last} cycles");
    }

    #[test]
    fn pipe_respects_configured_bandwidth(
        sizes in proptest::collection::vec(prop_oneof![Just(8u32), Just(16), Just(32), Just(64)], 8..64),
    ) {
        let mut pipe = PipeModel::new(PipeConfig::default());
        let mut last = 0;
        for (i, &s) in sizes.iter().enumerate() {
            last = pipe.schedule(&MemReq::read(i as u64 * 64, s, Source::Tracer), 0);
        }
        let bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
        prop_assert!(bytes <= last * 8, "{bytes} bytes by cycle {last} exceeds 8 B/cyc");
    }

    #[test]
    fn cache_hits_after_fill_and_never_loses_data(
        addrs in proptest::collection::vec((0u64..1 << 16).prop_map(|v| v & !7), 1..64),
    ) {
        let mut cache = Cache::new(CacheConfig::rocket_l1d());
        let mut mem = MemSystem::pipe(PipeConfig::default());
        let mut now = 0;
        for addr in &addrs {
            let mut backing = MemBacking { mem: &mut mem, source: Source::Cpu };
            now = cache.access(*addr, false, now, Source::Cpu, &mut backing);
            // Immediate re-access is a hit costing exactly hit latency.
            let mut backing = MemBacking { mem: &mut mem, source: Source::Cpu };
            let again = cache.access(*addr, false, now, Source::Cpu, &mut backing);
            prop_assert_eq!(again, now + cache.config().hit_latency);
            now = again;
        }
    }

    #[test]
    fn cache_timing_is_monotone_for_one_agent(
        addrs in proptest::collection::vec((0u64..1 << 20).prop_map(|v| v & !7), 2..96),
        writes in proptest::collection::vec(any::<bool>(), 2..96),
    ) {
        let mut cache = Cache::new(CacheConfig::rocket_l1d());
        let mut mem = MemSystem::ddr3(Ddr3Config::default());
        let mut now = 0;
        for (addr, write) in addrs.iter().zip(&writes) {
            let mut backing = MemBacking { mem: &mut mem, source: Source::Cpu };
            let done = cache.access(*addr, *write, now, Source::Cpu, &mut backing);
            prop_assert!(done >= now);
            now = done;
        }
    }

    #[test]
    fn writeback_preserves_stats_consistency(
        addrs in proptest::collection::vec((0u64..1 << 14).prop_map(|v| v & !7), 8..128),
    ) {
        // Tiny cache to force evictions.
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            hit_latency: 1,
            mshrs: 4,
        });
        let mut mem = MemSystem::pipe(PipeConfig::default());
        let mut now = 0;
        for addr in &addrs {
            let mut backing = MemBacking { mem: &mut mem, source: Source::Cpu };
            now = cache.access(*addr, true, now, Source::Cpu, &mut backing);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits() + s.misses(), addrs.len() as u64);
        prop_assert!(s.writebacks <= s.misses());
    }
}

/// A backing that records fills, for structural checks.
#[derive(Default)]
struct CountingBacking {
    fills: u64,
}

impl Backing for CountingBacking {
    fn fill(&mut self, _line: u64, at: u64) -> u64 {
        self.fills += 1;
        at + 10
    }
    fn writeback(&mut self, _line: u64, _at: u64) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn at_most_one_fill_per_distinct_line(
        lines in proptest::collection::vec(0u64..32, 1..64),
    ) {
        // A cache big enough to never evict: each distinct line fills
        // exactly once no matter the access pattern.
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 64,
            ways: 4,
            hit_latency: 1,
            mshrs: 8,
        });
        let mut backing = CountingBacking::default();
        let mut now = 0;
        let mut distinct = std::collections::BTreeSet::new();
        for line in &lines {
            distinct.insert(*line);
            now = cache.access(line * 64, false, now, Source::Cpu, &mut backing);
        }
        prop_assert_eq!(backing.fills, distinct.len() as u64);
    }
}
