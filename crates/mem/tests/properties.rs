//! Property-based tests for the memory system: TileLink decomposition,
//! DDR3 timing sanity and cache coherence of the timestamp model.
//! Each property runs ~100 randomized cases from fixed seeds.

use tracegc_mem::cache::{Backing, MemBacking};
use tracegc_mem::ddr3::{Ddr3Config, Ddr3Model};
use tracegc_mem::pipe::{PipeConfig, PipeModel};
use tracegc_mem::req::decompose_aligned;
use tracegc_mem::{Cache, CacheConfig, MemReq, MemSystem, Source};
use tracegc_sim::rng::{Rng, StdRng};

const CASES: u64 = 100;

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x3E30_0000 + property * 10_007 + case)
}

#[test]
fn decomposition_covers_exactly_and_legally() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let start = rng.random_range(0u64..1 << 30) & !7;
        let words = rng.random_range(1u64..64);
        let len = words * 8;
        let chunks = decompose_aligned(start, len);
        // Contiguous, covering, non-overlapping.
        let mut cursor = start;
        for (addr, bytes) in &chunks {
            assert_eq!(*addr, cursor, "case {case}");
            cursor += *bytes as u64;
            // TileLink legality.
            let req = MemReq::read(*addr, *bytes, Source::Tracer);
            assert!(
                req.is_aligned(),
                "case {case}: illegal chunk {addr:#x}+{bytes}"
            );
        }
        assert_eq!(cursor, start + len, "case {case}");
    }
}

#[test]
fn ddr3_completion_always_after_presentation() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut now = 0;
        for _ in 0..rng.random_range(1usize..64) {
            let addr = rng.random_range(0u64..1 << 26) & !63;
            now += rng.random_range(0u64..50);
            let done = model.schedule(&MemReq::read(addr, 64, Source::Cpu), now);
            assert!(
                done > now,
                "case {case}: completion {done} <= presentation {now}"
            );
        }
    }
}

#[test]
fn ddr3_single_stream_completions_are_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        // One agent issuing strictly after each completion must observe
        // monotone completions.
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut now = 0;
        let mut last_done = 0;
        for _ in 0..rng.random_range(2usize..64) {
            let addr = rng.random_range(0u64..1 << 26) & !63;
            let done = model.schedule(&MemReq::read(addr, 64, Source::Cpu), now);
            assert!(done >= last_done, "case {case}");
            last_done = done;
            now = done;
        }
    }
}

#[test]
fn ddr3_bandwidth_never_exceeds_the_bus() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let n = rng.random_range(16usize..128);
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut last = 0u64;
        for _ in 0..n {
            let addr = rng.random_range(0u64..1 << 26) & !63;
            last = last.max(model.schedule(&MemReq::read(addr, 64, Source::Cpu), 0));
        }
        // 16 bytes per cycle is the physical DDR3-2000 limit.
        let bytes = n as u64 * 64;
        assert!(
            bytes <= last * 16,
            "case {case}: {bytes} bytes in {last} cycles"
        );
    }
}

#[test]
fn pipe_respects_configured_bandwidth() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let sizes: Vec<u32> = (0..rng.random_range(8usize..64))
            .map(|_| [8u32, 16, 32, 64][rng.random_range(0usize..4)])
            .collect();
        let mut pipe = PipeModel::new(PipeConfig::default());
        let mut last = 0;
        for (i, &s) in sizes.iter().enumerate() {
            last = pipe.schedule(&MemReq::read(i as u64 * 64, s, Source::Tracer), 0);
        }
        let bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
        assert!(
            bytes <= last * 8,
            "case {case}: {bytes} bytes by cycle {last} exceeds 8 B/cyc"
        );
    }
}

#[test]
fn cache_hits_after_fill_and_never_loses_data() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let mut cache = Cache::new(CacheConfig::rocket_l1d());
        let mut mem = MemSystem::pipe(PipeConfig::default());
        let mut now = 0;
        for _ in 0..rng.random_range(1usize..64) {
            let addr = rng.random_range(0u64..1 << 16) & !7;
            let mut backing = MemBacking {
                mem: &mut mem,
                source: Source::Cpu,
            };
            now = cache.access(addr, false, now, Source::Cpu, &mut backing);
            // Immediate re-access is a hit costing exactly hit latency.
            let mut backing = MemBacking {
                mem: &mut mem,
                source: Source::Cpu,
            };
            let again = cache.access(addr, false, now, Source::Cpu, &mut backing);
            assert_eq!(again, now + cache.config().hit_latency, "case {case}");
            now = again;
        }
    }
}

#[test]
fn cache_timing_is_monotone_for_one_agent() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let mut cache = Cache::new(CacheConfig::rocket_l1d());
        let mut mem = MemSystem::ddr3(Ddr3Config::default());
        let mut now = 0;
        for _ in 0..rng.random_range(2usize..96) {
            let addr = rng.random_range(0u64..1 << 20) & !7;
            let write = rng.random::<bool>();
            let mut backing = MemBacking {
                mem: &mut mem,
                source: Source::Cpu,
            };
            let done = cache.access(addr, write, now, Source::Cpu, &mut backing);
            assert!(done >= now, "case {case}");
            now = done;
        }
    }
}

#[test]
fn writeback_preserves_stats_consistency() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        // Tiny cache to force evictions.
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            hit_latency: 1,
            mshrs: 4,
        });
        let mut mem = MemSystem::pipe(PipeConfig::default());
        let mut now = 0;
        let n = rng.random_range(8usize..128);
        for _ in 0..n {
            let addr = rng.random_range(0u64..1 << 14) & !7;
            let mut backing = MemBacking {
                mem: &mut mem,
                source: Source::Cpu,
            };
            now = cache.access(addr, true, now, Source::Cpu, &mut backing);
        }
        let s = cache.stats();
        assert_eq!(s.hits() + s.misses(), n as u64, "case {case}");
        assert!(s.writebacks <= s.misses(), "case {case}");
    }
}

/// A backing that records fills, for structural checks.
#[derive(Default)]
struct CountingBacking {
    fills: u64,
}

impl Backing for CountingBacking {
    fn fill(&mut self, _line: u64, at: u64) -> u64 {
        self.fills += 1;
        at + 10
    }
    fn writeback(&mut self, _line: u64, _at: u64) {}
}

#[test]
fn at_most_one_fill_per_distinct_line() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        // A cache big enough to never evict: each distinct line fills
        // exactly once no matter the access pattern.
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 64,
            ways: 4,
            hit_latency: 1,
            mshrs: 8,
        });
        let mut backing = CountingBacking::default();
        let mut now = 0;
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..rng.random_range(1usize..64) {
            let line = rng.random_range(0u64..32);
            distinct.insert(line);
            now = cache.access(line * 64, false, now, Source::Cpu, &mut backing);
        }
        assert_eq!(backing.fills, distinct.len() as u64, "case {case}");
    }
}
