//! Property-based tests for the memory system: TileLink decomposition,
//! DDR3 timing sanity and cache coherence of the timestamp model.
//! Each property runs ~100 randomized cases from fixed seeds.

use tracegc_mem::cache::{Backing, MemBacking};
use tracegc_mem::ddr3::{Ddr3Config, Ddr3Model};
use tracegc_mem::pipe::{PipeConfig, PipeModel};
use tracegc_mem::req::decompose_aligned;
use tracegc_mem::{Cache, CacheConfig, MemReq, MemSystem, Source};
use tracegc_sim::rng::{Rng, StdRng};

const CASES: u64 = 100;

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x3E30_0000 + property * 10_007 + case)
}

#[test]
fn decomposition_covers_exactly_and_legally() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let start = rng.random_range(0u64..1 << 30) & !7;
        let words = rng.random_range(1u64..64);
        let len = words * 8;
        let chunks = decompose_aligned(start, len);
        // Contiguous, covering, non-overlapping.
        let mut cursor = start;
        for (addr, bytes) in &chunks {
            assert_eq!(*addr, cursor, "case {case}");
            cursor += *bytes as u64;
            // TileLink legality.
            let req = MemReq::read(*addr, *bytes, Source::Tracer);
            assert!(
                req.is_aligned(),
                "case {case}: illegal chunk {addr:#x}+{bytes}"
            );
        }
        assert_eq!(cursor, start + len, "case {case}");
    }
}

#[test]
fn ddr3_completion_always_after_presentation() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut now = 0;
        for _ in 0..rng.random_range(1usize..64) {
            let addr = rng.random_range(0u64..1 << 26) & !63;
            now += rng.random_range(0u64..50);
            let done = model.schedule(&MemReq::read(addr, 64, Source::Cpu), now);
            assert!(
                done > now,
                "case {case}: completion {done} <= presentation {now}"
            );
        }
    }
}

#[test]
fn ddr3_single_stream_completions_are_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        // One agent issuing strictly after each completion must observe
        // monotone completions.
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut now = 0;
        let mut last_done = 0;
        for _ in 0..rng.random_range(2usize..64) {
            let addr = rng.random_range(0u64..1 << 26) & !63;
            let done = model.schedule(&MemReq::read(addr, 64, Source::Cpu), now);
            assert!(done >= last_done, "case {case}");
            last_done = done;
            now = done;
        }
    }
}

#[test]
fn ddr3_bandwidth_never_exceeds_the_bus() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let n = rng.random_range(16usize..128);
        let mut model = Ddr3Model::new(Ddr3Config::default());
        let mut last = 0u64;
        for _ in 0..n {
            let addr = rng.random_range(0u64..1 << 26) & !63;
            last = last.max(model.schedule(&MemReq::read(addr, 64, Source::Cpu), 0));
        }
        // 16 bytes per cycle is the physical DDR3-2000 limit.
        let bytes = n as u64 * 64;
        assert!(
            bytes <= last * 16,
            "case {case}: {bytes} bytes in {last} cycles"
        );
    }
}

#[test]
fn pipe_respects_configured_bandwidth() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let sizes: Vec<u32> = (0..rng.random_range(8usize..64))
            .map(|_| [8u32, 16, 32, 64][rng.random_range(0usize..4)])
            .collect();
        let mut pipe = PipeModel::new(PipeConfig::default());
        let mut last = 0;
        for (i, &s) in sizes.iter().enumerate() {
            last = pipe.schedule(&MemReq::read(i as u64 * 64, s, Source::Tracer), 0);
        }
        let bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
        assert!(
            bytes <= last * 8,
            "case {case}: {bytes} bytes by cycle {last} exceeds 8 B/cyc"
        );
    }
}

#[test]
fn cache_hits_after_fill_and_never_loses_data() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let mut cache = Cache::new(CacheConfig::rocket_l1d());
        let mut mem = MemSystem::pipe(PipeConfig::default());
        let mut now = 0;
        for _ in 0..rng.random_range(1usize..64) {
            let addr = rng.random_range(0u64..1 << 16) & !7;
            let mut backing = MemBacking {
                mem: &mut mem,
                source: Source::Cpu,
            };
            now = cache.access(addr, false, now, Source::Cpu, &mut backing);
            // Immediate re-access is a hit costing exactly hit latency.
            let mut backing = MemBacking {
                mem: &mut mem,
                source: Source::Cpu,
            };
            let again = cache.access(addr, false, now, Source::Cpu, &mut backing);
            assert_eq!(again, now + cache.config().hit_latency, "case {case}");
            now = again;
        }
    }
}

#[test]
fn cache_timing_is_monotone_for_one_agent() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let mut cache = Cache::new(CacheConfig::rocket_l1d());
        let mut mem = MemSystem::ddr3(Ddr3Config::default());
        let mut now = 0;
        for _ in 0..rng.random_range(2usize..96) {
            let addr = rng.random_range(0u64..1 << 20) & !7;
            let write = rng.random::<bool>();
            let mut backing = MemBacking {
                mem: &mut mem,
                source: Source::Cpu,
            };
            let done = cache.access(addr, write, now, Source::Cpu, &mut backing);
            assert!(done >= now, "case {case}");
            now = done;
        }
    }
}

#[test]
fn writeback_preserves_stats_consistency() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        // Tiny cache to force evictions.
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            hit_latency: 1,
            mshrs: 4,
        });
        let mut mem = MemSystem::pipe(PipeConfig::default());
        let mut now = 0;
        let n = rng.random_range(8usize..128);
        for _ in 0..n {
            let addr = rng.random_range(0u64..1 << 14) & !7;
            let mut backing = MemBacking {
                mem: &mut mem,
                source: Source::Cpu,
            };
            now = cache.access(addr, true, now, Source::Cpu, &mut backing);
        }
        let s = cache.stats();
        assert_eq!(s.hits() + s.misses(), n as u64, "case {case}");
        assert!(s.writebacks <= s.misses(), "case {case}");
    }
}

/// A backing that records fills, for structural checks.
#[derive(Default)]
struct CountingBacking {
    fills: u64,
}

impl Backing for CountingBacking {
    fn fill(&mut self, _line: u64, at: u64) -> u64 {
        self.fills += 1;
        at + 10
    }
    fn writeback(&mut self, _line: u64, _at: u64) {}
}

#[test]
fn at_most_one_fill_per_distinct_line() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        // A cache big enough to never evict: each distinct line fills
        // exactly once no matter the access pattern.
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 64 * 64,
            ways: 4,
            hit_latency: 1,
            mshrs: 8,
        });
        let mut backing = CountingBacking::default();
        let mut now = 0;
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..rng.random_range(1usize..64) {
            let line = rng.random_range(0u64..32);
            distinct.insert(line);
            now = cache.access(line * 64, false, now, Source::Cpu, &mut backing);
        }
        assert_eq!(backing.fills, distinct.len() as u64, "case {case}");
    }
}

// --- Sparse vs flat PhysMem differential properties -------------------
//
// The sparse chunked backing must be observationally identical to the
// flat Vec<u64> it replaced: same words on every read, same panics on
// every out-of-range access, while allocating storage only for chunks
// actually written with nonzero data.

use tracegc_mem::phys::CHUNK_BYTES;
use tracegc_mem::PhysMem;

#[test]
fn sparse_matches_flat_on_random_access_patterns() {
    const SIZE: u64 = CHUNK_BYTES * 16;
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let mut sparse = PhysMem::new(SIZE);
        let mut flat = PhysMem::new_flat(SIZE);
        for _ in 0..rng.random_range(64usize..512) {
            let addr = rng.random_range(0u64..SIZE / 8) * 8;
            match rng.random_range(0u32..5) {
                0 => {
                    // Bias toward zero writes to exercise the sparse
                    // backing's zero-write elision.
                    let v = if rng.random_range(0u32..4) == 0 {
                        0
                    } else {
                        rng.random()
                    };
                    sparse.write_u64(addr, v);
                    flat.write_u64(addr, v);
                }
                1 => {
                    // The accelerator's single-AMO mark operation.
                    let bits = 1u64 << rng.random_range(0u32..64);
                    assert_eq!(
                        sparse.fetch_or_u64(addr, bits),
                        flat.fetch_or_u64(addr, bits),
                        "case {case}: fetch_or old value diverged at {addr:#x}"
                    );
                }
                2 => {
                    // A fault-injection bit-flip site: read-modify-write
                    // with a single flipped bit, as the DRAM fault model
                    // does to in-flight words.
                    let bit = 1u64 << rng.random_range(0u32..64);
                    let flipped = sparse.read_u64(addr) ^ bit;
                    assert_eq!(
                        flat.read_u64(addr) ^ bit,
                        flipped,
                        "case {case}: pre-flip word diverged at {addr:#x}"
                    );
                    sparse.write_u64(addr, flipped);
                    flat.write_u64(addr, flipped);
                }
                3 => {
                    let words = rng.random_range(1u64..64).min(SIZE / 8 - addr / 8);
                    sparse.zero_range(addr, words * 8);
                    flat.zero_range(addr, words * 8);
                }
                _ => {
                    assert_eq!(
                        sparse.read_u64(addr),
                        flat.read_u64(addr),
                        "case {case}: read diverged at {addr:#x}"
                    );
                }
            }
        }
        // Word-for-word sweep of the whole address space.
        for a in (0..SIZE).step_by(8) {
            assert_eq!(
                sparse.read_u64(a),
                flat.read_u64(a),
                "case {case}: final state diverged at {a:#x}"
            );
        }
    }
}

#[test]
fn sparse_and_flat_panic_on_the_same_out_of_range_accesses() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    const SIZE: u64 = CHUNK_BYTES * 2;
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        // Addresses straddling the boundary: in-range must succeed on
        // both, out-of-range must panic on both.
        let addr = rng.random_range(0u64..SIZE / 4) * 8 + SIZE - CHUNK_BYTES / 2;
        let sparse = PhysMem::new(SIZE);
        let flat = PhysMem::new_flat(SIZE);
        let s = catch_unwind(AssertUnwindSafe(|| sparse.read_u64(addr))).is_err();
        let f = catch_unwind(AssertUnwindSafe(|| flat.read_u64(addr))).is_err();
        assert_eq!(s, f, "case {case}: panic behavior diverged at {addr:#x}");
        assert_eq!(s, addr >= SIZE, "case {case}: wrong bounds at {addr:#x}");
    }
}

#[test]
fn untouched_ranges_allocate_zero_chunks() {
    for case in 0..CASES {
        let mut rng = case_rng(12, case);
        let mut mem = PhysMem::new(CHUNK_BYTES * 1024);
        // Reads, zero writes and zero_range never allocate.
        for _ in 0..64 {
            let addr = rng.random_range(0u64..mem.size_bytes() / 8) * 8;
            match rng.random_range(0u32..3) {
                0 => assert_eq!(mem.read_u64(addr), 0),
                1 => mem.write_u64(addr, 0),
                _ => {
                    let len = rng.random_range(1u64..32) * 8;
                    if addr + len <= mem.size_bytes() {
                        mem.zero_range(addr, len);
                    }
                }
            }
        }
        assert_eq!(mem.allocated_chunks(), 0, "case {case}");
        assert_eq!(mem.resident_bytes(), 0, "case {case}");
        // Nonzero writes allocate exactly the touched chunks.
        let mut touched = std::collections::BTreeSet::new();
        for _ in 0..rng.random_range(1usize..32) {
            let addr = rng.random_range(0u64..mem.size_bytes() / 8) * 8;
            mem.write_u64(addr, 1 + rng.random_range(0u64..1000));
            touched.insert(addr / CHUNK_BYTES);
        }
        assert_eq!(mem.allocated_chunks(), touched.len(), "case {case}");
        assert_eq!(
            mem.resident_bytes(),
            touched.len() as u64 * CHUNK_BYTES,
            "case {case}"
        );
    }
}
