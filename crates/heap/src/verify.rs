//! Functional GC oracles and heap consistency checks.
//!
//! These are the referees of the differential-testing strategy in
//! DESIGN.md §5: the timed CPU collector and the traversal/reclamation
//! units must produce exactly the results of [`software_mark`] and
//! [`software_sweep`], and [`check_free_lists`] must hold after every
//! sweep regardless of the agent that performed it.

use std::collections::BTreeSet;

use crate::heap::Heap;
use crate::layout::{
    bidi, conv, decode_cell_start, encode_free_cell_start, CellStart, LayoutKind, ObjRef,
};

/// Outcome of a sweep over the mark-sweep space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Cells turned from dead objects into free-list entries.
    pub freed_cells: u64,
    /// Objects that survived (marked; their mark bits were cleared).
    pub live_objects: u64,
    /// Cells that were already free.
    pub already_free: u64,
}

/// Marks every object reachable from the roots, functionally (no timing).
/// Returns the set of marked objects.
pub fn software_mark(heap: &mut Heap) -> BTreeSet<ObjRef> {
    let mut marked = BTreeSet::new();
    let mut stack: Vec<ObjRef> = heap.roots().to_vec();
    while let Some(obj) = stack.pop() {
        if heap.mark(obj) {
            continue; // already marked
        }
        marked.insert(obj);
        stack.extend(heap.refs_of(obj));
    }
    marked
}

/// Like [`software_mark`], returning only the count of newly marked
/// objects without materializing the set — what the streamed workload
/// generators' recycling sweeps use on multi-million-object heaps,
/// where a `BTreeSet` of every live object would dwarf the generator's
/// own footprint.
pub fn software_mark_count(heap: &mut Heap) -> u64 {
    let mut marked = 0u64;
    let mut stack: Vec<ObjRef> = heap.roots().to_vec();
    while let Some(obj) = stack.pop() {
        if heap.mark(obj) {
            continue; // already marked
        }
        marked += 1;
        stack.extend(heap.refs_of(obj));
    }
    marked
}

/// The functional sweep oracle: rebuilds every block's free list exactly
/// as the reclamation unit's block sweepers do (§V-D), clears surviving
/// mark bits, and updates the heap's allocator metadata.
pub fn software_sweep(heap: &mut Heap) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    let layout = heap.layout();
    let blocks = heap.blocks().to_vec();
    for (bidx, block) in blocks.iter().enumerate() {
        let mut free_head = 0u64;
        let mut free_cells = 0u64;
        // Build the list back-to-front so it ends up in address order.
        for i in (0..block.ncells).rev() {
            let cell = block.base_va + i * block.cell_bytes;
            match decode_cell_start(heap.read_va(cell)) {
                CellStart::Free { .. } => {
                    outcome.already_free += 1;
                    heap.write_va(cell, encode_free_cell_start(free_head));
                    free_head = cell;
                    free_cells += 1;
                }
                CellStart::Live { nrefs, .. } => {
                    let header_va = match layout {
                        LayoutKind::Bidirectional => bidi::header_of_cell(cell, nrefs),
                        LayoutKind::Conventional => conv::header_of_cell(cell),
                    };
                    let header = crate::layout::Header::from_raw(heap.read_va(header_va));
                    if header.is_marked() {
                        outcome.live_objects += 1;
                        heap.write_va(header_va, header.without_mark().raw());
                    } else {
                        outcome.freed_cells += 1;
                        heap.write_va(cell, encode_free_cell_start(free_head));
                        free_head = cell;
                        free_cells += 1;
                    }
                }
            }
        }
        heap.set_block_free_list(bidx, free_head, free_cells);
    }
    // LOS objects just get their mark bits cleared (the runtime, not the
    // unit, manages the LOS; §V-A).
    for los in heap.los_objects().to_vec() {
        let h = heap.header(los.obj).without_mark();
        heap.write_va(los.obj.addr(), h.raw());
        outcome.live_objects += 1;
    }
    heap.finish_sweep();
    outcome
}

/// Verifies that every block's in-memory free list is acyclic, stays
/// inside the block, visits exactly `free_cells` entries, and that every
/// free cell in the block is on the list.
///
/// # Errors
///
/// Returns a description of the first inconsistency found.
pub fn check_free_lists(heap: &Heap) -> Result<(), String> {
    for (bidx, block) in heap.blocks().iter().enumerate() {
        let block_end = block.base_va + block.ncells * block.cell_bytes;
        let mut visited = BTreeSet::new();
        let mut cursor = block.free_head;
        while cursor != 0 {
            if cursor < block.base_va || cursor >= block_end {
                return Err(format!(
                    "block {bidx}: free-list entry {cursor:#x} outside block"
                ));
            }
            if (cursor - block.base_va) % block.cell_bytes != 0 {
                return Err(format!(
                    "block {bidx}: free-list entry {cursor:#x} not cell-aligned"
                ));
            }
            if !visited.insert(cursor) {
                return Err(format!(
                    "block {bidx}: free list has a cycle at {cursor:#x}"
                ));
            }
            match decode_cell_start(heap.read_va(cursor)) {
                CellStart::Free { next } => cursor = next,
                CellStart::Live { .. } => {
                    return Err(format!("block {bidx}: live cell {cursor:#x} on free list"))
                }
            }
        }
        if visited.len() as u64 != block.free_cells {
            return Err(format!(
                "block {bidx}: free list has {} entries, metadata says {}",
                visited.len(),
                block.free_cells
            ));
        }
        // Every free cell must be on the list.
        for i in 0..block.ncells {
            let cell = block.base_va + i * block.cell_bytes;
            if let CellStart::Free { .. } = decode_cell_start(heap.read_va(cell)) {
                if !visited.contains(&cell) {
                    return Err(format!(
                        "block {bidx}: free cell {cell:#x} missing from list"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Asserts that the marked set equals the reachability oracle — the
/// central differential check.
///
/// # Errors
///
/// Returns a description of the first divergence.
pub fn check_marks_match_reachability(heap: &Heap) -> Result<(), String> {
    let reachable = heap.reachable_from_roots();
    let marked = heap.marked_set();
    if reachable == marked {
        return Ok(());
    }
    let missing: Vec<_> = reachable.difference(&marked).take(3).collect();
    let extra: Vec<_> = marked.difference(&reachable).take(3).collect();
    Err(format!(
        "mark/reachability divergence: {} reachable, {} marked; missing {:?}, extra {:?}",
        reachable.len(),
        marked.len(),
        missing,
        extra
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;

    fn graph_heap() -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..100)
            .map(|i| h.alloc(2, (i % 3) as u32, false).unwrap())
            .collect();
        // A chain plus some cross edges; objects 50.. are garbage.
        for i in 0..49usize {
            h.set_ref(objs[i], 0, Some(objs[i + 1]));
            h.set_ref(objs[i], 1, Some(objs[(i * 13) % 50]));
        }
        for i in 50..99usize {
            h.set_ref(objs[i], 0, Some(objs[i + 1])); // garbage chain
        }
        h.set_roots(&[objs[0]]);
        h
    }

    #[test]
    fn software_mark_matches_oracle() {
        let mut h = graph_heap();
        let marked = software_mark(&mut h);
        assert_eq!(marked, h.reachable_from_roots());
        check_marks_match_reachability(&h).unwrap();
        assert_eq!(marked.len(), 50);
    }

    #[test]
    fn sweep_frees_exactly_the_garbage() {
        let mut h = graph_heap();
        software_mark(&mut h);
        let free_before = h.total_free_cells();
        let outcome = software_sweep(&mut h);
        assert_eq!(outcome.freed_cells, 50);
        assert_eq!(outcome.live_objects, 50);
        assert_eq!(h.total_free_cells(), free_before + 50);
        check_free_lists(&h).unwrap();
    }

    #[test]
    fn sweep_clears_mark_bits() {
        let mut h = graph_heap();
        software_mark(&mut h);
        software_sweep(&mut h);
        assert!(h.marked_set().is_empty());
    }

    #[test]
    fn allocation_reuses_swept_cells() {
        let mut h = graph_heap();
        let blocks_before = h.blocks().len();
        software_mark(&mut h);
        software_sweep(&mut h);
        // Allocate the same shapes again: no new blocks needed.
        for i in 0..50 {
            h.alloc(2, (i % 3) as u32, false).unwrap();
        }
        assert_eq!(h.blocks().len(), blocks_before);
        check_free_lists(&h).unwrap();
    }

    #[test]
    fn two_gc_cycles_are_stable() {
        let mut h = graph_heap();
        for _ in 0..2 {
            let marked = software_mark(&mut h);
            assert_eq!(marked.len(), 50);
            software_sweep(&mut h);
            check_free_lists(&h).unwrap();
        }
    }

    #[test]
    fn check_detects_divergence() {
        let mut h = graph_heap();
        software_mark(&mut h);
        // Corrupt: unmark one reachable object.
        let victim = *h.reachable_from_roots().iter().next().unwrap();
        let hdr = h.header(victim).without_mark();
        h.write_va(victim.addr(), hdr.raw());
        assert!(check_marks_match_reachability(&h).is_err());
    }

    #[test]
    fn check_free_lists_detects_bad_count() {
        let mut h = graph_heap();
        software_mark(&mut h);
        software_sweep(&mut h);
        h.set_block_free_list(0, h.blocks()[0].free_head, h.blocks()[0].free_cells + 1);
        assert!(check_free_lists(&h).is_err());
    }

    #[test]
    fn conventional_layout_gc_cycle() {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            layout: LayoutKind::Conventional,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..60).map(|_| h.alloc(1, 2, false).unwrap()).collect();
        for i in 0..29usize {
            h.set_ref(objs[i], 0, Some(objs[i + 1]));
        }
        h.set_roots(&[objs[0]]);
        let marked = software_mark(&mut h);
        assert_eq!(marked.len(), 30);
        let outcome = software_sweep(&mut h);
        assert_eq!(outcome.freed_cells, 30);
        check_free_lists(&h).unwrap();
    }

    #[test]
    fn los_objects_survive_sweep_with_marks_cleared() {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let big = h.alloc(1500, 0, true).unwrap();
        h.set_roots(&[big]);
        software_mark(&mut h);
        assert!(h.is_marked(big));
        software_sweep(&mut h);
        assert!(!h.is_marked(big));
        assert_eq!(h.los_objects().len(), 1);
    }
}
