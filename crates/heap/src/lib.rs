//! A JikesRVM-style mark-sweep heap with the paper's bidirectional object
//! layout, living inside simulated physical memory behind real page
//! tables.
//!
//! The paper co-designs the accelerator with JikesRVM's MMTk MarkSweep
//! plan (§V-A): memory is divided into 64 KiB blocks, each assigned a size
//! class that fixes the size of its cells; every cell holds either an
//! object or a free-list entry linking empty cells together (Fig. 11).
//! Objects use a *bidirectional* layout (Fig. 6b): all reference fields
//! sit on one side of the header and all scalar fields on the other, so a
//! cacheless accelerator can find every outgoing reference without
//! touching a type-information block. The header word packs the mark bit,
//! a live-cell tag bit and the 32-bit reference count (MSB = array flag),
//! and the count is replicated at the start of the cell to enable the
//! reclamation unit's linear block scans.
//!
//! The conventional TIB-based layout (Fig. 6a) is also implemented so the
//! `ablB` ablation can quantify what the bidirectional layout buys.
//!
//! Everything here is *functional* state shared by all timed agents: the
//! CPU collector model, the traversal unit and the reachability oracle
//! all operate on the same [`Heap`], so their results can be compared
//! bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use tracegc_heap::{Heap, HeapConfig};
//!
//! let mut heap = Heap::new(HeapConfig::default());
//! let a = heap.alloc(1, 2, false).unwrap();
//! let b = heap.alloc(0, 4, false).unwrap();
//! heap.set_ref(a, 0, Some(b));
//! heap.set_roots(&[a]);
//! let live = heap.reachable_from_roots();
//! assert!(live.contains(&b));
//! ```

pub mod heap;
pub mod layout;
pub mod pageset;
pub mod snapshot;
pub mod soc;
pub mod space;
pub mod verify;

pub use heap::{AllocError, BlockInfo, Heap, HeapConfig, HeapStats};
pub use layout::{CellStart, Header, LayoutKind, ObjRef, WORD};
pub use soc::SocCtx;
pub use space::SpaceMap;
