//! The heap proper: spaces, blocks, size classes, segregated free lists
//! and the functional object API shared by every timed agent.

use crate::pageset::PageSet;
use std::collections::{BTreeSet, HashMap, VecDeque};

use tracegc_mem::PhysMem;
use tracegc_vmem::{AddressSpace, FrameAlloc, PAGE_SIZE};

use crate::layout::{
    bidi, conv, decode_cell_start, encode_free_cell_start, encode_live_cell_start, CellStart,
    Header, LayoutKind, ObjRef, HEADER_MARK_BIT, WORD,
};
use crate::space::SpaceMap;

/// Heap construction parameters.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Simulated physical memory size in bytes.
    pub phys_bytes: u64,
    /// Object layout (bidirectional by default, per the paper).
    pub layout: LayoutKind,
    /// Virtual address-space map.
    pub spaces: SpaceMap,
    /// Map heap memory with 2 MiB superpages instead of 4 KiB pages
    /// (§VII: "large heaps could use superpages instead of 4KB pages").
    pub superpages: bool,
    /// Block size in bytes (JikesRVM uses 64 KiB blocks).
    pub block_bytes: u64,
    /// Segregated-free-list cell sizes in bytes, ascending.
    pub size_classes: Vec<u64>,
}

impl Default for HeapConfig {
    fn default() -> Self {
        Self {
            phys_bytes: 256 << 20,
            layout: LayoutKind::Bidirectional,
            spaces: SpaceMap::default(),
            superpages: false,
            block_bytes: 64 * 1024,
            size_classes: vec![
                16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048, 8192,
            ],
        }
    }
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No space left in the requested space.
    OutOfMemory,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => f.write_str("heap space exhausted"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Metadata for one mark-sweep block — the unit of work the reclamation
/// unit's block sweepers consume (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Virtual address of the block's first cell.
    pub base_va: u64,
    /// Cell size in bytes (the block's size class).
    pub cell_bytes: u64,
    /// Number of cells in the block.
    pub ncells: u64,
    /// Index into the size-class table.
    pub class: usize,
    /// VA of the first free cell, 0 when none.
    pub free_head: u64,
    /// Number of free cells.
    pub free_cells: u64,
}

/// A large-object-space allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LosObject {
    /// The object.
    pub obj: ObjRef,
    /// Pages occupied.
    pub pages: u64,
}

/// Running allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated since heap creation.
    pub objects_allocated: u64,
    /// Bytes requested by those allocations.
    pub bytes_allocated: u64,
    /// Mark-sweep blocks created.
    pub blocks_created: u64,
    /// Large objects allocated.
    pub los_objects: u64,
}

/// The simulated JVM heap.
///
/// Owns the physical memory, the page tables and all space metadata. The
/// API is purely functional (no timing): timed agents read and write the
/// same [`PhysMem`] through their own cost models.
#[derive(Debug)]
pub struct Heap {
    /// Simulated physical memory; agents access it directly.
    pub phys: PhysMem,
    cfg: HeapConfig,
    aspace: AddressSpace,
    falloc: FrameAlloc,
    blocks: Vec<BlockInfo>,
    /// Per-class stack of block indices that still have free cells.
    class_avail: Vec<Vec<usize>>,
    ms_next_va: u64,
    los_next_va: u64,
    immortal_next_va: u64,
    mapped_pages: PageSet,
    los_objects: Vec<LosObject>,
    roots: Vec<ObjRef>,
    /// Conventional mode: TIB address per (nrefs, fields, is_array) shape.
    tib_cache: HashMap<(u32, u32, bool), u64>,
    stats: HeapStats,
}

impl Heap {
    /// Creates an empty heap with fresh page tables.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no size classes,
    /// non-word-aligned classes, or classes too small for the minimal
    /// cell).
    pub fn new(cfg: HeapConfig) -> Self {
        assert!(!cfg.size_classes.is_empty(), "need at least one size class");
        assert!(
            cfg.size_classes.windows(2).all(|w| w[0] < w[1]),
            "size classes must be ascending"
        );
        assert!(
            cfg.size_classes
                .iter()
                .all(|&c| c % WORD == 0 && c >= 2 * WORD),
            "size classes must be word multiples >= 16"
        );
        assert!(
            cfg.block_bytes.is_multiple_of(PAGE_SIZE),
            "block size must be page-aligned"
        );
        let mut phys = PhysMem::new(cfg.phys_bytes);
        let mut falloc = FrameAlloc::new(0, cfg.phys_bytes);
        let aspace = AddressSpace::new(&mut phys, &mut falloc);
        let class_avail = vec![Vec::new(); cfg.size_classes.len()];
        let spaces = cfg.spaces;
        Self {
            phys,
            aspace,
            falloc,
            blocks: Vec::new(),
            class_avail,
            ms_next_va: spaces.ms_base,
            los_next_va: spaces.los_base,
            immortal_next_va: spaces.immortal_base,
            mapped_pages: PageSet::new(),
            los_objects: Vec::new(),
            roots: Vec::new(),
            tib_cache: HashMap::new(),
            stats: HeapStats::default(),
            cfg,
        }
    }

    /// The heap's configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.cfg
    }

    /// The object layout in use.
    pub fn layout(&self) -> LayoutKind {
        self.cfg.layout
    }

    /// The page tables (hand the root to a
    /// [`Translator`](tracegc_vmem::Translator)).
    pub fn address_space(&self) -> AddressSpace {
        self.aspace
    }

    /// The space map.
    pub fn spaces(&self) -> &SpaceMap {
        &self.cfg.spaces
    }

    /// Allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Mark-sweep block metadata, indexed by block id.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// Large objects currently allocated.
    pub fn los_objects(&self) -> &[LosObject] {
        &self.los_objects
    }

    /// The current root set.
    pub fn roots(&self) -> &[ObjRef] {
        &self.roots
    }

    fn ensure_mapped(&mut self, va: u64, len: u64) {
        use tracegc_vmem::pagetable::MEGAPAGE_SIZE;
        if self.cfg.superpages {
            let first = va / MEGAPAGE_SIZE;
            let last = (va + len - 1) / MEGAPAGE_SIZE;
            for mp in first..=last {
                let base_page = mp * (MEGAPAGE_SIZE / PAGE_SIZE);
                if !self.mapped_pages.contains(base_page) {
                    let frame = self.falloc.alloc_region(MEGAPAGE_SIZE, MEGAPAGE_SIZE);
                    self.aspace.map_superpage(
                        &mut self.phys,
                        &mut self.falloc,
                        mp * MEGAPAGE_SIZE,
                        frame,
                    );
                    self.mapped_pages
                        .insert_range(base_page, base_page + MEGAPAGE_SIZE / PAGE_SIZE);
                }
            }
            return;
        }
        let first = va / PAGE_SIZE;
        let last = (va + len - 1) / PAGE_SIZE;
        for page in first..=last {
            if self.mapped_pages.insert(page) {
                let frame = self.falloc.alloc();
                self.aspace
                    .map_page(&mut self.phys, &mut self.falloc, page * PAGE_SIZE, frame);
            }
        }
    }

    /// Maps (if needed) an arbitrary virtual region — used for scratch
    /// structures like the software collector's mark stack, which in a
    /// real system the runtime would have mapped long before a GC.
    pub fn ensure_mapped_region(&mut self, va: u64, len: u64) {
        self.ensure_mapped(va, len);
    }

    /// Translates a virtual address through the heap's own page tables
    /// (the zero-latency oracle used by functional accesses).
    ///
    /// # Panics
    ///
    /// Panics if `va` is unmapped — functional accesses must never fault.
    pub fn va_to_pa(&self, va: u64) -> u64 {
        self.aspace
            .translate(&self.phys, va)
            .unwrap_or_else(|| panic!("unmapped virtual address {va:#x}"))
    }

    /// Reads the word at virtual address `va`.
    pub fn read_va(&self, va: u64) -> u64 {
        self.phys.read_u64(self.va_to_pa(va))
    }

    /// Writes the word at virtual address `va`.
    pub fn write_va(&mut self, va: u64, value: u64) {
        let pa = self.va_to_pa(va);
        self.phys.write_u64(pa, value);
    }

    /// Allocates a contiguous physical region (e.g. the driver's 4 MiB
    /// spill region, §V-E) and returns its physical base address.
    pub fn alloc_phys_region(&mut self, bytes: u64) -> u64 {
        let pages = bytes.div_ceil(PAGE_SIZE);
        let base = self.falloc.alloc();
        for _ in 1..pages {
            self.falloc.alloc();
        }
        base
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Bytes a cell must provide for an object of this shape under the
    /// heap's layout.
    pub fn cell_bytes_needed(&self, nrefs: u32, scalars: u32) -> u64 {
        match self.cfg.layout {
            LayoutKind::Bidirectional => bidi::cell_words(nrefs, scalars) * WORD,
            LayoutKind::Conventional => conv::cell_words(nrefs + scalars) * WORD,
        }
    }

    /// Allocates an object with `nrefs` reference slots (all initialized
    /// to null) and `scalars` scalar words (zeroed).
    ///
    /// Objects larger than the largest size class go to the large-object
    /// space; everything else goes through the segregated free lists.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when the target space is full.
    pub fn alloc(
        &mut self,
        nrefs: u32,
        scalars: u32,
        is_array: bool,
    ) -> Result<ObjRef, AllocError> {
        let needed = self.cell_bytes_needed(nrefs, scalars);
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += needed;
        if needed > *self.cfg.size_classes.last().expect("non-empty classes") {
            return self.alloc_los(nrefs, scalars, is_array, needed);
        }
        let class = self
            .cfg
            .size_classes
            .iter()
            .position(|&c| c >= needed)
            .expect("needed fits the largest class");
        let cell = self.pop_free_cell(class)?;
        Ok(self.format_object(cell, nrefs, scalars, is_array))
    }

    fn pop_free_cell(&mut self, class: usize) -> Result<u64, AllocError> {
        loop {
            if let Some(&bidx) = self.class_avail[class].last() {
                let block = &mut self.blocks[bidx];
                if block.free_cells == 0 {
                    self.class_avail[class].pop();
                    continue;
                }
                let cell = block.free_head;
                debug_assert!(cell != 0, "free_cells > 0 but empty list");
                block.free_cells -= 1;
                let next = match decode_cell_start(self.read_va(cell)) {
                    CellStart::Free { next } => next,
                    CellStart::Live { .. } => panic!("allocating a live cell at {cell:#x}"),
                };
                self.blocks[bidx].free_head = next;
                return Ok(cell);
            }
            self.new_block(class)?;
        }
    }

    fn new_block(&mut self, class: usize) -> Result<(), AllocError> {
        let spaces = self.cfg.spaces;
        if self.ms_next_va + self.cfg.block_bytes > spaces.ms_base + spaces.ms_size {
            return Err(AllocError::OutOfMemory);
        }
        let base_va = self.ms_next_va;
        self.ms_next_va += self.cfg.block_bytes;
        self.ensure_mapped(base_va, self.cfg.block_bytes);
        let cell_bytes = self.cfg.size_classes[class];
        let ncells = self.cfg.block_bytes / cell_bytes;
        // Thread the initial free list through the cells in address order.
        for i in 0..ncells {
            let cell = base_va + i * cell_bytes;
            let next = if i + 1 < ncells { cell + cell_bytes } else { 0 };
            self.write_va(cell, encode_free_cell_start(next));
        }
        let bidx = self.blocks.len();
        self.blocks.push(BlockInfo {
            base_va,
            cell_bytes,
            ncells,
            class,
            free_head: base_va,
            free_cells: ncells,
        });
        self.class_avail[class].push(bidx);
        self.stats.blocks_created += 1;
        Ok(())
    }

    fn alloc_los(
        &mut self,
        nrefs: u32,
        scalars: u32,
        is_array: bool,
        needed: u64,
    ) -> Result<ObjRef, AllocError> {
        let spaces = self.cfg.spaces;
        let pages = needed.div_ceil(PAGE_SIZE);
        if self.los_next_va + pages * PAGE_SIZE > spaces.los_base + spaces.los_size {
            return Err(AllocError::OutOfMemory);
        }
        let base = self.los_next_va;
        self.los_next_va += pages * PAGE_SIZE;
        self.ensure_mapped(base, pages * PAGE_SIZE);
        let obj = self.format_object(base, nrefs, scalars, is_array);
        self.los_objects.push(LosObject { obj, pages });
        self.stats.los_objects += 1;
        Ok(obj)
    }

    /// Writes a fresh object image into the cell at `cell` and returns
    /// its reference.
    fn format_object(&mut self, cell: u64, nrefs: u32, scalars: u32, is_array: bool) -> ObjRef {
        match self.cfg.layout {
            LayoutKind::Bidirectional => {
                self.write_va(cell, encode_live_cell_start(nrefs, is_array));
                let header = bidi::header_of_cell(cell, nrefs);
                let obj = ObjRef::new(header);
                for i in 0..nrefs {
                    self.write_va(bidi::ref_slot(obj, i), 0);
                }
                self.write_va(header, Header::new_object(nrefs, is_array).raw());
                for i in 0..scalars {
                    self.write_va(bidi::scalar_slot(obj, i), 0);
                }
                obj
            }
            LayoutKind::Conventional => {
                // The cell-start word is still needed for linear sweeps;
                // the conventional layout's cost shows up in *tracing*.
                let fields = nrefs + scalars;
                self.write_va(cell, encode_live_cell_start(nrefs, is_array));
                let header = conv::header_of_cell(cell);
                let obj = ObjRef::new(header);
                self.write_va(header, Header::new_object(nrefs, is_array).raw());
                let tib = self.tib_for(nrefs, fields, is_array);
                self.write_va(conv::tib_slot(obj), tib);
                for i in 0..fields {
                    self.write_va(conv::field_slot(obj, i), 0);
                }
                obj
            }
        }
    }

    /// Allocates (or reuses) a TIB describing an object shape:
    /// `[nrefs][off_0]..[off_{n-1}]` in the immortal space. Reference
    /// fields are interspersed (every other field slot) as in real
    /// class layouts.
    fn tib_for(&mut self, nrefs: u32, fields: u32, is_array: bool) -> u64 {
        if let Some(&tib) = self.tib_cache.get(&(nrefs, fields, is_array)) {
            return tib;
        }
        let words = 1 + nrefs as u64;
        let tib = self.immortal_next_va;
        self.immortal_next_va += words * WORD;
        assert!(
            self.immortal_next_va <= self.cfg.spaces.immortal_base + self.cfg.spaces.immortal_size,
            "immortal space exhausted"
        );
        self.ensure_mapped(tib, words * WORD);
        self.write_va(tib, nrefs as u64);
        for i in 0..nrefs {
            let offset = Self::conv_ref_offset(i, nrefs, fields);
            self.write_va(tib + (1 + i as u64) * WORD, offset as u64);
        }
        self.tib_cache.insert((nrefs, fields, is_array), tib);
        tib
    }

    /// Field offset of reference `i` in a conventional object: spread the
    /// references across the field area to model interspersed layouts.
    fn conv_ref_offset(i: u32, nrefs: u32, fields: u32) -> u32 {
        if nrefs == 0 {
            return 0;
        }
        if fields >= 2 * nrefs {
            2 * i // every other slot
        } else {
            i // not enough room to intersperse
        }
    }

    // ------------------------------------------------------------------
    // Object access
    // ------------------------------------------------------------------

    /// Reads and decodes an object's header.
    pub fn header(&self, obj: ObjRef) -> Header {
        Header::from_raw(self.read_va(obj.addr()))
    }

    /// Number of reference slots of `obj`.
    pub fn nrefs(&self, obj: ObjRef) -> u32 {
        self.header(obj).nrefs()
    }

    /// Virtual address of reference slot `i` under the active layout.
    pub fn ref_slot_va(&self, obj: ObjRef, i: u32) -> u64 {
        match self.cfg.layout {
            LayoutKind::Bidirectional => bidi::ref_slot(obj, i),
            LayoutKind::Conventional => {
                let tib = self.read_va(conv::tib_slot(obj));
                let offset = self.read_va(tib + (1 + i as u64) * WORD) as u32;
                conv::field_slot(obj, offset)
            }
        }
    }

    /// Stores `target` (or null) into reference slot `i` of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_ref(&mut self, obj: ObjRef, i: u32, target: Option<ObjRef>) {
        assert!(i < self.nrefs(obj), "reference index out of range");
        let va = self.ref_slot_va(obj, i);
        self.write_va(va, target.map_or(0, ObjRef::addr));
    }

    /// Loads reference slot `i` of `obj`.
    pub fn get_ref(&self, obj: ObjRef, i: u32) -> Option<ObjRef> {
        let va = self.ref_slot_va(obj, i);
        let raw = self.read_va(va);
        (raw != 0).then(|| ObjRef::new(raw))
    }

    /// All non-null outgoing references of `obj`.
    pub fn refs_of(&self, obj: ObjRef) -> Vec<ObjRef> {
        let n = self.nrefs(obj);
        (0..n).filter_map(|i| self.get_ref(obj, i)).collect()
    }

    /// Whether `obj`'s mark bit is set.
    pub fn is_marked(&self, obj: ObjRef) -> bool {
        self.header(obj).is_marked()
    }

    /// Functionally marks `obj` (used by oracles and tests; timed agents
    /// go through [`PhysMem::fetch_or_u64`] themselves).
    pub fn mark(&mut self, obj: ObjRef) -> bool {
        let pa = self.va_to_pa(obj.addr());
        let old = self.phys.fetch_or_u64(pa, HEADER_MARK_BIT);
        Header::from_raw(old).is_marked()
    }

    // ------------------------------------------------------------------
    // Roots
    // ------------------------------------------------------------------

    /// Publishes the root set into the hwgc space: `[count][ref_0]..`,
    /// the region the unit's reader consumes (§IV-C, §V-A).
    pub fn set_roots(&mut self, roots: &[ObjRef]) {
        let spaces = self.cfg.spaces;
        let bytes = (1 + roots.len() as u64) * WORD;
        assert!(
            bytes <= spaces.hwgc_size,
            "too many roots for the hwgc space"
        );
        self.ensure_mapped(spaces.hwgc_base, bytes);
        self.write_va(spaces.hwgc_base, roots.len() as u64);
        for (i, r) in roots.iter().enumerate() {
            self.write_va(spaces.hwgc_base + (1 + i as u64) * WORD, r.addr());
        }
        self.roots = roots.to_vec();
    }

    // ------------------------------------------------------------------
    // Traversal & sweep support
    // ------------------------------------------------------------------

    /// The reachability oracle: a plain BFS over the object graph from
    /// the roots, ignoring mark bits. Every timed collector's mark set is
    /// compared against this.
    pub fn reachable_from_roots(&self) -> BTreeSet<ObjRef> {
        let mut seen: BTreeSet<ObjRef> = BTreeSet::new();
        let mut frontier: VecDeque<ObjRef> = self.roots.iter().copied().collect();
        while let Some(obj) = frontier.pop_front() {
            if !seen.insert(obj) {
                continue;
            }
            for r in self.refs_of(obj) {
                if !seen.contains(&r) {
                    frontier.push_back(r);
                }
            }
        }
        seen
    }

    /// The set of objects whose mark bit is currently set (linear scan of
    /// all blocks plus the LOS).
    pub fn marked_set(&self) -> BTreeSet<ObjRef> {
        let mut out = BTreeSet::new();
        for obj in self.iter_objects() {
            if self.is_marked(obj) {
                out.insert(obj);
            }
        }
        out
    }

    /// Iterates over every live-cell object in the mark-sweep space and
    /// the LOS, in address order — exactly what a linear sweep sees.
    pub fn iter_objects(&self) -> Vec<ObjRef> {
        let mut out = Vec::new();
        for block in &self.blocks {
            for i in 0..block.ncells {
                let cell = block.base_va + i * block.cell_bytes;
                if let CellStart::Live { nrefs, .. } = decode_cell_start(self.read_va(cell)) {
                    let header = match self.cfg.layout {
                        LayoutKind::Bidirectional => bidi::header_of_cell(cell, nrefs),
                        LayoutKind::Conventional => conv::header_of_cell(cell),
                    };
                    out.push(ObjRef::new(header));
                }
            }
        }
        out.extend(self.los_objects.iter().map(|l| l.obj));
        out
    }

    /// Clears every mark bit (start of a GC pass).
    pub fn clear_marks(&mut self) {
        for obj in self.iter_objects() {
            let h = self.header(obj).without_mark();
            self.write_va(obj.addr(), h.raw());
        }
    }

    /// Updates a block's free-list metadata after a sweep agent rebuilt
    /// the in-memory list.
    ///
    /// # Panics
    ///
    /// Panics if `bidx` is out of range.
    pub fn set_block_free_list(&mut self, bidx: usize, free_head: u64, free_cells: u64) {
        let block = &mut self.blocks[bidx];
        block.free_head = free_head;
        block.free_cells = free_cells;
    }

    /// Recomputes the allocator's per-class available-block stacks after
    /// a sweep.
    pub fn finish_sweep(&mut self) {
        for stack in &mut self.class_avail {
            stack.clear();
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.free_cells > 0 {
                self.class_avail[b.class].push(i);
            }
        }
    }

    /// Total free cells across all blocks (consistency checks).
    pub fn total_free_cells(&self) -> u64 {
        self.blocks.iter().map(|b| b.free_cells).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_heap() -> Heap {
        Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        })
    }

    #[test]
    fn alloc_and_read_back() {
        let mut h = small_heap();
        let obj = h.alloc(2, 3, false).unwrap();
        assert_eq!(h.nrefs(obj), 2);
        assert!(!h.is_marked(obj));
        assert!(h.header(obj).is_live());
        assert_eq!(h.refs_of(obj), vec![]);
    }

    #[test]
    fn set_and_get_refs() {
        let mut h = small_heap();
        let a = h.alloc(2, 0, false).unwrap();
        let b = h.alloc(0, 1, false).unwrap();
        h.set_ref(a, 1, Some(b));
        assert_eq!(h.get_ref(a, 0), None);
        assert_eq!(h.get_ref(a, 1), Some(b));
        assert_eq!(h.refs_of(a), vec![b]);
        h.set_ref(a, 1, None);
        assert_eq!(h.refs_of(a), vec![]);
    }

    #[test]
    fn objects_get_distinct_cells() {
        let mut h = small_heap();
        let mut addrs = BTreeSet::new();
        for _ in 0..1000 {
            let o = h.alloc(1, 1, false).unwrap();
            assert!(addrs.insert(o.addr()), "cell reused while live");
        }
    }

    #[test]
    fn large_object_goes_to_los() {
        let mut h = small_heap();
        let big = h.alloc(2000, 0, true).unwrap();
        assert!(h.spaces().in_los(big.addr()));
        assert_eq!(h.los_objects().len(), 1);
        assert_eq!(h.nrefs(big), 2000);
        assert!(h.header(big).is_array());
    }

    #[test]
    fn reachability_oracle_follows_graph() {
        let mut h = small_heap();
        let a = h.alloc(1, 0, false).unwrap();
        let b = h.alloc(1, 0, false).unwrap();
        let c = h.alloc(0, 0, false).unwrap();
        let dead = h.alloc(1, 0, false).unwrap();
        h.set_ref(a, 0, Some(b));
        h.set_ref(b, 0, Some(c));
        h.set_ref(dead, 0, Some(c));
        h.set_roots(&[a]);
        let live = h.reachable_from_roots();
        assert!(live.contains(&a) && live.contains(&b) && live.contains(&c));
        assert!(!live.contains(&dead));
    }

    #[test]
    fn cycles_do_not_hang_the_oracle() {
        let mut h = small_heap();
        let a = h.alloc(1, 0, false).unwrap();
        let b = h.alloc(1, 0, false).unwrap();
        h.set_ref(a, 0, Some(b));
        h.set_ref(b, 0, Some(a));
        h.set_roots(&[a]);
        assert_eq!(h.reachable_from_roots().len(), 2);
    }

    #[test]
    fn mark_returns_previous_state() {
        let mut h = small_heap();
        let a = h.alloc(0, 0, false).unwrap();
        assert!(!h.mark(a));
        assert!(h.mark(a));
        assert!(h.is_marked(a));
    }

    #[test]
    fn clear_marks_resets() {
        let mut h = small_heap();
        let a = h.alloc(0, 0, false).unwrap();
        h.mark(a);
        h.clear_marks();
        assert!(!h.is_marked(a));
        // nrefs survives mark churn.
        assert_eq!(h.nrefs(a), 0);
    }

    #[test]
    fn roots_are_visible_in_hwgc_space() {
        let mut h = small_heap();
        let a = h.alloc(0, 0, false).unwrap();
        let b = h.alloc(0, 0, false).unwrap();
        h.set_roots(&[a, b]);
        let base = h.spaces().hwgc_base;
        assert_eq!(h.read_va(base), 2);
        assert_eq!(h.read_va(base + 8), a.addr());
        assert_eq!(h.read_va(base + 16), b.addr());
    }

    #[test]
    fn iter_objects_sees_all_allocations() {
        let mut h = small_heap();
        let mut allocated = BTreeSet::new();
        for i in 0..200u32 {
            allocated.insert(h.alloc(i % 5, i % 7, false).unwrap());
        }
        let seen: BTreeSet<ObjRef> = h.iter_objects().into_iter().collect();
        assert_eq!(seen, allocated);
    }

    #[test]
    fn free_list_counts_stay_consistent() {
        let mut h = small_heap();
        let before = h.total_free_cells();
        let _ = h.alloc(1, 1, false).unwrap();
        // One block was created lazily; one cell consumed.
        assert!(h.total_free_cells() > 0);
        assert_eq!(h.blocks().len(), 1);
        let after_one = h.total_free_cells();
        let _ = h.alloc(1, 1, false).unwrap();
        assert_eq!(h.total_free_cells(), after_one - 1);
        assert!(before == 0);
    }

    #[test]
    fn conventional_layout_roundtrips_refs() {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            layout: LayoutKind::Conventional,
            ..HeapConfig::default()
        });
        let a = h.alloc(3, 3, false).unwrap();
        let b = h.alloc(0, 0, false).unwrap();
        h.set_ref(a, 0, Some(b));
        h.set_ref(a, 2, Some(a));
        assert_eq!(h.refs_of(a), vec![b, a]);
        // TIBs are shared across same-shape objects.
        let c = h.alloc(3, 3, false).unwrap();
        let tib_a = h.read_va(conv::tib_slot(a));
        let tib_c = h.read_va(conv::tib_slot(c));
        assert_eq!(tib_a, tib_c);
        assert!(h.spaces().in_immortal(tib_a));
    }

    #[test]
    fn conventional_oracle_matches_bidirectional() {
        // The same graph built under both layouts yields the same
        // reachable count.
        let build = |layout| {
            let mut h = Heap::new(HeapConfig {
                phys_bytes: 64 << 20,
                layout,
                ..HeapConfig::default()
            });
            let objs: Vec<ObjRef> = (0..50).map(|i| h.alloc(2, i % 4, false).unwrap()).collect();
            for i in 0..40usize {
                h.set_ref(objs[i], 0, Some(objs[i + 1]));
                h.set_ref(objs[i], 1, Some(objs[(i * 7) % 41]));
            }
            h.set_roots(&[objs[0]]);
            h.reachable_from_roots().len()
        };
        assert_eq!(
            build(LayoutKind::Bidirectional),
            build(LayoutKind::Conventional)
        );
    }

    #[test]
    fn out_of_memory_is_an_error() {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 16 << 20,
            spaces: SpaceMap {
                ms_size: 64 * 1024, // one block only
                ..SpaceMap::default()
            },
            ..HeapConfig::default()
        });
        let mut got_oom = false;
        for _ in 0..10_000 {
            if h.alloc(0, 1000, false).is_err() {
                got_oom = true;
                break;
            }
        }
        assert!(got_oom);
    }

    #[test]
    fn phys_region_allocation_is_contiguous() {
        let mut h = small_heap();
        let base = h.alloc_phys_region(4 << 20);
        // Writable across the whole region.
        h.phys.write_u64(base, 1);
        h.phys.write_u64(base + (4 << 20) - 8, 2);
        assert_eq!(h.phys.read_u64(base), 1);
    }
}

#[cfg(test)]
mod superpage_tests {
    use super::*;
    use crate::verify::{check_free_lists, software_mark, software_sweep};

    fn super_heap() -> Heap {
        Heap::new(HeapConfig {
            phys_bytes: 128 << 20,
            superpages: true,
            ..HeapConfig::default()
        })
    }

    #[test]
    fn superpage_heap_allocates_and_collects() {
        let mut h = super_heap();
        let objs: Vec<ObjRef> = (0..2000)
            .map(|i| h.alloc(2, (i % 5) as u32, false).unwrap())
            .collect();
        for i in 0..1000usize {
            h.set_ref(objs[i], 0, Some(objs[(i + 1) % 1000]));
        }
        h.set_roots(&[objs[0]]);
        let marked = software_mark(&mut h);
        assert_eq!(marked.len(), 1000);
        software_sweep(&mut h);
        check_free_lists(&h).unwrap();
    }

    #[test]
    fn superpage_mappings_report_two_mib_entries() {
        let mut h = super_heap();
        let obj = h.alloc(1, 1, false).unwrap();
        let (pa, page_bytes) = h
            .address_space()
            .translate_entry(&h.phys, obj.addr())
            .expect("mapped");
        assert_eq!(page_bytes, 2 << 20);
        assert_eq!(h.va_to_pa(obj.addr()), pa);
    }

    #[test]
    fn superpage_and_4k_heaps_hold_identical_contents() {
        let build = |superpages| {
            let mut h = Heap::new(HeapConfig {
                phys_bytes: 128 << 20,
                superpages,
                ..HeapConfig::default()
            });
            let objs: Vec<ObjRef> = (0..500).map(|_| h.alloc(1, 2, false).unwrap()).collect();
            for w in objs.windows(2) {
                h.set_ref(w[0], 0, Some(w[1]));
            }
            h.set_roots(&[objs[0]]);
            h.reachable_from_roots().len()
        };
        assert_eq!(build(false), build(true));
    }
}
