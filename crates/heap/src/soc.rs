//! The concrete SoC context handed to scheduled engines: one shared
//! memory system plus the heaps under collection.
//!
//! `tracegc-sim`'s [`Scheduler`](tracegc_sim::sched::Scheduler) is
//! generic over the context type passed to every
//! [`Engine::step`](tracegc_sim::sched::Engine::step); [`SocCtx`] is the
//! instantiation every hardware/CPU engine in this workspace uses. The
//! fields are public so an engine can split the borrow — its own heap
//! mutably alongside the shared memory controller — without fighting the
//! borrow checker:
//!
//! ```ignore
//! let SocCtx { mem, heaps, .. } = ctx;
//! self.unit.step(now, &mut *heaps[self.heap_idx], mem)
//! ```

use tracegc_mem::MemSystem;

use crate::Heap;

/// Shared state for one scheduled SoC run: the single memory controller
/// every engine contends on, the heaps (one per process/unit), and a
/// per-heap reference mailbox for engine-to-engine communication (a
/// mutator engine publishes write-barrier references here; the heap's
/// collector engine drains them into its mark queue at the same cycle).
#[derive(Debug)]
pub struct SocCtx<'a> {
    /// The shared memory system (single DDR3 controller in the paper).
    pub mem: &'a mut MemSystem,
    /// The heaps being collected, indexed by engine `heap_idx`.
    pub heaps: Vec<&'a mut Heap>,
    /// Per-heap mailboxes of barrier-published references (virtual
    /// addresses), drained by that heap's collector engine.
    pub mailboxes: Vec<Vec<u64>>,
}

impl<'a> SocCtx<'a> {
    /// A context over `heaps` sharing `mem`.
    pub fn new(mem: &'a mut MemSystem, heaps: Vec<&'a mut Heap>) -> Self {
        let mailboxes = heaps.iter().map(|_| Vec::new()).collect();
        Self {
            mem,
            heaps,
            mailboxes,
        }
    }

    /// The common single-heap case.
    pub fn single(mem: &'a mut MemSystem, heap: &'a mut Heap) -> Self {
        Self::new(mem, vec![heap])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeapConfig;

    #[test]
    fn single_builds_one_heap_one_mailbox() {
        let mut heap = Heap::new(HeapConfig::default());
        let mut mem = MemSystem::ddr3(Default::default());
        let ctx = SocCtx::single(&mut mem, &mut heap);
        assert_eq!(ctx.heaps.len(), 1);
        assert_eq!(ctx.mailboxes.len(), 1);
        assert!(ctx.mailboxes[0].is_empty());
    }

    #[test]
    fn mailboxes_match_heap_count() {
        let mut a = Heap::new(HeapConfig::default());
        let mut b = Heap::new(HeapConfig::default());
        let mut mem = MemSystem::ddr3(Default::default());
        let ctx = SocCtx::new(&mut mem, vec![&mut a, &mut b]);
        assert_eq!(ctx.heaps.len(), 2);
        assert_eq!(ctx.mailboxes.len(), 2);
    }
}
