//! A compact interval set over page numbers.
//!
//! The heap maps virtual pages in long monotone runs — each space grows
//! by bump allocation, so consecutive `ensure_mapped` calls extend the
//! same interval. A sorted run list therefore stays O(#spaces) entries
//! for multi-GB heaps where a per-page `HashSet<u64>` would cost tens of
//! bytes per 4 KiB page and hash on every access.

/// Sorted, disjoint, non-adjacent half-open runs `[start, end)` of page
/// numbers.
///
/// # Examples
///
/// ```
/// use tracegc_heap::pageset::PageSet;
///
/// let mut set = PageSet::new();
/// assert!(set.insert(7));
/// assert!(!set.insert(7));
/// set.insert_range(8, 12);
/// assert!(set.contains(11));
/// assert_eq!(set.run_count(), 1); // [7, 12) merged
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageSet {
    runs: Vec<(u64, u64)>,
}

impl PageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the run containing `page`, or where one would go.
    fn locate(&self, page: u64) -> Result<usize, usize> {
        self.runs.binary_search_by(|&(start, end)| {
            if page < start {
                std::cmp::Ordering::Greater
            } else if page >= end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
    }

    /// Whether `page` is in the set.
    pub fn contains(&self, page: u64) -> bool {
        self.locate(page).is_ok()
    }

    /// Inserts a single page; returns `true` if it was newly added.
    pub fn insert(&mut self, page: u64) -> bool {
        match self.locate(page) {
            Ok(_) => false,
            Err(_) => {
                self.insert_range(page, page + 1);
                true
            }
        }
    }

    /// Inserts every page in `[start, end)`, merging with any runs the
    /// range touches or abuts.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn insert_range(&mut self, start: u64, end: u64) {
        assert!(start <= end, "inverted range");
        if start == end {
            return;
        }
        // First run that could merge (ends at or after `start`) …
        let lo = self.runs.partition_point(|&(_, e)| e < start);
        // … and one past the last run that could merge (starts at or
        // before `end`).
        let hi = self.runs.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.runs.insert(lo, (start, end));
            return;
        }
        let merged = (self.runs[lo].0.min(start), self.runs[hi - 1].1.max(end));
        self.runs.splice(lo..hi, [merged]);
    }

    /// Number of pages in the set.
    pub fn page_count(&self) -> u64 {
        self.runs.iter().map(|&(s, e)| e - s).sum()
    }

    /// Number of maximal runs — the set's actual host footprint is
    /// 16 bytes per run.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut set = PageSet::new();
        assert!(!set.contains(5));
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.contains(5));
        assert!(!set.contains(4));
        assert!(!set.contains(6));
    }

    #[test]
    fn adjacent_inserts_merge_into_one_run() {
        let mut set = PageSet::new();
        for p in 0..1000 {
            assert!(set.insert(p));
        }
        assert_eq!(set.run_count(), 1);
        assert_eq!(set.page_count(), 1000);
    }

    #[test]
    fn range_bridges_existing_runs() {
        let mut set = PageSet::new();
        set.insert(0);
        set.insert(10);
        assert_eq!(set.run_count(), 2);
        set.insert_range(1, 10);
        assert_eq!(set.run_count(), 1);
        assert_eq!(set.page_count(), 11);
    }

    #[test]
    fn disjoint_runs_stay_separate() {
        let mut set = PageSet::new();
        set.insert_range(100, 200);
        set.insert_range(300, 400);
        assert_eq!(set.run_count(), 2);
        assert!(set.contains(150));
        assert!(!set.contains(250));
        assert!(set.contains(399));
        assert!(!set.contains(400));
    }

    #[test]
    fn range_overlapping_several_runs_collapses() {
        let mut set = PageSet::new();
        set.insert_range(0, 10);
        set.insert_range(20, 30);
        set.insert_range(40, 50);
        set.insert_range(5, 45);
        assert_eq!(set.run_count(), 1);
        assert_eq!(set.page_count(), 50);
    }

    #[test]
    fn empty_range_is_noop() {
        let mut set = PageSet::new();
        set.insert_range(10, 10);
        assert_eq!(set.run_count(), 0);
    }

    #[test]
    fn matches_a_reference_hashset_on_random_ops() {
        use std::collections::HashSet;
        // Tiny deterministic LCG; no external RNG in this crate.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut set = PageSet::new();
        let mut reference = HashSet::new();
        for _ in 0..4000 {
            match next() % 3 {
                0 => {
                    let p = next() % 256;
                    assert_eq!(set.insert(p), reference.insert(p));
                }
                1 => {
                    let s = next() % 256;
                    let e = s + next() % 32;
                    set.insert_range(s, e);
                    reference.extend(s..e);
                }
                _ => {
                    let p = next() % 300;
                    assert_eq!(set.contains(p), reference.contains(&p), "page {p}");
                }
            }
        }
        assert_eq!(set.page_count(), reference.len() as u64);
    }
}
