//! The virtual address-space map of the simulated JVM process.
//!
//! JikesRVM's MarkSweep plan consists of nine spaces (§V-A); the GC unit
//! traces all of them but only reclaims the main mark-sweep space. We
//! model the four that matter to the accelerator:
//!
//! * the **immortal space** (type-information blocks, VM structures) —
//!   traced, never reclaimed;
//! * the **mark-sweep space** — segregated-free-list blocks, reclaimed by
//!   the reclamation unit;
//! * the **large-object space** — page-granular allocations, traced but
//!   managed by the runtime;
//! * the **hwgc space** — the root-communication region the runtime
//!   writes root references into and the unit's reader consumes (§IV-C).

/// Fixed layout of the simulated process's virtual address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceMap {
    /// Base of the immortal space (TIBs, VM structs).
    pub immortal_base: u64,
    /// Size of the immortal space in bytes.
    pub immortal_size: u64,
    /// Base of the hwgc root-communication space.
    pub hwgc_base: u64,
    /// Size of the hwgc space in bytes.
    pub hwgc_size: u64,
    /// Base of the main mark-sweep space.
    pub ms_base: u64,
    /// Maximum size of the mark-sweep space in bytes.
    pub ms_size: u64,
    /// Base of the large-object space.
    pub los_base: u64,
    /// Maximum size of the large-object space in bytes.
    pub los_size: u64,
}

impl Default for SpaceMap {
    fn default() -> Self {
        Self {
            immortal_base: 0x2000_0000,
            immortal_size: 16 << 20,
            hwgc_base: 0x3000_0000,
            hwgc_size: 4 << 20,
            ms_base: 0x4000_0000,
            ms_size: 512 << 20,
            los_base: 0x8000_0000,
            los_size: 128 << 20,
        }
    }
}

impl SpaceMap {
    /// A space map whose mark-sweep and large-object spaces hold at
    /// least `ms_size` and `los_size` bytes. The default map caps the
    /// mark-sweep space at 512 MB because the LOS base sits at
    /// `0x8000_0000`; paper-scale and server-scale heaps need more, so
    /// this pushes the LOS up past the enlarged mark-sweep space
    /// (superpage-aligned so either mapping granularity works).
    pub fn with_heap_capacity(ms_size: u64, los_size: u64) -> Self {
        let d = Self::default();
        let ms_size = ms_size.max(d.ms_size).next_multiple_of(2 << 20);
        let los_size = los_size.max(d.los_size).next_multiple_of(2 << 20);
        Self {
            ms_size,
            los_base: (d.ms_base + ms_size).next_multiple_of(2 << 20),
            los_size,
            ..d
        }
    }

    /// Whether `va` lies in the mark-sweep space (the only space the
    /// reclamation unit sweeps).
    pub fn in_mark_sweep(&self, va: u64) -> bool {
        (self.ms_base..self.ms_base + self.ms_size).contains(&va)
    }

    /// Whether `va` lies in the large-object space.
    pub fn in_los(&self, va: u64) -> bool {
        (self.los_base..self.los_base + self.los_size).contains(&va)
    }

    /// Whether `va` lies in the immortal space.
    pub fn in_immortal(&self, va: u64) -> bool {
        (self.immortal_base..self.immortal_base + self.immortal_size).contains(&va)
    }

    /// Whether `va` lies in any traced space (a sanity check for
    /// references popped off the mark queue).
    pub fn in_traced_space(&self, va: u64) -> bool {
        self.in_mark_sweep(va) || self.in_los(va) || self.in_immortal(va)
    }

    /// Whether `va` lies in the root-communication space.
    pub fn in_hwgc(&self, va: u64) -> bool {
        (self.hwgc_base..self.hwgc_base + self.hwgc_size).contains(&va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spaces_do_not_overlap() {
        let m = SpaceMap::default();
        let ranges = [
            (m.immortal_base, m.immortal_size),
            (m.hwgc_base, m.hwgc_size),
            (m.ms_base, m.ms_size),
            (m.los_base, m.los_size),
        ];
        for (i, &(b1, s1)) in ranges.iter().enumerate() {
            for &(b2, s2) in &ranges[i + 1..] {
                assert!(b1 + s1 <= b2 || b2 + s2 <= b1, "spaces overlap");
            }
        }
    }

    #[test]
    fn sized_spaces_do_not_overlap_and_cover_the_request() {
        for (ms, los) in [
            (0, 0),
            (512 << 20, 128 << 20),
            (2 << 30, 256 << 20),
            ((6u64 << 30) + 4096, 1 << 30),
        ] {
            let m = SpaceMap::with_heap_capacity(ms, los);
            assert!(m.ms_size >= ms && m.los_size >= los);
            assert!(m.ms_size.is_multiple_of(2 << 20));
            assert!(m.los_base.is_multiple_of(2 << 20));
            let ranges = [
                (m.immortal_base, m.immortal_size),
                (m.hwgc_base, m.hwgc_size),
                (m.ms_base, m.ms_size),
                (m.los_base, m.los_size),
            ];
            for (i, &(b1, s1)) in ranges.iter().enumerate() {
                for &(b2, s2) in &ranges[i + 1..] {
                    assert!(b1 + s1 <= b2 || b2 + s2 <= b1, "spaces overlap");
                }
            }
        }
    }

    #[test]
    fn membership_tests() {
        let m = SpaceMap::default();
        assert!(m.in_mark_sweep(m.ms_base));
        assert!(m.in_mark_sweep(m.ms_base + m.ms_size - 8));
        assert!(!m.in_mark_sweep(m.ms_base + m.ms_size));
        assert!(m.in_los(m.los_base + 100));
        assert!(m.in_immortal(m.immortal_base));
        assert!(m.in_hwgc(m.hwgc_base + 8));
        assert!(m.in_traced_space(m.ms_base));
        assert!(m.in_traced_space(m.los_base));
        assert!(!m.in_traced_space(m.hwgc_base));
        assert!(!m.in_traced_space(0));
    }
}
