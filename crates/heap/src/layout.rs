//! Object layout: header encoding, cell-start words and geometry helpers.
//!
//! The paper found 34 unused bits in JikesRVM's status word and packs into
//! them a 32-bit reference count (MSB set for arrays), a mark bit and a
//! live-cell tag bit (§V-A, Fig. 11). The same count is replicated in the
//! first word of the cell so the sweeper can scan blocks linearly without
//! knowing object types.

/// Bytes per machine word; the heap is entirely word-granular.
pub const WORD: u64 = 8;

/// Which object layout the heap uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutKind {
    /// The paper's bidirectional layout (Fig. 6b): reference fields at
    /// negative offsets from the header, scalars at positive offsets.
    /// One header read yields the mark bit *and* the reference count.
    #[default]
    Bidirectional,
    /// The conventional TIB layout (Fig. 6a): the header points to a
    /// type-information block listing reference-field offsets, costing
    /// two extra memory accesses per object on a cacheless client.
    Conventional,
}

/// A reference to a heap object: the virtual address of its header word.
///
/// # Examples
///
/// ```
/// use tracegc_heap::ObjRef;
///
/// let r = ObjRef::new(0x4000_0010);
/// assert_eq!(r.addr(), 0x4000_0010);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef(u64);

impl ObjRef {
    /// Wraps a header virtual address.
    ///
    /// # Panics
    ///
    /// Panics if the address is not word-aligned or is null.
    pub fn new(addr: u64) -> Self {
        assert!(addr != 0, "null object reference");
        assert!(
            addr.is_multiple_of(WORD),
            "unaligned object reference {addr:#x}"
        );
        Self(addr)
    }

    /// The header's virtual address.
    pub fn addr(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ObjRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj@{:#x}", self.0)
    }
}

const TAG_BIT: u64 = 1 << 0;
const MARK_BIT: u64 = 1 << 1;
const NREFS_SHIFT: u32 = 2;
const NREFS_MASK: u64 = 0xFFFF_FFFF;
const ARRAY_FLAG: u32 = 1 << 31;

/// Maximum representable reference count (31 bits; bit 31 is the array
/// flag, per §V-A).
pub const MAX_NREFS: u32 = (1 << 31) - 1;

/// The bit the marker ORs into the header — the single-AMO mark
/// operation of §IV-A.II.
pub const HEADER_MARK_BIT: u64 = MARK_BIT;

/// A decoded object header word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header(u64);

impl Header {
    /// Builds a fresh (unmarked) object header.
    ///
    /// # Panics
    ///
    /// Panics if `nrefs` exceeds [`MAX_NREFS`].
    pub fn new_object(nrefs: u32, is_array: bool) -> Self {
        assert!(nrefs <= MAX_NREFS, "too many references: {nrefs}");
        let field = nrefs | if is_array { ARRAY_FLAG } else { 0 };
        Self(((field as u64) << NREFS_SHIFT) | TAG_BIT)
    }

    /// Reinterprets a raw header word.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit encoding stored in memory.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Tag bit: 1 for all live cells (§V-A — "useful for the reclamation
    /// unit").
    pub fn is_live(self) -> bool {
        self.0 & TAG_BIT != 0
    }

    /// Whether the mark bit is set.
    pub fn is_marked(self) -> bool {
        self.0 & MARK_BIT != 0
    }

    /// This header with the mark bit set.
    pub fn with_mark(self) -> Self {
        Self(self.0 | MARK_BIT)
    }

    /// This header with the mark bit cleared (done during sweep).
    pub fn without_mark(self) -> Self {
        Self(self.0 & !MARK_BIT)
    }

    /// Number of outgoing references.
    pub fn nrefs(self) -> u32 {
        (((self.0 >> NREFS_SHIFT) & NREFS_MASK) as u32) & !ARRAY_FLAG
    }

    /// Whether the MSB of the reference-count field marks this as an
    /// array (§V-A).
    pub fn is_array(self) -> bool {
        (((self.0 >> NREFS_SHIFT) & NREFS_MASK) as u32) & ARRAY_FLAG != 0
    }
}

/// The decoded first word of a cell, as seen by the block sweeper
/// (Fig. 11): live cells replicate the reference count with a `0b101`
/// tag pattern; free cells hold the next free-list pointer (low bits
/// zero because pointers are 8-byte aligned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStart {
    /// The cell holds a (possibly dead) object.
    Live {
        /// Replicated reference count.
        nrefs: u32,
        /// Replicated array flag.
        is_array: bool,
    },
    /// The cell is on a free list; `next` is the address of the next free
    /// cell or 0 at the end of the list.
    Free {
        /// Next free cell (cell-start VA), 0 when last.
        next: u64,
    },
}

const CELL_LIVE_PATTERN: u64 = 0b101;
const CELL_NREFS_SHIFT: u32 = 3;
const CELL_ARRAY_BIT: u64 = 1 << 35;

/// Encodes the cell-start word for a live object cell.
///
/// # Panics
///
/// Panics if `nrefs` exceeds [`MAX_NREFS`].
pub fn encode_live_cell_start(nrefs: u32, is_array: bool) -> u64 {
    assert!(nrefs <= MAX_NREFS);
    ((nrefs as u64) << CELL_NREFS_SHIFT)
        | if is_array { CELL_ARRAY_BIT } else { 0 }
        | CELL_LIVE_PATTERN
}

/// Encodes the cell-start word for a free cell.
///
/// # Panics
///
/// Panics if `next` is not 8-byte aligned (its low bits distinguish free
/// from live cells).
pub fn encode_free_cell_start(next: u64) -> u64 {
    assert!(
        next.is_multiple_of(WORD),
        "free-list pointer must be aligned"
    );
    next
}

/// Decodes a cell-start word.
pub fn decode_cell_start(raw: u64) -> CellStart {
    if raw & 1 == 1 {
        CellStart::Live {
            nrefs: ((raw >> CELL_NREFS_SHIFT) & NREFS_MASK) as u32,
            is_array: raw & CELL_ARRAY_BIT != 0,
        }
    } else {
        CellStart::Free { next: raw }
    }
}

/// Geometry of a bidirectional cell:
/// `[cell-start][ref_{n-1} .. ref_0][HEADER][scalar_0 .. scalar_{s-1}]`.
///
/// The object reference points at the header; reference slot `i` lives at
/// `header - WORD * (1 + i)`.
pub mod bidi {
    use super::{ObjRef, WORD};

    /// Total words a cell must hold for an object with `nrefs` references
    /// and `scalars` scalar words (cell-start + refs + header + scalars).
    pub fn cell_words(nrefs: u32, scalars: u32) -> u64 {
        2 + nrefs as u64 + scalars as u64
    }

    /// Header VA given the cell base.
    pub fn header_of_cell(cell_base: u64, nrefs: u32) -> u64 {
        cell_base + WORD * (1 + nrefs as u64)
    }

    /// Cell base given the header VA.
    pub fn cell_of_header(header: u64, nrefs: u32) -> u64 {
        header - WORD * (1 + nrefs as u64)
    }

    /// VA of reference slot `i` (0-based).
    pub fn ref_slot(obj: ObjRef, i: u32) -> u64 {
        obj.addr() - WORD * (1 + i as u64)
    }

    /// VA of the first (lowest-addressed) reference slot — the base the
    /// tracer's request generator starts from.
    pub fn ref_section_base(obj: ObjRef, nrefs: u32) -> u64 {
        obj.addr() - WORD * nrefs as u64
    }

    /// VA of scalar word `i`.
    pub fn scalar_slot(obj: ObjRef, i: u32) -> u64 {
        obj.addr() + WORD * (1 + i as u64)
    }
}

/// Geometry of a conventional (TIB) cell:
/// `[cell-start][HEADER][TIB ptr][field_0 .. field_{k-1}]`.
///
/// Reference fields are interspersed among the fields at the word offsets
/// listed in the type-information block.
pub mod conv {
    use super::{ObjRef, WORD};

    /// Total words a cell must hold (`fields` = refs + scalars).
    pub fn cell_words(fields: u32) -> u64 {
        3 + fields as u64
    }

    /// Header VA given the cell base.
    pub fn header_of_cell(cell_base: u64) -> u64 {
        cell_base + WORD
    }

    /// Cell base given the header VA.
    pub fn cell_of_header(header: u64) -> u64 {
        header - WORD
    }

    /// VA of the TIB pointer word.
    pub fn tib_slot(obj: ObjRef) -> u64 {
        obj.addr() + WORD
    }

    /// VA of field word `offset` (a TIB-listed offset for refs).
    pub fn field_slot(obj: ObjRef, offset: u32) -> u64 {
        obj.addr() + WORD * (2 + offset as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header::new_object(17, false);
        assert!(h.is_live());
        assert!(!h.is_marked());
        assert!(!h.is_array());
        assert_eq!(h.nrefs(), 17);
        let h2 = Header::from_raw(h.raw());
        assert_eq!(h, h2);
    }

    #[test]
    fn array_flag_is_independent_of_count() {
        let h = Header::new_object(1000, true);
        assert!(h.is_array());
        assert_eq!(h.nrefs(), 1000);
    }

    #[test]
    fn marking_preserves_count() {
        let h = Header::new_object(5, false).with_mark();
        assert!(h.is_marked());
        assert_eq!(h.nrefs(), 5);
        let cleared = h.without_mark();
        assert!(!cleared.is_marked());
        assert_eq!(cleared.nrefs(), 5);
    }

    #[test]
    fn mark_via_fetch_or_matches_with_mark() {
        let h = Header::new_object(3, false);
        assert_eq!(h.raw() | HEADER_MARK_BIT, h.with_mark().raw());
    }

    #[test]
    fn max_nrefs_is_accepted() {
        let h = Header::new_object(MAX_NREFS, false);
        assert_eq!(h.nrefs(), MAX_NREFS);
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn overflow_nrefs_panics() {
        let _ = Header::new_object(MAX_NREFS + 1, false);
    }

    #[test]
    fn cell_start_live_roundtrip() {
        let raw = encode_live_cell_start(42, true);
        assert_eq!(
            decode_cell_start(raw),
            CellStart::Live {
                nrefs: 42,
                is_array: true
            }
        );
    }

    #[test]
    fn cell_start_free_roundtrip() {
        let raw = encode_free_cell_start(0x4000_1000);
        assert_eq!(
            decode_cell_start(raw),
            CellStart::Free { next: 0x4000_1000 }
        );
        assert_eq!(decode_cell_start(0), CellStart::Free { next: 0 });
    }

    #[test]
    fn live_and_free_are_distinguished_by_lsb() {
        // Matches the sweeper's test in §V-D: "if the LSB is 1, it is an
        // object with a bidirectional layout".
        assert_eq!(encode_live_cell_start(0, false) & 1, 1);
        assert_eq!(encode_free_cell_start(0x8) & 1, 0);
    }

    #[test]
    fn bidi_geometry_is_consistent() {
        let cell = 0x4000_0000u64;
        let nrefs = 3;
        let header = bidi::header_of_cell(cell, nrefs);
        assert_eq!(header, cell + 8 * 4);
        assert_eq!(bidi::cell_of_header(header, nrefs), cell);
        let obj = ObjRef::new(header);
        assert_eq!(bidi::ref_slot(obj, 0), header - 8);
        assert_eq!(bidi::ref_slot(obj, 2), header - 24);
        assert_eq!(bidi::ref_section_base(obj, nrefs), cell + 8);
        assert_eq!(bidi::scalar_slot(obj, 0), header + 8);
        assert_eq!(bidi::cell_words(3, 2), 7);
    }

    #[test]
    fn conv_geometry_is_consistent() {
        let cell = 0x5000_0000u64;
        let header = conv::header_of_cell(cell);
        assert_eq!(conv::cell_of_header(header), cell);
        let obj = ObjRef::new(header);
        assert_eq!(conv::tib_slot(obj), header + 8);
        assert_eq!(conv::field_slot(obj, 0), header + 16);
        assert_eq!(conv::cell_words(4), 7);
    }

    #[test]
    #[should_panic(expected = "null")]
    fn null_objref_panics() {
        let _ = ObjRef::new(0);
    }

    #[test]
    fn objref_display_is_hex() {
        assert_eq!(ObjRef::new(0x10).to_string(), "obj@0x10");
    }
}
