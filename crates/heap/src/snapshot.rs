//! Heap snapshots: a textual dump/load of the object graph.
//!
//! The paper's `libhwgc` shim had a debugging mode that "performs
//! software checks of the hardware unit (or produces a snapshot of the
//! heap). This approach helped for debugging" (§V-E). This module is
//! that facility: [`dump`] serializes the object graph (shapes, edges,
//! mark bits, roots) to a stable text format, and [`load`] rebuilds an
//! equivalent heap — with fresh addresses but an isomorphic graph — so
//! failing GC runs can be captured, replayed and diffed.
//!
//! # Format
//!
//! ```text
//! tracegc-snapshot v1
//! layout bidirectional
//! object <id> nrefs <n> scalars <s> array <0|1> marked <0|1>
//! ref <obj-id> <slot> <target-id>
//! root <id>
//! ```
//!
//! Object ids are dense indices in dump order, so snapshots diff cleanly.

use std::io;

use crate::heap::{Heap, HeapConfig};
use crate::layout::{bidi, conv, LayoutKind, ObjRef, WORD};

/// A malformed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// 1-based line of the offending input (0 for structural errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapshotError {}

fn err(line: usize, message: impl Into<String>) -> SnapshotError {
    SnapshotError {
        line,
        message: message.into(),
    }
}

/// Scalar words an object's cell provides beyond its references and
/// headers (the requested count is not recoverable, only the capacity).
fn scalar_capacity(heap: &Heap, obj: ObjRef, cell_bytes: u64) -> u32 {
    let nrefs = heap.nrefs(obj) as u64;
    let words = cell_bytes / WORD;
    let used = match heap.layout() {
        LayoutKind::Bidirectional => 2 + nrefs,
        LayoutKind::Conventional => 3 + nrefs,
    };
    words.saturating_sub(used) as u32
}

/// Serializes the heap's object graph through `out`, streaming line by
/// line — the snapshot text is never materialized in memory, so dumping
/// a multi-GB heap to a file costs only the id table (16 bytes per
/// object) on top of the object list.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn dump_to<W: io::Write>(heap: &Heap, out: &mut W) -> io::Result<()> {
    writeln!(out, "tracegc-snapshot v1")?;
    writeln!(
        out,
        "layout {}",
        match heap.layout() {
            LayoutKind::Bidirectional => "bidirectional",
            LayoutKind::Conventional => "conventional",
        }
    )?;
    let objects = heap.iter_objects();
    // Id lookup: a sorted (address, dump-order id) table binary-searched
    // per edge — half the footprint of a HashMap and cache-friendly.
    let mut ids: Vec<(u64, u32)> = objects
        .iter()
        .enumerate()
        .map(|(i, o)| (o.addr(), i as u32))
        .collect();
    ids.sort_unstable();
    let id_of = |obj: ObjRef| -> Option<u32> {
        ids.binary_search_by_key(&obj.addr(), |&(a, _)| a)
            .ok()
            .map(|i| ids[i].1)
    };
    // Block lookup for cell sizes: sorted ranges, binary search per
    // object instead of a linear scan over all blocks.
    let mut block_ranges: Vec<(u64, u64, u64)> = heap
        .blocks()
        .iter()
        .map(|b| (b.base_va, b.base_va + b.ncells * b.cell_bytes, b.cell_bytes))
        .collect();
    block_ranges.sort_unstable();
    let cell_of = |obj: ObjRef| -> u64 {
        let cell_base = match heap.layout() {
            LayoutKind::Bidirectional => bidi::cell_of_header(obj.addr(), heap.nrefs(obj)),
            LayoutKind::Conventional => conv::cell_of_header(obj.addr()),
        };
        let i = block_ranges.partition_point(|&(base, _, _)| base <= cell_base);
        match i.checked_sub(1).map(|i| block_ranges[i]) {
            Some((_, end, cell_bytes)) if cell_base < end => cell_bytes,
            // LOS object: report the minimal capacity.
            _ => (heap.nrefs(obj) as u64 + 2) * WORD,
        }
    };
    for (i, &obj) in objects.iter().enumerate() {
        let h = heap.header(obj);
        writeln!(
            out,
            "object {i} nrefs {} scalars {} array {} marked {}",
            h.nrefs(),
            scalar_capacity(heap, obj, cell_of(obj)),
            u8::from(h.is_array()),
            u8::from(h.is_marked()),
        )?;
    }
    for (i, &obj) in objects.iter().enumerate() {
        for slot in 0..heap.nrefs(obj) {
            if let Some(target) = heap.get_ref(obj, slot) {
                if let Some(tid) = id_of(target) {
                    writeln!(out, "ref {i} {slot} {tid}")?;
                }
            }
        }
    }
    for &root in heap.roots() {
        if let Some(rid) = id_of(root) {
            writeln!(out, "root {rid}")?;
        }
    }
    Ok(())
}

/// Serializes the heap's object graph into one `String`. Convenient for
/// small heaps and diffs; large heaps should [`dump_to`] a file instead.
pub fn dump(heap: &Heap) -> String {
    let mut buf = Vec::new();
    dump_to(heap, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("snapshot text is ASCII")
}

/// Rebuilds a heap from a snapshot. Addresses differ from the original;
/// the object graph, mark bits and roots are isomorphic.
///
/// # Errors
///
/// Returns [`SnapshotError`] on malformed input or dangling ids.
pub fn load(text: &str) -> Result<Heap, SnapshotError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty snapshot"))?;
    if header != "tracegc-snapshot v1" {
        return Err(err(1, format!("bad header {header:?}")));
    }
    let (lno, layout_line) = lines.next().ok_or_else(|| err(0, "missing layout"))?;
    let layout = match layout_line.strip_prefix("layout ") {
        Some("bidirectional") => LayoutKind::Bidirectional,
        Some("conventional") => LayoutKind::Conventional,
        _ => return Err(err(lno, format!("bad layout line {layout_line:?}"))),
    };

    #[derive(Clone, Copy)]
    struct Shape {
        nrefs: u32,
        scalars: u32,
        array: bool,
        marked: bool,
    }
    let mut shapes: Vec<Shape> = Vec::new();
    let mut edges: Vec<(usize, u32, usize)> = Vec::new();
    let mut roots: Vec<usize> = Vec::new();

    for (lno, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let parse = |s: &str| -> Result<u64, SnapshotError> {
            s.parse().map_err(|_| err(lno, format!("bad number {s:?}")))
        };
        match fields.as_slice() {
            ["object", id, "nrefs", n, "scalars", s, "array", a, "marked", m] => {
                if parse(id)? as usize != shapes.len() {
                    return Err(err(lno, "object ids must be dense and in order"));
                }
                shapes.push(Shape {
                    nrefs: parse(n)? as u32,
                    scalars: parse(s)? as u32,
                    array: parse(a)? != 0,
                    marked: parse(m)? != 0,
                });
            }
            ["ref", obj, slot, target] => {
                edges.push((
                    parse(obj)? as usize,
                    parse(slot)? as u32,
                    parse(target)? as usize,
                ));
            }
            ["root", id] => roots.push(parse(id)? as usize),
            _ => return Err(err(lno, format!("unrecognized line {line:?}"))),
        }
    }

    let approx = shapes
        .iter()
        .map(|s| (s.nrefs as u64 + s.scalars as u64 + 3) * WORD)
        .sum::<u64>();
    let mut heap = Heap::new(HeapConfig {
        phys_bytes: (approx * 6).next_power_of_two().max(64 << 20),
        layout,
        ..HeapConfig::default()
    });
    let objects: Vec<ObjRef> = shapes
        .iter()
        .map(|s| {
            heap.alloc(s.nrefs, s.scalars, s.array)
                .map_err(|e| err(0, format!("allocation failed: {e}")))
        })
        .collect::<Result<_, _>>()?;
    for (obj, slot, target) in edges {
        let from = *objects
            .get(obj)
            .ok_or_else(|| err(0, "dangling ref source"))?;
        let to = *objects
            .get(target)
            .ok_or_else(|| err(0, "dangling ref target"))?;
        if slot >= heap.nrefs(from) {
            return Err(err(0, format!("slot {slot} out of range for object {obj}")));
        }
        heap.set_ref(from, slot, Some(to));
    }
    for (i, s) in shapes.iter().enumerate() {
        if s.marked {
            heap.mark(objects[i]);
        }
    }
    let root_refs: Vec<ObjRef> = roots
        .iter()
        .map(|&i| {
            objects
                .get(i)
                .copied()
                .ok_or_else(|| err(0, "dangling root"))
        })
        .collect::<Result<_, _>>()?;
    heap.set_roots(&root_refs);
    Ok(heap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::software_mark;

    fn demo_heap() -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..100)
            .map(|i| h.alloc(2, (i % 3) as u32, i % 7 == 0).unwrap())
            .collect();
        for i in 0..60usize {
            h.set_ref(objs[i], 0, Some(objs[(i + 1) % 60]));
            h.set_ref(objs[i], 1, Some(objs[(i * 13 + 3) % 60]));
        }
        h.set_roots(&[objs[0], objs[30]]);
        h
    }

    #[test]
    fn roundtrip_preserves_the_graph() {
        let original = demo_heap();
        let text = dump(&original);
        let restored = load(&text).expect("well-formed snapshot");
        assert_eq!(
            original.reachable_from_roots().len(),
            restored.reachable_from_roots().len()
        );
        assert_eq!(original.iter_objects().len(), restored.iter_objects().len());
    }

    #[test]
    fn roundtrip_preserves_marks() {
        let mut original = demo_heap();
        software_mark(&mut original);
        let restored = load(&dump(&original)).expect("well-formed");
        assert_eq!(original.marked_set().len(), restored.marked_set().len());
    }

    #[test]
    fn double_roundtrip_is_stable() {
        let original = demo_heap();
        let once = dump(&original);
        let twice = dump(&load(&once).expect("ok"));
        assert_eq!(once, twice, "snapshot format should be a fixpoint");
    }

    #[test]
    fn gc_on_restored_heap_matches_original() {
        let mut original = demo_heap();
        let mut restored = load(&dump(&original)).expect("ok");
        let a = software_mark(&mut original).len();
        let b = software_mark(&mut restored).len();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(load("").is_err());
        assert!(load("not-a-snapshot").is_err());
        assert!(load("tracegc-snapshot v1\nlayout sideways\n").is_err());
        let bad_ids = "tracegc-snapshot v1\nlayout bidirectional\n\
                       object 5 nrefs 0 scalars 0 array 0 marked 0\n";
        assert!(load(bad_ids).is_err());
        let dangling = "tracegc-snapshot v1\nlayout bidirectional\n\
                        object 0 nrefs 1 scalars 0 array 0 marked 0\nref 0 0 9\n";
        assert!(load(dangling).is_err());
    }

    #[test]
    fn dump_to_streams_the_same_bytes_as_dump() {
        // A sink that accepts one byte at a time: proves dump_to really
        // goes through io::Write (no hidden buffering contract) and
        // produces exactly the materialized text.
        struct TrickleSink(Vec<u8>);
        impl std::io::Write for TrickleSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let heap = demo_heap();
        let mut sink = TrickleSink(Vec::new());
        dump_to(&heap, &mut sink).expect("streamed dump");
        assert_eq!(String::from_utf8(sink.0).unwrap(), dump(&heap));
    }

    #[test]
    fn dump_to_propagates_sink_errors() {
        struct FailSink;
        impl std::io::Write for FailSink {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(dump_to(&demo_heap(), &mut FailSink).is_err());
    }

    #[test]
    fn conventional_layout_roundtrips() {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            layout: LayoutKind::Conventional,
            ..HeapConfig::default()
        });
        let a = h.alloc(2, 1, false).unwrap();
        let b = h.alloc(0, 0, false).unwrap();
        h.set_ref(a, 1, Some(b));
        h.set_roots(&[a]);
        let restored = load(&dump(&h)).expect("ok");
        assert_eq!(restored.reachable_from_roots().len(), 2);
        assert_eq!(restored.layout(), LayoutKind::Conventional);
    }
}
