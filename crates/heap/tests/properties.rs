//! Property-based tests for the heap substrate: layout encodings round-
//! trip, and for arbitrary object graphs the functional collector
//! matches the reachability oracle exactly.

use proptest::prelude::*;

use tracegc_heap::layout::{
    decode_cell_start, encode_free_cell_start, encode_live_cell_start, CellStart, Header,
    MAX_NREFS,
};
use tracegc_heap::verify::{check_free_lists, software_mark, software_sweep};
use tracegc_heap::{Heap, HeapConfig, LayoutKind, ObjRef};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn header_roundtrip(nrefs in 0u32..=MAX_NREFS, is_array: bool, marked: bool) {
        let mut h = Header::new_object(nrefs, is_array);
        if marked {
            h = h.with_mark();
        }
        let decoded = Header::from_raw(h.raw());
        prop_assert_eq!(decoded.nrefs(), nrefs);
        prop_assert_eq!(decoded.is_array(), is_array);
        prop_assert_eq!(decoded.is_marked(), marked);
        prop_assert!(decoded.is_live());
    }

    #[test]
    fn mark_bit_never_disturbs_the_count(nrefs in 0u32..=MAX_NREFS, is_array: bool) {
        let h = Header::new_object(nrefs, is_array);
        prop_assert_eq!(h.with_mark().without_mark().raw(), h.raw());
        prop_assert_eq!(h.with_mark().nrefs(), nrefs);
    }

    #[test]
    fn cell_start_roundtrip_live(nrefs in 0u32..=MAX_NREFS, is_array: bool) {
        let raw = encode_live_cell_start(nrefs, is_array);
        prop_assert_eq!(
            decode_cell_start(raw),
            CellStart::Live { nrefs, is_array }
        );
    }

    #[test]
    fn cell_start_roundtrip_free(next in (0u64..1 << 40).prop_map(|v| v & !7)) {
        let raw = encode_free_cell_start(next);
        prop_assert_eq!(decode_cell_start(raw), CellStart::Free { next });
    }
}

/// Strategy: a random small object graph as (shapes, edges, roots).
fn graph_strategy() -> impl Strategy<Value = (Vec<(u32, u32)>, Vec<(usize, u32, usize)>, Vec<usize>)> {
    (2usize..60).prop_flat_map(|n| {
        let shapes = proptest::collection::vec((0u32..5, 0u32..6), n..=n);
        let edges = proptest::collection::vec((0..n, 0u32..5, 0..n), 0..n * 3);
        let roots = proptest::collection::vec(0..n, 1..4);
        (shapes, edges, roots)
    })
}

fn build(
    layout: LayoutKind,
    shapes: &[(u32, u32)],
    edges: &[(usize, u32, usize)],
    roots: &[usize],
) -> Heap {
    let mut heap = Heap::new(HeapConfig {
        phys_bytes: 32 << 20,
        layout,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = shapes
        .iter()
        .map(|&(r, s)| heap.alloc(r, s, false).expect("fits"))
        .collect();
    for &(from, slot, to) in edges {
        if slot < shapes[from].0 {
            heap.set_ref(objs[from], slot, Some(objs[to]));
        }
    }
    let root_refs: Vec<ObjRef> = roots.iter().map(|&i| objs[i]).collect();
    heap.set_roots(&root_refs);
    heap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mark_equals_reachability_for_random_graphs(
        (shapes, edges, roots) in graph_strategy()
    ) {
        let mut heap = build(LayoutKind::Bidirectional, &shapes, &edges, &roots);
        let expected = heap.reachable_from_roots();
        let marked = software_mark(&mut heap);
        prop_assert_eq!(marked, expected);
    }

    #[test]
    fn sweep_frees_exactly_the_unmarked(
        (shapes, edges, roots) in graph_strategy()
    ) {
        let mut heap = build(LayoutKind::Bidirectional, &shapes, &edges, &roots);
        let live = software_mark(&mut heap).len() as u64;
        let total = shapes.len() as u64;
        let outcome = software_sweep(&mut heap);
        prop_assert_eq!(outcome.freed_cells, total - live);
        prop_assert_eq!(outcome.live_objects, live);
        prop_assert!(check_free_lists(&heap).is_ok());
        // The live set is untouched.
        prop_assert_eq!(heap.reachable_from_roots().len() as u64, live);
    }

    #[test]
    fn both_layouts_agree_on_reachability(
        (shapes, edges, roots) in graph_strategy()
    ) {
        let bidi = build(LayoutKind::Bidirectional, &shapes, &edges, &roots);
        let conv = build(LayoutKind::Conventional, &shapes, &edges, &roots);
        prop_assert_eq!(
            bidi.reachable_from_roots().len(),
            conv.reachable_from_roots().len()
        );
    }

    #[test]
    fn allocation_after_sweep_reuses_freed_cells(
        (shapes, edges, roots) in graph_strategy()
    ) {
        let mut heap = build(LayoutKind::Bidirectional, &shapes, &edges, &roots);
        software_mark(&mut heap);
        software_sweep(&mut heap);
        let blocks = heap.blocks().len();
        let free = heap.total_free_cells();
        // Reallocate as many of the same shapes as there are free cells.
        let mut allocated = 0u64;
        for &(r, s) in shapes.iter().cycle().take(free as usize) {
            if heap.alloc(r, s, false).is_err() {
                break;
            }
            allocated += 1;
        }
        prop_assert!(allocated > 0 || free == 0);
        // Reuse may create at most a handful of new blocks (size-class
        // mismatches), never one per allocation.
        prop_assert!(heap.blocks().len() <= blocks + 14);
    }
}
