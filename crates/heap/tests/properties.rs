//! Property-based tests for the heap substrate: layout encodings round-
//! trip, and for arbitrary object graphs the functional collector
//! matches the reachability oracle exactly. Randomized graphs come from
//! fixed seeds.

use tracegc_heap::layout::{
    decode_cell_start, encode_free_cell_start, encode_live_cell_start, CellStart, Header, MAX_NREFS,
};
use tracegc_heap::verify::{check_free_lists, software_mark, software_sweep};
use tracegc_heap::{Heap, HeapConfig, LayoutKind, ObjRef};
use tracegc_sim::rng::{Rng, StdRng};

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x4EA9_0000 + property * 10_007 + case)
}

#[test]
fn header_roundtrip() {
    for case in 0..100 {
        let mut rng = case_rng(1, case);
        let nrefs = rng.random_range(0u32..MAX_NREFS + 1);
        let is_array = rng.random::<bool>();
        let marked = rng.random::<bool>();
        let mut h = Header::new_object(nrefs, is_array);
        if marked {
            h = h.with_mark();
        }
        let decoded = Header::from_raw(h.raw());
        assert_eq!(decoded.nrefs(), nrefs, "case {case}");
        assert_eq!(decoded.is_array(), is_array, "case {case}");
        assert_eq!(decoded.is_marked(), marked, "case {case}");
        assert!(decoded.is_live(), "case {case}");
    }
}

#[test]
fn mark_bit_never_disturbs_the_count() {
    for case in 0..100 {
        let mut rng = case_rng(2, case);
        let nrefs = rng.random_range(0u32..MAX_NREFS + 1);
        let is_array = rng.random::<bool>();
        let h = Header::new_object(nrefs, is_array);
        assert_eq!(h.with_mark().without_mark().raw(), h.raw(), "case {case}");
        assert_eq!(h.with_mark().nrefs(), nrefs, "case {case}");
    }
}

#[test]
fn cell_start_roundtrip_live() {
    for case in 0..100 {
        let mut rng = case_rng(3, case);
        let nrefs = rng.random_range(0u32..MAX_NREFS + 1);
        let is_array = rng.random::<bool>();
        let raw = encode_live_cell_start(nrefs, is_array);
        assert_eq!(
            decode_cell_start(raw),
            CellStart::Live { nrefs, is_array },
            "case {case}"
        );
    }
}

#[test]
fn cell_start_roundtrip_free() {
    for case in 0..100 {
        let mut rng = case_rng(4, case);
        let next = rng.random_range(0u64..1 << 40) & !7;
        let raw = encode_free_cell_start(next);
        assert_eq!(
            decode_cell_start(raw),
            CellStart::Free { next },
            "case {case}"
        );
    }
}

/// A random small object graph: per-object (nrefs, scalars), an edge
/// list and a non-empty root set.
struct GraphCase {
    shapes: Vec<(u32, u32)>,
    edges: Vec<(usize, u32, usize)>,
    roots: Vec<usize>,
}

fn random_graph(rng: &mut StdRng) -> GraphCase {
    let n = rng.random_range(2usize..60);
    let shapes: Vec<(u32, u32)> = (0..n)
        .map(|_| (rng.random_range(0u32..5), rng.random_range(0u32..6)))
        .collect();
    let edges: Vec<(usize, u32, usize)> = (0..rng.random_range(0usize..n * 3))
        .map(|_| {
            (
                rng.random_range(0usize..n),
                rng.random_range(0u32..5),
                rng.random_range(0usize..n),
            )
        })
        .collect();
    let roots: Vec<usize> = (0..rng.random_range(1usize..4))
        .map(|_| rng.random_range(0usize..n))
        .collect();
    GraphCase {
        shapes,
        edges,
        roots,
    }
}

fn build(layout: LayoutKind, g: &GraphCase) -> Heap {
    let mut heap = Heap::new(HeapConfig {
        phys_bytes: 32 << 20,
        layout,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = g
        .shapes
        .iter()
        .map(|&(r, s)| heap.alloc(r, s, false).expect("fits"))
        .collect();
    for &(from, slot, to) in &g.edges {
        if slot < g.shapes[from].0 {
            heap.set_ref(objs[from], slot, Some(objs[to]));
        }
    }
    let root_refs: Vec<ObjRef> = g.roots.iter().map(|&i| objs[i]).collect();
    heap.set_roots(&root_refs);
    heap
}

#[test]
fn mark_equals_reachability_for_random_graphs() {
    for case in 0..100 {
        let g = random_graph(&mut case_rng(5, case));
        let mut heap = build(LayoutKind::Bidirectional, &g);
        let expected = heap.reachable_from_roots();
        let marked = software_mark(&mut heap);
        assert_eq!(marked, expected, "case {case}");
    }
}

#[test]
fn sweep_frees_exactly_the_unmarked() {
    for case in 0..100 {
        let g = random_graph(&mut case_rng(6, case));
        let mut heap = build(LayoutKind::Bidirectional, &g);
        let live = software_mark(&mut heap).len() as u64;
        let total = g.shapes.len() as u64;
        let outcome = software_sweep(&mut heap);
        assert_eq!(outcome.freed_cells, total - live, "case {case}");
        assert_eq!(outcome.live_objects, live, "case {case}");
        assert!(check_free_lists(&heap).is_ok(), "case {case}");
        // The live set is untouched.
        assert_eq!(
            heap.reachable_from_roots().len() as u64,
            live,
            "case {case}"
        );
    }
}

#[test]
fn both_layouts_agree_on_reachability() {
    for case in 0..100 {
        let g = random_graph(&mut case_rng(7, case));
        let bidi = build(LayoutKind::Bidirectional, &g);
        let conv = build(LayoutKind::Conventional, &g);
        assert_eq!(
            bidi.reachable_from_roots().len(),
            conv.reachable_from_roots().len(),
            "case {case}"
        );
    }
}

#[test]
fn allocation_after_sweep_reuses_freed_cells() {
    for case in 0..100 {
        let g = random_graph(&mut case_rng(8, case));
        let mut heap = build(LayoutKind::Bidirectional, &g);
        software_mark(&mut heap);
        software_sweep(&mut heap);
        let blocks = heap.blocks().len();
        let free = heap.total_free_cells();
        // Reallocate as many of the same shapes as there are free cells.
        let mut allocated = 0u64;
        for &(r, s) in g.shapes.iter().cycle().take(free as usize) {
            if heap.alloc(r, s, false).is_err() {
                break;
            }
            allocated += 1;
        }
        assert!(allocated > 0 || free == 0, "case {case}");
        // Reuse may create at most a handful of new blocks (size-class
        // mismatches), never one per allocation.
        assert!(heap.blocks().len() <= blocks + 14, "case {case}");
    }
}
