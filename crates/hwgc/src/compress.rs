//! Mark-queue address compression (§V-C).
//!
//! "Our JikesRVM heap uses the upper 36 bit of each address to denote the
//! space, and the lowest 3 bit are 0 because pointers are 64-bit aligned
//! ... we demonstrate this strategy by compressing addresses into 32
//! bits, which doubles the effective size of the mark queue and halves
//! the amount of traffic for spilling."
//!
//! The codec maps a 64-bit heap virtual address to a 32-bit word offset
//! from a configured base, and back. Fig. 19 shows the resulting 2×
//! reduction in spill traffic.

/// Encodes references for mark-queue storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefCodec {
    /// Store full 64-bit virtual addresses (8 bytes per entry).
    Full,
    /// Store 32-bit word offsets from `base` (4 bytes per entry).
    Compressed {
        /// Lowest address the codec can represent.
        base: u64,
    },
}

impl RefCodec {
    /// Bytes one encoded entry occupies in the queue and spill region.
    pub fn entry_bytes(self) -> u64 {
        match self {
            RefCodec::Full => 8,
            RefCodec::Compressed { .. } => 4,
        }
    }

    /// Encodes a reference.
    ///
    /// # Panics
    ///
    /// In compressed mode, panics if `va` is below the base, unaligned,
    /// or more than 32 GiB above the base (beyond 32-bit word offsets) —
    /// the runtime guarantees heap placement makes this impossible.
    pub fn encode(self, va: u64) -> u64 {
        match self {
            RefCodec::Full => va,
            RefCodec::Compressed { base } => {
                assert!(va >= base, "address {va:#x} below compression base");
                let off = va - base;
                assert!(off.is_multiple_of(8), "unaligned reference {va:#x}");
                let word = off / 8;
                assert!(
                    word <= u32::MAX as u64,
                    "address {va:#x} out of compressed range"
                );
                word
            }
        }
    }

    /// Decodes an entry back to a full virtual address.
    ///
    /// # Panics
    ///
    /// In compressed mode, panics if `stored` exceeds the 32-bit word
    /// offsets [`encode`](Self::encode) can produce — anything larger is
    /// queue or spill corruption, and silently widening it would
    /// fabricate an address.
    pub fn decode(self, stored: u64) -> u64 {
        match self {
            RefCodec::Full => stored,
            RefCodec::Compressed { base } => {
                assert!(
                    stored <= u32::MAX as u64,
                    "stored entry {stored:#x} out of compressed range"
                );
                base + stored * 8
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_codec_is_identity() {
        let c = RefCodec::Full;
        assert_eq!(c.encode(0x4000_0008), 0x4000_0008);
        assert_eq!(c.decode(0x4000_0008), 0x4000_0008);
        assert_eq!(c.entry_bytes(), 8);
    }

    #[test]
    fn compressed_roundtrip() {
        let c = RefCodec::Compressed { base: 0x4000_0000 };
        for va in [
            0x4000_0000u64,
            0x4000_0008,
            0x4fff_fff8,
            0x4000_0000 + 8 * (u32::MAX as u64),
        ] {
            assert_eq!(c.decode(c.encode(va)), va);
        }
        assert_eq!(c.entry_bytes(), 4);
    }

    #[test]
    fn compressed_halves_entry_size() {
        assert_eq!(
            RefCodec::Compressed { base: 0 }.entry_bytes() * 2,
            RefCodec::Full.entry_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "below compression base")]
    fn below_base_panics() {
        RefCodec::Compressed { base: 0x4000_0000 }.encode(0x3fff_fff8);
    }

    #[test]
    #[should_panic(expected = "out of compressed range")]
    fn beyond_range_panics() {
        RefCodec::Compressed { base: 0 }.encode(8 * (u32::MAX as u64 + 1));
    }

    #[test]
    #[should_panic(expected = "out of compressed range")]
    fn decode_beyond_range_panics() {
        // decode mirrors encode's contract: a stored entry wider than 32
        // bits is corruption, not an address.
        RefCodec::Compressed { base: 0x4000_0000 }.decode(u32::MAX as u64 + 1);
    }

    #[test]
    fn full_decode_accepts_any_u64() {
        assert_eq!(RefCodec::Full.decode(u64::MAX), u64::MAX);
    }
}
