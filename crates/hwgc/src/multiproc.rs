//! Multi-process collection (§VII "Supporting multiple applications").
//!
//! "Our current design only supports one process at a time, but the same
//! unit could perform GC for multiple processes simultaneously, by
//! tagging references by process and supporting multiple page tables."
//!
//! The model: one physical unit whose datapath is time-multiplexed
//! across per-process *contexts*. Each context carries its own page
//! table, TLBs and queues (the tag bits of the paper's design select
//! among them); the single TileLink port and the memory system are
//! shared, so concurrent collections overlap their memory latencies
//! while sharing issue bandwidth.

use tracegc_heap::{Heap, SocCtx};
use tracegc_mem::MemSystem;
use tracegc_sim::sched::{Engine, Exec, Partition, Policy, Scheduler};
use tracegc_sim::{Cycle, SimError};

use crate::engine::MarkEngine;
use crate::trap::Trap;
use crate::traversal::{TraversalResult, TraversalUnit};

/// One process's collection context: its heap and its view of the unit
/// (page table, TLBs, queues — what the paper's per-process tags select).
#[derive(Debug)]
pub struct ProcessContext {
    /// The per-process traversal state.
    pub unit: TraversalUnit,
    /// The process's heap.
    pub heap: Heap,
}

/// Outcome of a multi-process mark.
#[derive(Debug, Clone)]
pub struct MultiProcessReport {
    /// Per-process traversal results (same order as the contexts).
    pub per_process: Vec<TraversalResult>,
    /// Cycle the last process finished.
    pub end: Cycle,
}

impl MultiProcessReport {
    /// Total wall-clock cycles of the combined collection.
    pub fn total_cycles(&self, start: Cycle) -> Cycle {
        self.end - start
    }
}

/// Marks every process's heap on one shared unit, round-robining the
/// datapath cycle by cycle. Returns per-process results.
///
/// A thin driver: each context becomes a
/// [`MarkEngine`] and the
/// [`Scheduler`]'s round-robin policy reproduces the historical
/// tag-selected datapath multiplexing exactly (same `now % n` service
/// slot, same full-idle-round skip-ahead), while additionally charging
/// per-process stall ledgers: the served context's bottleneck on its
/// slot, [`PortBusy`](tracegc_sim::StallReason::PortBusy) on cycles the
/// datapath served someone else. With one process this degenerates to
/// [`TraversalUnit::run_mark`] cycle- and ledger-exactly (proven in
/// `tests/engine_equivalence.rs`).
///
/// # Panics
///
/// Panics on an empty context list, on a fault in any context, or — via
/// the scheduler's no-progress watchdog — with a per-engine
/// stall-reason and ledger dump if no context can ever advance. Use
/// [`try_run_multiprocess_mark`] to degrade gracefully.
pub fn run_multiprocess_mark(
    procs: &mut [ProcessContext],
    mem: &mut MemSystem,
    start: Cycle,
) -> MultiProcessReport {
    try_run_multiprocess_mark(procs, mem, start).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_multiprocess_mark`]: the first trap in any
/// context (contexts are polled in order) surfaces as a [`SimError`],
/// with that context's unit frozen in its architected state.
pub fn try_run_multiprocess_mark(
    procs: &mut [ProcessContext],
    mem: &mut MemSystem,
    start: Cycle,
) -> Result<MultiProcessReport, SimError> {
    assert!(!procs.is_empty(), "need at least one process");
    for p in procs.iter_mut() {
        p.unit.begin(&p.heap, start);
    }
    let ends = {
        let mut heaps = Vec::with_capacity(procs.len());
        let mut engines = Vec::with_capacity(procs.len());
        for (i, p) in procs.iter_mut().enumerate() {
            let ProcessContext { unit, heap } = p;
            heaps.push(&mut *heap);
            engines.push(MarkEngine::new(unit, i));
        }
        let mut ctx = SocCtx::new(mem, heaps);
        let mut dyns: Vec<&mut dyn Engine<SocCtx>> = engines
            .iter_mut()
            .map(|e| e as &mut dyn Engine<SocCtx>)
            .collect();
        Scheduler::new(Policy::RoundRobin)
            .try_run(&mut dyns, &mut ctx, start)?
            .ends
    };
    // A trap freezes its unit but ends the schedule normally; surface
    // the first one, plus any fault the memory system latched on the
    // final access of the pass.
    if let Some(e) = mem.take_fault() {
        return Err(Trap::from_sim_error(&e).into());
    }
    if let Some(t) = procs.iter().find_map(|p| p.unit.trap()) {
        return Err(t.into());
    }
    let per_process = procs
        .iter()
        .zip(&ends)
        .map(|(p, &end)| p.unit.result_at(start, end))
        .collect();
    Ok(MultiProcessReport {
        per_process,
        end: *ends.iter().max().expect("non-empty"),
    })
}

/// A process pinned to a *private* memory channel: the partition-safe
/// counterpart of [`ProcessContext`] for [`Exec`]-parallel marking.
///
/// [`run_multiprocess_mark`] models the paper's §VII sharing — one
/// datapath, one DDR3 controller — so its engines interact every
/// service cycle and form one indivisible partition. When each process
/// owns its unit *and* its memory system (a fleet of accelerators, one
/// per channel), the marks provably never interact, and
/// [`run_partitioned_mark`] may execute them on parallel host threads
/// with byte-identical results for any worker count.
#[derive(Debug)]
pub struct PartitionedProcess {
    /// The per-process traversal state and heap.
    pub ctx: ProcessContext,
    /// The process's private memory channel.
    pub mem: MemSystem,
}

/// Marks every process's heap on its own unit and private memory
/// channel, executing the processes as independent partitions under
/// `exec`. Deterministic: results (cycle counts, ledgers, marks) are
/// identical for every `exec`, and each process matches a solo
/// [`TraversalUnit::run_mark`] exactly.
///
/// # Panics
///
/// Panics on an empty process list or on a fault in any context; use
/// [`try_run_partitioned_mark`] to degrade gracefully.
pub fn run_partitioned_mark(
    procs: &mut [PartitionedProcess],
    exec: Exec,
    start: Cycle,
) -> MultiProcessReport {
    try_run_partitioned_mark(procs, exec, start).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_partitioned_mark`]: the first trap in
/// *partition order* (not completion order — error surfacing stays
/// deterministic under any `exec`) surfaces as a [`SimError`], with
/// that process's unit frozen in its architected state.
pub fn try_run_partitioned_mark(
    procs: &mut [PartitionedProcess],
    exec: Exec,
    start: Cycle,
) -> Result<MultiProcessReport, SimError> {
    assert!(!procs.is_empty(), "need at least one process");
    for p in procs.iter_mut() {
        p.ctx.unit.begin(&p.ctx.heap, start);
    }
    let ends: Vec<Cycle> = {
        let mut engines = Vec::with_capacity(procs.len());
        let mut ctxs = Vec::with_capacity(procs.len());
        for p in procs.iter_mut() {
            let PartitionedProcess {
                ctx: ProcessContext { unit, heap },
                mem,
            } = p;
            engines.push(MarkEngine::new(unit, 0));
            ctxs.push(SocCtx::new(mem, vec![&mut *heap]));
        }
        let parts: Vec<Partition<'_, SocCtx>> = engines
            .iter_mut()
            .zip(ctxs.iter_mut())
            .map(|(e, ctx)| Partition {
                engines: vec![e as &mut (dyn Engine<SocCtx> + Send)],
                ctx,
            })
            .collect();
        Scheduler::new(Policy::Lockstep)
            .try_run_partitioned(exec, parts, start)?
            .into_iter()
            .map(|r| r.end)
            .collect()
    };
    // Surface faults in partition order: first a latched memory fault,
    // then a frozen unit trap.
    for p in procs.iter_mut() {
        if let Some(e) = p.mem.take_fault() {
            return Err(Trap::from_sim_error(&e).into());
        }
    }
    if let Some(t) = procs.iter().find_map(|p| p.ctx.unit.trap()) {
        return Err(t.into());
    }
    let per_process = procs
        .iter()
        .zip(&ends)
        .map(|(p, &end)| p.ctx.unit.result_at(start, end))
        .collect();
    Ok(MultiProcessReport {
        per_process,
        end: *ends.iter().max().expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcUnitConfig;
    use tracegc_heap::verify::check_marks_match_reachability;
    use tracegc_heap::{HeapConfig, ObjRef};
    use tracegc_mem::MemSystem;

    fn build_heap(n: usize, seed: u64) -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..n)
            .map(|i| h.alloc(2, (i % 3) as u32, false).unwrap())
            .collect();
        let live = n / 2;
        for i in 0..live {
            if 2 * i + 1 < live {
                h.set_ref(objs[i], 0, Some(objs[2 * i + 1]));
            }
            h.set_ref(
                objs[i],
                1,
                Some(objs[((i as u64 * 17 + seed) % live as u64) as usize]),
            );
        }
        h.set_roots(&[objs[0]]);
        h
    }

    fn context(n: usize, seed: u64) -> ProcessContext {
        let mut heap = build_heap(n, seed);
        let unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
        ProcessContext { unit, heap }
    }

    #[test]
    fn every_process_marks_its_own_heap_correctly() {
        let mut procs = vec![context(1500, 1), context(1000, 2), context(500, 3)];
        let mut mem = MemSystem::ddr3(Default::default());
        let report = run_multiprocess_mark(&mut procs, &mut mem, 0);
        assert_eq!(report.per_process.len(), 3);
        for p in &procs {
            check_marks_match_reachability(&p.heap).unwrap();
        }
        // Every process marked a non-trivial set.
        for r in &report.per_process {
            assert!(r.objects_marked > 0);
        }
    }

    #[test]
    fn sharing_overlaps_latency_but_shares_bandwidth() {
        // Two identical processes on one unit finish in less than twice
        // the solo time (latency overlap), but later than solo (the
        // datapath is time-multiplexed).
        let solo = {
            let mut procs = vec![context(2000, 9)];
            let mut mem = MemSystem::ddr3(Default::default());
            run_multiprocess_mark(&mut procs, &mut mem, 0).end
        };
        let duo = {
            let mut procs = vec![context(2000, 9), context(2000, 9)];
            let mut mem = MemSystem::ddr3(Default::default());
            run_multiprocess_mark(&mut procs, &mut mem, 0).end
        };
        assert!(duo > solo, "sharing cannot be free: {duo} vs {solo}");
        assert!(
            duo <= solo * 2 + solo / 10,
            "time-multiplexing should cost at most ~serial: {duo} vs 2x{solo}"
        );
    }

    #[test]
    fn single_process_matches_plain_run_mark() {
        let marked_multi = {
            let mut procs = vec![context(1200, 4)];
            let mut mem = MemSystem::ddr3(Default::default());
            let r = run_multiprocess_mark(&mut procs, &mut mem, 0);
            r.per_process[0].objects_marked
        };
        let marked_plain = {
            let mut heap = build_heap(1200, 4);
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            let mut mem = MemSystem::ddr3(Default::default());
            unit.run_mark(&mut heap, &mut mem, 0).objects_marked
        };
        assert_eq!(marked_multi, marked_plain);
    }

    #[test]
    fn heterogeneous_process_sizes_finish_independently() {
        let mut procs = vec![context(3000, 5), context(300, 6)];
        let mut mem = MemSystem::ddr3(Default::default());
        let report = run_multiprocess_mark(&mut procs, &mut mem, 0);
        // The small process must finish well before the big one.
        assert!(report.per_process[1].end < report.per_process[0].end);
    }

    fn partitioned(n: usize, seed: u64) -> PartitionedProcess {
        PartitionedProcess {
            ctx: context(n, seed),
            mem: MemSystem::ddr3(Default::default()),
        }
    }

    #[test]
    fn partitioned_mark_is_exec_invariant_and_matches_solo_runs() {
        use tracegc_sim::Exec;
        let fingerprint = |r: &MultiProcessReport| {
            r.per_process
                .iter()
                .map(|p| {
                    format!(
                        "end={};marked={};stalls={:?}|",
                        p.end, p.objects_marked, p.stalls
                    )
                })
                .collect::<String>()
        };
        // The reference: each process marked solo on its own channel.
        let solo: Vec<String> = (0..3)
            .map(|i| {
                let mut p = partitioned(700 + 200 * i, i as u64);
                let r = p.ctx.unit.run_mark(&mut p.ctx.heap, &mut p.mem, 0);
                format!(
                    "end={};marked={};stalls={:?}|",
                    r.end, r.objects_marked, r.stalls
                )
            })
            .collect();
        for exec in [
            Exec::Serial,
            Exec::Parallel { workers: 2 },
            Exec::Parallel { workers: 8 },
        ] {
            let mut procs: Vec<PartitionedProcess> = (0..3)
                .map(|i| partitioned(700 + 200 * i, i as u64))
                .collect();
            let report = run_partitioned_mark(&mut procs, exec, 0);
            assert_eq!(fingerprint(&report), solo.concat(), "{exec:?}");
            assert_eq!(
                report.end,
                report.per_process.iter().map(|p| p.end).max().unwrap()
            );
            for p in &procs {
                check_marks_match_reachability(&p.ctx.heap).unwrap();
            }
        }
    }
}
