//! Structured traps: how the traversal unit reports faults instead of
//! panicking.
//!
//! The hardware analogue is a trap register file next to the MMIO
//! block: when the unit detects a condition it cannot resolve — a
//! reference that fails the space-map bounds check, an implausible
//! object header, a page fault from the PTW, an uncorrectable ECC
//! error or a timed-out memory request, or an exhausted spill region —
//! it freezes its pipeline, latches the trap cause and faulting
//! address, and raises an interrupt. The driver then reads the
//! architected state (mark queue contents, marker slots, tracer
//! cursor) and lets the software collector finish the mark
//! ([`TraversalUnit::drain_architected_state`]).
//!
//! [`TraversalUnit::drain_architected_state`]:
//! crate::traversal::TraversalUnit::drain_architected_state

use tracegc_sim::{Cycle, SimError};

/// The trap cause, one per hardware detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// A dequeued reference falls outside every traced space.
    RefOutOfBounds,
    /// A dequeued reference is not word-aligned.
    RefMisaligned,
    /// A mark response returned a header that fails the sanity checks
    /// (dead tag bit, or a reference count no real object could have).
    HeaderCorrupt,
    /// The page-table walker hit an invalid PTE.
    PageFault,
    /// The memory system reported an uncorrectable ECC error.
    EccUncorrectable,
    /// A memory request exhausted its retry budget.
    MemTimeout,
    /// The spill engine needed a chunk slot but the spill region was
    /// full — the driver under-provisioned the region (§V-E).
    SpillExhausted,
    /// The pass exceeded the driver-programmed cycle budget
    /// ([`GcUnitConfig::mark_budget`]): a fleet scheduler's per-request
    /// timeout, delivered through the same trap path as a hardware
    /// fault so the software collector finishes the mark.
    ///
    /// [`GcUnitConfig::mark_budget`]: crate::config::GcUnitConfig::mark_budget
    RequestTimeout,
}

impl TrapKind {
    /// Stable lower-snake name (used in traces and metrics).
    pub fn name(self) -> &'static str {
        match self {
            TrapKind::RefOutOfBounds => "ref_out_of_bounds",
            TrapKind::RefMisaligned => "ref_misaligned",
            TrapKind::HeaderCorrupt => "header_corrupt",
            TrapKind::PageFault => "page_fault",
            TrapKind::EccUncorrectable => "ecc_uncorrectable",
            TrapKind::MemTimeout => "mem_timeout",
            TrapKind::SpillExhausted => "spill_exhausted",
            TrapKind::RequestTimeout => "request_timeout",
        }
    }
}

/// A latched trap: cause, faulting address and trap cycle.
///
/// The address is the value the hardware *observed* (for a corrupted
/// reference, the corrupted bits); the original queue entry is retained
/// separately in the unit's faulting-entry register so the software
/// fallback can resume from uncorrupted state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// What the detector saw.
    pub kind: TrapKind,
    /// The faulting address (virtual for reference/translation traps,
    /// physical for memory-system traps).
    pub va: u64,
    /// Cycle the trap was latched.
    pub at: Cycle,
}

impl Trap {
    /// Builds a trap record.
    pub fn new(kind: TrapKind, va: u64, at: Cycle) -> Self {
        Self { kind, va, at }
    }

    /// Converts a fault latched by the memory system into a trap. Only
    /// [`SimError::MemTimeout`] and [`SimError::EccUncorrectable`] are
    /// latched there; the remaining arms are defensive mappings.
    pub fn from_sim_error(e: &SimError) -> Self {
        match e {
            SimError::EccUncorrectable { at, addr } => {
                Trap::new(TrapKind::EccUncorrectable, *addr, *at)
            }
            SimError::MemTimeout { at, addr, .. } => Trap::new(TrapKind::MemTimeout, *addr, *at),
            SimError::PageFault { at, va } => Trap::new(TrapKind::PageFault, *va, *at),
            SimError::Deadlock { at, .. } | SimError::Trap { at, .. } => {
                Trap::new(TrapKind::MemTimeout, 0, *at)
            }
        }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "traversal trap at cycle {}: {} (addr {:#x})",
            self.at,
            self.kind.name(),
            self.va
        )
    }
}

impl From<Trap> for SimError {
    fn from(t: Trap) -> Self {
        SimError::Trap {
            at: t.at,
            // `SimError::Trap`'s Display supplies the "traversal trap at
            // cycle {at}:" prefix; carry only the cause here.
            description: format!("{} (addr {:#x})", t.kind.name(), t.va),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause_and_address() {
        let t = Trap::new(TrapKind::RefMisaligned, 0x4000_0003, 77);
        let s = t.to_string();
        assert!(s.contains("cycle 77"));
        assert!(s.contains("ref_misaligned"));
        assert!(s.contains("0x40000003"));
    }

    #[test]
    fn converts_to_sim_error_preserving_cycle() {
        let t = Trap::new(TrapKind::SpillExhausted, 0x100, 9);
        let e: SimError = t.into();
        assert_eq!(e.at(), 9);
        assert!(e.to_string().contains("spill_exhausted"));
    }

    #[test]
    fn mem_faults_map_to_matching_kinds() {
        let ecc = SimError::EccUncorrectable { at: 5, addr: 0x40 };
        assert_eq!(Trap::from_sim_error(&ecc).kind, TrapKind::EccUncorrectable);
        let to = SimError::MemTimeout {
            at: 6,
            addr: 0x80,
            attempts: 3,
        };
        let t = Trap::from_sim_error(&to);
        assert_eq!(t.kind, TrapKind::MemTimeout);
        assert_eq!(t.va, 0x80);
        assert_eq!(t.at, 6);
    }
}
