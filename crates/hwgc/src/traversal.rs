//! The Traversal Unit: root reader → mark queue → marker → tracer queue →
//! tracer → mark queue (Figs. 5, 7, 13, 14).
//!
//! The unit is a pipeline of state machines advanced one clock cycle at a
//! time. Each cycle, at most one mark-queue spill action, one marker
//! issue, one marker delivery, one tracer issue and one tracer response
//! landing can occur — mirroring the single-ported hardware queues. The
//! memory system and TLBs are timestamp-passing models, so when every
//! machine is waiting on memory the simulation skips ahead to the next
//! completion.
//!
//! The decoupling the paper credits for the speedup is structural here:
//! a long object keeps the *tracer* busy while the *marker* keeps
//! draining the mark queue and filling the tracer queue, and vice versa
//! (§IV-A.II).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use tracegc_heap::layout::{bidi, conv, Header, LayoutKind, HEADER_MARK_BIT, WORD};
use tracegc_heap::{Heap, SocCtx};
use tracegc_mem::cache::MemBacking;
use tracegc_mem::req::decompose_aligned;
use tracegc_mem::{Cache, CacheConfig, MemReq, MemSystem, Source};
use tracegc_sim::metrics::DEFAULT_TRACE_CAPACITY;
use tracegc_sim::sched::{Policy, Scheduler};
use tracegc_sim::{
    BoundedQueue, Cycle, EventTrace, FaultInjector, FaultPlan, FaultSite, FaultStats, SimError,
    StallAccounting, StallReason,
};
use tracegc_vmem::{Requester, Translator, PAGE_SIZE};

use crate::compress::RefCodec;
use crate::config::{CacheTopology, GcUnitConfig};
use crate::markbit_cache::MarkBitCache;
use crate::markq::{MarkQueue, MarkQueueConfig, MarkQueueStats};
use crate::trap::{Trap, TrapKind};

/// Reference-count ceiling for the marker's header sanity check: no
/// object in any modelled workload approaches 2^26 references (that is
/// a half-gigabyte reference array), but corruption of the count field
/// sails past it. Headers above the ceiling trap as
/// [`TrapKind::HeaderCorrupt`].
const MAX_PLAUSIBLE_NREFS: u32 = 1 << 26;

/// Result of one mark pass on the traversal unit.
#[derive(Debug, Clone)]
pub struct TraversalResult {
    /// Cycle the pass began.
    pub start: Cycle,
    /// Cycle the pass completed (all queues drained).
    pub end: Cycle,
    /// Objects newly marked.
    pub objects_marked: u64,
    /// Mark operations that found the object already marked (write-back
    /// elided, §V-C).
    pub already_marked: u64,
    /// Mark operations filtered by the mark-bit cache before reaching
    /// memory (Fig. 21b).
    pub filtered: u64,
    /// References enqueued to the mark queue by the tracer.
    pub refs_enqueued: u64,
    /// Cycles in which the unit's TileLink port issued a request — the
    /// paper reports the port busy 88% of mark cycles (§VI-A).
    pub port_busy_cycles: Cycle,
    /// Mark-queue / spill statistics (Fig. 19).
    pub markq: MarkQueueStats,
    /// Translation statistics.
    pub translator: tracegc_vmem::TranslatorStats,
    /// Cycle attribution for the pass: `stalls.total() == cycles()` for
    /// scheduler-driven passes (any of the `run_*` drivers, or a
    /// [`MarkEngine`](crate::engine::MarkEngine) under a lockstep
    /// scheduler). A raw [`TraversalUnit::step`] loop that never calls
    /// [`TraversalUnit::charge_busy`] / [`TraversalUnit::charge_stall`]
    /// leaves this empty.
    pub stalls: StallAccounting,
}

impl TraversalResult {
    /// Duration of the pass in cycles.
    pub fn cycles(&self) -> Cycle {
        self.end - self.start
    }
}

#[derive(Debug, Clone, Copy)]
enum MarkerSlot {
    Free,
    /// AMO in flight; response arrives at `done`.
    Busy {
        done: Cycle,
        va: u64,
        old: u64,
    },
    /// Response arrived but the tracer queue was full.
    Deliver {
        va: u64,
        old: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct TraceJob {
    obj: u64,
    nrefs: u32,
}

#[derive(Debug)]
enum TraceState {
    /// Walking a bidirectional reference section with aligned chunks.
    Bidi { cursor: u64, end: u64 },
    /// Conventional layout: waiting for the TIB pointer load.
    ConvTib { obj: u64, nrefs: u32 },
    /// Conventional layout: issuing per-field loads at the TIB-listed
    /// offsets.
    ConvFields { obj: u64, offsets: VecDeque<u32> },
}

/// A tracer response: references (possibly none) arriving at `done`.
#[derive(Debug)]
struct TraceResp {
    done: Cycle,
    seq: u64,
    refs: Vec<u64>,
}

impl PartialEq for TraceResp {
    fn eq(&self, other: &Self) -> bool {
        self.done == other.done && self.seq == other.seq
    }
}
impl Eq for TraceResp {}
impl PartialOrd for TraceResp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TraceResp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.done, self.seq).cmp(&(other.done, other.seq))
    }
}

#[derive(Debug)]
struct RootReader {
    /// Remaining `(addr, size)` chunks of the root array to read.
    chunks: VecDeque<(u64, u32)>,
    /// In-flight chunk: data arrives at `.0`.
    pending: Option<(Cycle, Vec<u64>)>,
    /// Roots read but not yet pushed into the mark queue.
    buf: VecDeque<u64>,
}

impl RootReader {
    fn done(&self) -> bool {
        self.chunks.is_empty() && self.pending.is_none() && self.buf.is_empty()
    }
}

/// The traversal unit (Fig. 5, left).
#[derive(Debug)]
pub struct TraversalUnit {
    cfg: GcUnitConfig,
    translator: Translator,
    /// Dedicated PTW cache (partitioned topology).
    ptw_cache: Cache,
    /// The single shared cache of the unpartitioned topology.
    shared_cache: Option<Cache>,
    markq: MarkQueue,
    markbit: MarkBitCache,
    tracerq: BoundedQueue<TraceJob>,
    marker_slots: Vec<MarkerSlot>,
    trace_state: Option<TraceState>,
    responses: BinaryHeap<Reverse<TraceResp>>,
    resp_seq: u64,
    /// Refs from landed responses awaiting mark-queue space.
    deliver_buf: VecDeque<u64>,
    /// References injected by concurrent-mutator write barriers
    /// (§IV-D: overwritten references written into the root region are
    /// fed to the mark queue).
    injected: VecDeque<u64>,
    roots: RootReader,
    /// The unit's single TileLink port: one data request may issue per
    /// cycle, shared by the spill engine, root reader, marker and
    /// tracer (in that priority order — spill writes first, §V-C).
    port_free: bool,
    /// The marker's pipeline is stalled until this cycle: its TLB is
    /// blocking, so a page-table walk freezes the marker (§VI-A).
    marker_blocked_until: Cycle,
    /// Likewise for the tracer's blocking TLB.
    tracer_blocked_until: Cycle,
    /// Cycles during which the port issued a request (the "port busy
    /// 88% of all mark cycles" statistic of §VI-A).
    port_busy_cycles: u64,
    /// Cycle of the most recent port issue (for §VII throttling);
    /// `None` before the first issue.
    last_issue_at: Option<Cycle>,
    /// Background mutator traffic: one 64-byte CPU read every this many
    /// cycles (0 = no background traffic). Models the application
    /// running on the CPU while a concurrent unit collects (§VII).
    bg_period: Cycle,
    bg_next: Cycle,
    /// Latencies observed by the background traffic (the mutator's view
    /// of memory interference).
    bg_latencies: Vec<Cycle>,
    /// Mark accesses per object reference (Fig. 21a).
    access_counts: HashMap<u64, u32>,
    objects_marked: u64,
    already_marked: u64,
    filtered: u64,
    refs_enqueued: u64,
    /// Cycle attribution for the current pass (reset by
    /// [`TraversalUnit::begin`], charged by
    /// [`TraversalUnit::run_mark`]'s clock-advance points).
    stalls: StallAccounting,
    /// Why the marker is frozen when `marker_blocked_until > now`.
    marker_block_reason: StallReason,
    /// Why the tracer is frozen when `tracer_blocked_until > now`.
    tracer_block_reason: StallReason,
    /// Event ring, present when `cfg.trace` is set.
    trace: Option<EventTrace>,
    /// Latched trap (first cause wins); the pipeline freezes while set
    /// and the driver recovers via
    /// [`TraversalUnit::drain_architected_state`].
    trap: Option<Trap>,
    /// The original (uncorrupted) queue entry behind a faulting marker
    /// issue — the hardware's faulting-entry register, preserved so the
    /// software fallback resumes from clean state.
    trap_pending_ref: Option<u64>,
    /// Cycle the current pass began (for the `mark_budget` deadline).
    pass_start: Cycle,
    /// Fault injector for the marker datapath (`None` = no injection).
    fault: Option<FaultInjector>,
}

impl TraversalUnit {
    /// Builds the unit for `heap`'s address space, allocating its spill
    /// region from physical memory (as the Linux driver does at boot,
    /// §V-E).
    pub fn new(cfg: GcUnitConfig, heap: &mut Heap) -> Self {
        let spill_base = heap.alloc_phys_region(cfg.spill_bytes);
        let codec = if cfg.compress {
            RefCodec::Compressed {
                base: heap.spaces().immortal_base,
            }
        } else {
            RefCodec::Full
        };
        let markq = MarkQueue::new(MarkQueueConfig {
            main_entries: cfg.markq_entries,
            side_entries: cfg.markq_side,
            throttle_level: (cfg.markq_side * 3) / 4,
            codec,
            spill_base,
            spill_bytes: cfg.spill_bytes,
        });
        let shared_cache = match cfg.topology {
            CacheTopology::Partitioned => None,
            CacheTopology::Shared => Some(Cache::new(CacheConfig::hwgc_shared())),
        };
        Self {
            translator: Translator::new(heap.address_space(), cfg.tlb),
            ptw_cache: Cache::new(cfg.tlb.ptw_cache),
            shared_cache,
            markq,
            markbit: MarkBitCache::new(cfg.markbit_cache),
            tracerq: BoundedQueue::new(cfg.tracer_queue),
            marker_slots: vec![MarkerSlot::Free; cfg.marker_slots],
            trace_state: None,
            responses: BinaryHeap::new(),
            resp_seq: 0,
            deliver_buf: VecDeque::new(),
            injected: VecDeque::new(),
            roots: RootReader {
                chunks: VecDeque::new(),
                pending: None,
                buf: VecDeque::new(),
            },
            port_free: true,
            marker_blocked_until: 0,
            tracer_blocked_until: 0,
            port_busy_cycles: 0,
            last_issue_at: None,
            bg_period: 0,
            bg_next: 0,
            bg_latencies: Vec::new(),
            access_counts: HashMap::new(),
            objects_marked: 0,
            already_marked: 0,
            filtered: 0,
            refs_enqueued: 0,
            stalls: StallAccounting::default(),
            marker_block_reason: StallReason::TlbMiss,
            tracer_block_reason: StallReason::TlbMiss,
            trace: cfg.trace.then(|| EventTrace::new(DEFAULT_TRACE_CAPACITY)),
            trap: None,
            trap_pending_ref: None,
            pass_start: 0,
            fault: None,
            cfg,
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &GcUnitConfig {
        &self.cfg
    }

    /// Per-object mark-access counts (the Fig. 21a distribution).
    pub fn access_counts(&self) -> &HashMap<u64, u32> {
        &self.access_counts
    }

    /// Injects background mutator traffic during the mark pass: one
    /// 64-byte CPU read every `period` cycles (0 disables). Models the
    /// application sharing the memory system with a concurrent
    /// collection (§VII Bandwidth Throttling).
    pub fn set_background_traffic(&mut self, period: Cycle) {
        self.bg_period = period;
    }

    /// Latencies the background traffic observed (empty when disabled).
    pub fn background_latencies(&self) -> &[Cycle] {
        &self.bg_latencies
    }

    /// Shared-cache statistics (only in the [`CacheTopology::Shared`]
    /// configuration; Fig. 18a).
    pub fn shared_cache_stats(&self) -> Option<&tracegc_mem::CacheStats> {
        self.shared_cache.as_ref().map(|c| c.stats())
    }

    /// Dedicated PTW-cache statistics (partitioned topology).
    pub fn ptw_cache_stats(&self) -> &tracegc_mem::CacheStats {
        self.ptw_cache.stats()
    }

    /// Attaches fault injectors from `plan`: the traversal-site stream
    /// feeds the marker datapath (reference and header corruption) and
    /// the PTW-site stream feeds the unit's translator (injected page
    /// faults). Injectors persist across passes; all-zero rates never
    /// draw and leave the run byte-identical.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        self.fault = Some(plan.injector(FaultSite::Traversal));
        self.translator
            .set_fault_injector(plan.injector(FaultSite::Ptw));
    }

    /// The latched trap, if the unit froze mid-pass.
    pub fn trap(&self) -> Option<Trap> {
        self.trap
    }

    /// Marker-datapath fault statistics (`None` without an injector).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(|f| f.stats())
    }

    /// Translator (PTW-site) fault statistics (`None` without an
    /// injector).
    pub fn ptw_fault_stats(&self) -> Option<&FaultStats> {
        self.translator.fault_stats()
    }

    /// Latches `t` (the first trap wins) — the hardware's trap-cause
    /// register. The pipeline freezes: [`TraversalUnit::step`] refuses
    /// to advance and [`TraversalUnit::is_complete`] reports done.
    fn raise_trap(&mut self, t: Trap) {
        if self.trap.is_none() {
            if let Some(trace) = &mut self.trace {
                trace.record(t.at, "traversal", "trap", t.va);
            }
            self.trap = Some(t);
        }
    }

    fn translate(
        &mut self,
        who: Requester,
        va: u64,
        now: Cycle,
        mem: &mut MemSystem,
        heap: &Heap,
    ) -> Result<(u64, Cycle), Trap> {
        let cache = match self.cfg.topology {
            CacheTopology::Partitioned => &mut self.ptw_cache,
            CacheTopology::Shared => self.shared_cache.as_mut().expect("shared cache"),
        };
        self.translator
            .translate_with_cache(who, va, now, mem, &heap.phys, cache)
            .map_err(|e| Trap::new(TrapKind::PageFault, e.va, now))
    }

    /// Issues a data request through the configured topology; returns the
    /// response-ready cycle.
    #[allow(clippy::too_many_arguments)]
    fn data_access(
        &mut self,
        pa: u64,
        bytes: u32,
        write: bool,
        amo: bool,
        source: Source,
        at: Cycle,
        mem: &mut MemSystem,
    ) -> Cycle {
        match &mut self.shared_cache {
            Some(cache) => {
                let mut backing = MemBacking { mem, source };
                cache.access(pa, write || amo, at, source, &mut backing)
            }
            None => {
                let req = if amo {
                    MemReq::amo(pa, source)
                } else if write {
                    MemReq::write(pa, bytes, source)
                } else {
                    MemReq::read(pa, bytes, source)
                };
                mem.schedule(&req, at)
            }
        }
    }

    /// Runs a complete mark pass starting at cycle `start`.
    ///
    /// A thin driver: schedules a single [`MarkEngine`] under the
    /// lockstep policy, which reproduces the historical hand-rolled
    /// step loop cycle-for-cycle and stall-ledger-exactly (proven by
    /// `tests/engine_equivalence.rs`).
    ///
    /// On return, exactly the objects reachable from the heap's roots
    /// carry mark bits (verified against the oracle in tests).
    ///
    /// # Panics
    ///
    /// Panics if the pass faults (trap, memory timeout, deadlock); use
    /// [`TraversalUnit::try_run_mark`] to degrade gracefully instead.
    ///
    /// [`MarkEngine`]: crate::engine::MarkEngine
    pub fn run_mark(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        start: Cycle,
    ) -> TraversalResult {
        self.try_run_mark(heap, mem, start)
            .unwrap_or_else(|e| panic!("traversal unit fault: {e}"))
    }

    /// Fallible variant of [`TraversalUnit::run_mark`]: a fault latched
    /// by the memory system, an injected or genuine datapath fault, or
    /// a scheduler deadlock surfaces as a [`SimError`] with the
    /// pipeline frozen in its architected state. The driver can then
    /// recover the outstanding work via
    /// [`TraversalUnit::drain_architected_state`] and hand it to the
    /// CPU's software-fallback mark path.
    pub fn try_run_mark(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        start: Cycle,
    ) -> Result<TraversalResult, SimError> {
        self.begin(heap, start);
        let end = {
            let mut ctx = SocCtx::single(mem, heap);
            let mut engine = crate::engine::MarkEngine::new(self, 0);
            let report =
                Scheduler::new(Policy::Lockstep).try_run(&mut [&mut engine], &mut ctx, start)?;
            report.end
        };
        // A fault latched by the memory system on the pass's final
        // access is only observable after the scheduler returns.
        if let Some(e) = mem.take_fault() {
            self.raise_trap(Trap::from_sim_error(&e));
        }
        if let Some(t) = self.trap {
            return Err(t.into());
        }
        Ok(self.result_at(start, end))
    }

    /// Charges `n` cycles of forward progress to this pass's ledger
    /// (called by the scheduler via [`MarkEngine`]'s `note_busy`).
    ///
    /// [`MarkEngine`]: crate::engine::MarkEngine
    pub fn charge_busy(&mut self, n: u64) {
        self.stalls.busy(n);
    }

    /// Charges `span` stalled cycles starting at `now` to `reason`,
    /// recording the span in the event trace when enabled (called by the
    /// scheduler via [`MarkEngine`]'s `note_stall`).
    ///
    /// [`MarkEngine`]: crate::engine::MarkEngine
    pub fn charge_stall(&mut self, now: Cycle, reason: StallReason, span: u64) {
        self.stalls.stall(reason, span);
        if let Some(trace) = &mut self.trace {
            trace.record(now, "traversal", reason.stall_kind(), span);
        }
    }

    /// Attributes a hypothetical no-progress cycle at `now` to its
    /// bottleneck (public face of the stall classifier, for schedulers).
    pub fn stall_reason(&self, now: Cycle) -> StallReason {
        self.classify_stall(now)
    }

    /// This pass's cycle ledger so far.
    pub fn stalls(&self) -> &StallAccounting {
        &self.stalls
    }

    /// Starts a mark pass: loads the root-region chunks and resets the
    /// per-pass machinery. Use with [`TraversalUnit::step`] when driving
    /// the unit concurrently with a mutator; [`TraversalUnit::run_mark`]
    /// wraps the whole loop for stop-the-world passes.
    pub fn begin(&mut self, heap: &Heap, start: Cycle) {
        self.begin_roots(heap);
        self.bg_next = start;
        self.last_issue_at = None;
        self.marker_blocked_until = 0;
        self.tracer_blocked_until = 0;
        // Per-pass, like `cycles()`: the accounting invariant is against
        // this pass's span, not the unit's lifetime. The fault injector,
        // like the hardware it models, persists across passes.
        self.stalls = StallAccounting::default();
        self.trap = None;
        self.trap_pending_ref = None;
        self.pass_start = start;
    }

    /// Attributes a no-progress cycle at `now` to its bottleneck.
    ///
    /// Priority order: the throttle pacing gate (it masks everything
    /// downstream), a blocking-TLB freeze (walk or walker-queue wait),
    /// queue back-pressure, then outstanding memory responses; a unit
    /// with none of these is idle (only possible mid-pass when a
    /// concurrent driver has nothing injected yet).
    fn classify_stall(&self, now: Cycle) -> StallReason {
        let throttled = self.cfg.min_issue_interval > 0
            && self
                .last_issue_at
                .is_some_and(|t| now < t + self.cfg.min_issue_interval);
        if throttled {
            return StallReason::Throttled;
        }
        if now < self.marker_blocked_until {
            return self.marker_block_reason;
        }
        if now < self.tracer_blocked_until {
            return self.tracer_block_reason;
        }
        let tracer_has_work = self.trace_state.is_some() || !self.tracerq.is_empty();
        let marker_parked = self
            .marker_slots
            .iter()
            .any(|s| matches!(s, MarkerSlot::Deliver { .. }));
        let tracer_gated = tracer_has_work
            && (self.markq.throttled()
                || self.deliver_buf.len() > 4 * self.markq.entries_per_chunk());
        if marker_parked || tracer_gated {
            return StallReason::QueueFull;
        }
        let mem_pending = self.roots.pending.is_some()
            || !self.responses.is_empty()
            || self.markq.next_event().is_some()
            || self
                .marker_slots
                .iter()
                .any(|s| matches!(s, MarkerSlot::Busy { .. }));
        if mem_pending {
            return StallReason::MemLatency;
        }
        StallReason::Idle
    }

    /// The event ring (if tracing is enabled), leaving tracing active.
    pub fn take_trace(&mut self) -> Option<EventTrace> {
        let capacity = self.trace.as_ref()?.capacity();
        self.trace.replace(EventTrace::new(capacity))
    }

    /// Advances the unit by one clock cycle; returns whether anything
    /// happened (when `false`, skip to [`TraversalUnit::next_event_at`]).
    pub fn step(&mut self, now: Cycle, heap: &mut Heap, mem: &mut MemSystem) -> bool {
        // A latched trap freezes the whole pipeline until the driver
        // drains the architected state and restarts the pass.
        if self.trap.is_some() {
            return false;
        }
        // Poll the memory system's fault latch (uncorrectable ECC or an
        // exhausted retry budget on one of our requests) and escalate.
        if let Some(e) = mem.take_fault() {
            self.raise_trap(Trap::from_sim_error(&e));
            return true;
        }
        // The driver-programmed per-request deadline (fleet timeout):
        // a pass that overruns its cycle budget traps exactly at the
        // deadline under both pacings — lockstep steps every cycle and
        // fast-forward's hop is clamped by `next_event_at` below.
        if self.cfg.mark_budget > 0 && now >= self.pass_start + self.cfg.mark_budget {
            self.raise_trap(Trap::new(TrapKind::RequestTimeout, 0, now));
            return true;
        }
        // Expire pipeline freezes and the throttle gate once their
        // deadline passes, so `next_event_at` never reports a stale
        // (past) event: a stale minimum masks the unit's real future
        // events and degrades scheduler skip-ahead into a +1 crawl.
        if self.marker_blocked_until <= now {
            self.marker_blocked_until = 0;
        }
        if self.tracer_blocked_until <= now {
            self.tracer_blocked_until = 0;
        }
        if self.cfg.min_issue_interval > 0
            && self
                .last_issue_at
                .is_some_and(|t| t + self.cfg.min_issue_interval <= now)
        {
            self.last_issue_at = None;
        }
        let mut progress = false;
        // Background mutator traffic shares the memory controller.
        if self.bg_period > 0 {
            while self.bg_next <= now {
                let addr = 0x100_0000 + (self.bg_next % 8192) * 64;
                let done = mem.schedule(&MemReq::read(addr & !63, 64, Source::Cpu), self.bg_next);
                self.bg_latencies.push(done - self.bg_next);
                self.bg_next += self.bg_period;
            }
        }
        // §VII throttling: the unit may be capped below full issue
        // rate to leave residual bandwidth to the application.
        let throttled_cycle = self.cfg.min_issue_interval > 0
            && self
                .last_issue_at
                .is_some_and(|t| now < t + self.cfg.min_issue_interval);
        self.port_free = !throttled_cycle;
        // Drain write-barrier injections into the mark queue.
        while let Some(&va) = self.injected.front() {
            if self.markq.enqueue(va) {
                self.injected.pop_front();
                progress = true;
            } else {
                break;
            }
        }
        // The spill engine acts first ("we always give priority to
        // memory requests from outQ").
        {
            // Split borrows: the shared cache is optional.
            let shared = self.shared_cache.as_mut();
            let mut port = self.port_free;
            let spill_before = self.trace.is_some().then(|| self.markq.stats());
            progress |= self.markq.tick(now, mem, &mut heap.phys, shared, &mut port);
            self.port_free = port;
            if let (Some(before), Some(trace)) = (spill_before, &mut self.trace) {
                let after = self.markq.stats();
                if after.spill_writes > before.spill_writes {
                    trace.record(
                        now,
                        "markq",
                        "spill_write",
                        after.spill_writes - before.spill_writes,
                    );
                }
                if after.spill_reads > before.spill_reads {
                    trace.record(
                        now,
                        "markq",
                        "spill_read",
                        after.spill_reads - before.spill_reads,
                    );
                }
            }
        }
        // Spill-region exhaustion latched during the markq tick is an
        // architectural limit violation: trap before issuing more work.
        if self.markq.spill_exhausted() {
            let base = self.markq.spill_base();
            self.raise_trap(Trap::new(TrapKind::SpillExhausted, base, now));
            return true;
        }
        // Each stage can trap; the pipeline freezes the same cycle so
        // no later stage consumes state the driver needs to recover.
        progress |= self.tick_roots(now, mem, heap);
        if self.trap.is_some() {
            return true;
        }
        progress |= self.tick_marker_deliver(now);
        if self.trap.is_some() {
            return true;
        }
        progress |= self.tick_marker_issue(now, mem, heap);
        if self.trap.is_some() {
            return true;
        }
        progress |= self.tick_tracer_land(now);
        progress |= self.tick_tracer_deliver();
        progress |= self.tick_tracer_issue(now, mem, heap);
        if self.trap.is_some() {
            return true;
        }

        if !self.port_free && !throttled_cycle {
            self.port_busy_cycles += 1;
            self.last_issue_at = Some(now);
        }
        progress
    }

    /// Feeds a reference from a concurrent mutator's write barrier into
    /// the unit (§IV-D: "The traversal unit writes all references that
    /// are written into this region to the mark queue").
    pub fn inject_reference(&mut self, va: u64) {
        if va != 0 {
            self.injected.push_back(va);
        }
    }

    /// Whether the pass has fully drained (queues, slots, responses and
    /// injected barrier references) — or trapped, in which case the
    /// frozen unit makes no further progress and the driver must check
    /// [`TraversalUnit::trap`].
    pub fn is_complete(&self) -> bool {
        self.trap.is_some() || (self.is_done() && self.injected.is_empty())
    }

    /// Earliest pending completion, for idle skip-ahead while stepping.
    ///
    /// Upholds the scheduler's `next_event_at` contract: the minimum
    /// over every wake source — spill-engine fills, the pending root
    /// fetch, busy marker slots, queued tracer responses, the
    /// marker/tracer pipeline freezes, the §VII issue-throttle expiry
    /// and the next background-traffic slot — so the unit never changes
    /// state strictly before the reported cycle, and (because
    /// [`TraversalUnit::step`] expires stale freeze/throttle deadlines
    /// up front) never reports a cycle already in the past.
    pub fn next_event_at(&self) -> Option<Cycle> {
        let inner = self.next_event();
        // The `mark_budget` deadline is a wake source like any other:
        // stepping the unit there raises the timeout trap (a real state
        // change), so reporting it keeps the fast-forward hop honest —
        // and wakes a unit that is otherwise stalled with no event of
        // its own, turning a would-be deadlock into a trap.
        if self.trap.is_none() && self.cfg.mark_budget > 0 {
            let deadline = self.pass_start + self.cfg.mark_budget;
            return Some(inner.map_or(deadline, |e| e.min(deadline)));
        }
        inner
    }

    /// Builds the result for a pass driven externally via
    /// [`TraversalUnit::step`] (after [`TraversalUnit::is_complete`]).
    pub fn result_at(&self, start: Cycle, now: Cycle) -> TraversalResult {
        TraversalResult {
            start,
            end: now,
            objects_marked: self.objects_marked,
            already_marked: self.already_marked,
            filtered: self.filtered,
            refs_enqueued: self.refs_enqueued,
            port_busy_cycles: self.port_busy_cycles,
            markq: self.markq.stats(),
            translator: self.translator.stats(),
            stalls: self.stalls,
        }
    }

    /// Drains the unit's architected state after a trap: every
    /// reference still owed a visit, collected from all pipeline
    /// registers and queues. Together with the mark bitmap already in
    /// heap memory, this is everything the CPU's software-fallback path
    /// (`Cpu::resume_mark_from`) needs to complete the mark.
    ///
    /// The list is conservative: it may contain duplicates, references
    /// to objects already marked but not yet fully traced (the fallback
    /// re-traces them — marking is monotonic, so this terminates), the
    /// original uncorrupted value of a faulting queue entry, and — for
    /// a genuinely corrupt heap — invalid words the fallback's software
    /// sanitizer skips. Only null entries are dropped here.
    pub fn drain_architected_state(&mut self, heap: &Heap) -> Vec<u64> {
        let mut pending = Vec::new();
        // The faulting-entry register: the original (uncorrupted) value
        // of the queue entry whose issue trapped.
        if let Some(raw) = self.trap_pending_ref.take() {
            pending.push(raw);
        }
        // Mark queue: main, inQ, outQ and every spilled chunk.
        pending.extend(self.markq.drain_all(&heap.phys));
        // Root reader: unissued chunks (functionally readable), an
        // in-flight read, and buffered roots.
        for (addr, size) in std::mem::take(&mut self.roots.chunks) {
            for i in 0..u64::from(size) / WORD {
                pending.push(heap.read_va(addr + i * WORD));
            }
        }
        if let Some((_, refs)) = self.roots.pending.take() {
            pending.extend(refs);
        }
        pending.extend(self.roots.buf.drain(..));
        // Marker slots: objects whose mark AMO already landed
        // functionally but whose trace was never handed over.
        for slot in &mut self.marker_slots {
            match *slot {
                MarkerSlot::Busy { va, .. } | MarkerSlot::Deliver { va, .. } => pending.push(va),
                MarkerSlot::Free => {}
            }
            *slot = MarkerSlot::Free;
        }
        // Tracer queue and the in-flight trace: hand back the whole
        // object; partial tracing progress is simply redone.
        while let Some(job) = self.tracerq.pop() {
            pending.push(job.obj);
        }
        if let Some(state) = self.trace_state.take() {
            pending.push(match state {
                // In the bidirectional layout `end` is the object
                // header's address (the ref section precedes it).
                TraceState::Bidi { end, .. } => end,
                TraceState::ConvTib { obj, .. } | TraceState::ConvFields { obj, .. } => obj,
            });
        }
        // Undelivered tracer responses and buffered references.
        while let Some(Reverse(resp)) = self.responses.pop() {
            pending.extend(resp.refs);
        }
        pending.extend(self.deliver_buf.drain(..));
        pending.extend(self.injected.drain(..));
        pending.retain(|&va| va != 0);
        pending
    }

    fn begin_roots(&mut self, heap: &Heap) {
        let base = heap.spaces().hwgc_base;
        let count = heap.read_va(base);
        self.roots.chunks = decompose_aligned(base + WORD, count * WORD)
            .into_iter()
            .collect();
        self.roots.pending = None;
        self.roots.buf.clear();
    }

    fn tick_roots(&mut self, now: Cycle, mem: &mut MemSystem, heap: &Heap) -> bool {
        let mut progress = false;
        // Push buffered roots into the mark queue.
        while let Some(&va) = self.roots.buf.front() {
            if va == 0 {
                self.roots.buf.pop_front();
                progress = true;
                continue;
            }
            if self.markq.enqueue(va) {
                self.roots.buf.pop_front();
                progress = true;
            } else {
                break;
            }
        }
        // Land a finished read.
        if let Some((done, _)) = self.roots.pending {
            if done <= now {
                let (_, refs) = self.roots.pending.take().expect("pending root read");
                self.roots.buf.extend(refs);
                progress = true;
            }
            return progress;
        }
        // Issue the next chunk (consumes the shared port).
        if !self.port_free {
            return progress;
        }
        if let Some((addr, size)) = self.roots.chunks.pop_front() {
            self.port_free = false;
            let (pa, ready) = match self.translate(Requester::Marker, addr, now, mem, heap) {
                Ok(v) => v,
                Err(t) => {
                    // Re-park the chunk so the architected-state drain
                    // still recovers its roots.
                    self.roots.chunks.push_front((addr, size));
                    self.raise_trap(t);
                    return true;
                }
            };
            let done = self.data_access(pa, size, false, false, Source::RootReader, ready, mem);
            let refs: Vec<u64> = (0..size as u64 / WORD)
                .map(|i| heap.read_va(addr + i * WORD))
                .collect();
            self.roots.pending = Some((done, refs));
            progress = true;
        }
        progress
    }

    /// Hands one completed mark response to the tracer queue.
    fn tick_marker_deliver(&mut self, now: Cycle) -> bool {
        // Newly completed responses first: they may free their slot
        // without needing tracer-queue space (already marked / no refs).
        let landed = self
            .marker_slots
            .iter()
            .position(|s| matches!(s, MarkerSlot::Busy { done, .. } if *done <= now));
        if let Some(idx) = landed {
            let (va, old) = match self.marker_slots[idx] {
                MarkerSlot::Busy { va, old, .. } => (va, old),
                _ => unreachable!("matched Busy above"),
            };
            // Injected header corruption forces the reference count past
            // any plausible value; the sanity check below must catch it.
            let corrupted = self.fault.as_mut().is_some_and(|f| f.corrupt_header());
            let observed = if corrupted {
                old | ((u64::from(MAX_PLAUSIBLE_NREFS) + 1) << 2)
            } else {
                old
            };
            let header = Header::from_raw(observed);
            if !header.is_live() || header.nrefs() > MAX_PLAUSIBLE_NREFS {
                // Hold the *uncorrupted* response in the slot so the
                // architected-state drain recovers the object, then
                // freeze: a dead tag bit or an absurd count means the
                // header word cannot be trusted.
                self.marker_slots[idx] = MarkerSlot::Deliver { va, old };
                self.raise_trap(Trap::new(TrapKind::HeaderCorrupt, va, now));
                return true;
            }
            if header.is_marked() || header.nrefs() == 0 {
                // Nothing to trace; free the slot.
                self.marker_slots[idx] = MarkerSlot::Free;
                return true;
            }
            let job = TraceJob {
                obj: va,
                nrefs: header.nrefs(),
            };
            if self.tracerq.try_push(job).is_ok() {
                self.marker_slots[idx] = MarkerSlot::Free;
            } else {
                // Hold the response: back-pressure on the marker.
                self.marker_slots[idx] = MarkerSlot::Deliver { va, old };
            }
            return true;
        }
        // Retry a parked delivery; a failed retry is *not* progress (the
        // queue is still full), so idle cycles can skip ahead and real
        // deadlocks are detected instead of spinning.
        for slot in &mut self.marker_slots {
            let (va, old) = match *slot {
                MarkerSlot::Deliver { va, old } => (va, old),
                _ => continue,
            };
            let header = Header::from_raw(old);
            let job = TraceJob {
                obj: va,
                nrefs: header.nrefs(),
            };
            if self.tracerq.try_push(job).is_ok() {
                *slot = MarkerSlot::Free;
                return true;
            }
            return false;
        }
        false
    }

    /// Issues one mark AMO from the mark queue.
    fn tick_marker_issue(&mut self, now: Cycle, mem: &mut MemSystem, heap: &mut Heap) -> bool {
        if !self.port_free || now < self.marker_blocked_until {
            return false;
        }
        let Some(slot_idx) = self
            .marker_slots
            .iter()
            .position(|s| matches!(s, MarkerSlot::Free))
        else {
            return false;
        };
        let Some(raw) = self.markq.dequeue() else {
            return false;
        };
        // The queue-to-marker datapath is where injected single-bit
        // reference corruption lands (flipping an alignment bit or a
        // bit beyond every mapped space — see the detectability
        // contract in `tracegc_sim::fault`).
        let va = match &mut self.fault {
            Some(f) => f.corrupt_ref(raw).unwrap_or(raw),
            None => raw,
        };
        // The architectural sanitizer: every reference is checked for
        // alignment and against the space map before it may reach the
        // AMO datapath. This catches injected corruption and any
        // genuinely corrupt queue entry alike; the original entry is
        // preserved in the faulting-entry register for the fallback.
        if !va.is_multiple_of(WORD) {
            self.trap_pending_ref = Some(raw);
            self.raise_trap(Trap::new(TrapKind::RefMisaligned, va, now));
            return true;
        }
        if !heap.spaces().in_traced_space(va) {
            self.trap_pending_ref = Some(raw);
            self.raise_trap(Trap::new(TrapKind::RefOutOfBounds, va, now));
            return true;
        }
        *self.access_counts.entry(va).or_insert(0) += 1;
        if self.markbit.filter(va) {
            self.filtered += 1;
            return true;
        }
        self.port_free = false;
        let before = self.translator.stats();
        let (pa, ready) = match self.translate(Requester::Marker, va, now, mem, heap) {
            Ok(v) => v,
            Err(t) => {
                self.trap_pending_ref = Some(raw);
                self.raise_trap(t);
                return true;
            }
        };
        let after = self.translator.stats();
        if self.cfg.tlb.blocking_requesters && after.walks > before.walks {
            // Blocking TLB: the marker pipeline freezes for the walk —
            // behind the busy walker first, if it had to queue.
            self.marker_blocked_until = ready;
            self.marker_block_reason = if after.walker_wait_cycles > before.walker_wait_cycles {
                StallReason::PtwBusy
            } else {
                StallReason::TlbMiss
            };
        }
        // Functional fetch-or now; timing decided by what the old value
        // was (write-back elision for already-marked objects, §V-C).
        let old = heap.phys.fetch_or_u64(pa, HEADER_MARK_BIT);
        let was_marked = Header::from_raw(old).is_marked();
        let done = self.data_access(pa, 8, false, !was_marked, Source::Marker, ready, mem);
        if was_marked {
            self.already_marked += 1;
        } else {
            self.objects_marked += 1;
        }
        if let Some(trace) = &mut self.trace {
            trace.record(now, "marker", "mark_issue", va);
        }
        self.marker_slots[slot_idx] = MarkerSlot::Busy { done, va, old };
        true
    }

    /// Lands the earliest due tracer response into the delivery buffer.
    fn tick_tracer_land(&mut self, now: Cycle) -> bool {
        if let Some(Reverse(resp)) = self.responses.peek() {
            if resp.done <= now {
                let Reverse(resp) = self.responses.pop().expect("peeked");
                self.deliver_buf.extend(resp.refs);
                return true;
            }
        }
        false
    }

    /// Moves delivered references into the mark queue (up to one spill
    /// chunk worth per cycle).
    fn tick_tracer_deliver(&mut self) -> bool {
        let mut moved = 0;
        let budget = self.markq.entries_per_chunk();
        while moved < budget {
            let Some(&va) = self.deliver_buf.front() else {
                break;
            };
            if self.markq.enqueue(va) {
                self.deliver_buf.pop_front();
                self.refs_enqueued += 1;
                moved += 1;
            } else {
                break;
            }
        }
        moved > 0
    }

    /// Issues one tracer memory request (Fig. 14's request generator).
    fn tick_tracer_issue(&mut self, now: Cycle, mem: &mut MemSystem, heap: &mut Heap) -> bool {
        if !self.port_free || now < self.tracer_blocked_until {
            return false;
        }
        if self.markq.throttled() || self.deliver_buf.len() > 4 * self.markq.entries_per_chunk() {
            return false;
        }
        if self.trace_state.is_none() {
            let Some(job) = self.tracerq.pop() else {
                return false;
            };
            self.trace_state = Some(match heap.layout() {
                LayoutKind::Bidirectional => {
                    let obj = tracegc_heap::ObjRef::new(job.obj);
                    let base = bidi::ref_section_base(obj, job.nrefs);
                    TraceState::Bidi {
                        cursor: base,
                        end: job.obj,
                    }
                }
                LayoutKind::Conventional => TraceState::ConvTib {
                    obj: job.obj,
                    nrefs: job.nrefs,
                },
            });
        }

        self.port_free = false;
        match self.trace_state.take().expect("set above") {
            TraceState::Bidi { cursor, end } => {
                let remaining = end - cursor;
                debug_assert!(remaining > 0 && remaining % WORD == 0);
                // Largest aligned power-of-two transfer, clipped at the
                // page boundary ("the request is interrupted and
                // re-enqueued to pass through the TLB again", §V-C).
                let align = 1u64 << cursor.trailing_zeros().min(6);
                let fit = if remaining >= 64 {
                    64
                } else {
                    1u64 << (63 - remaining.leading_zeros())
                };
                let to_page_end = PAGE_SIZE - (cursor % PAGE_SIZE);
                let size = align.min(fit).min(to_page_end).max(WORD);
                let before = self.translator.stats();
                let (pa, ready) = match self.translate(Requester::Tracer, cursor, now, mem, heap) {
                    Ok(v) => v,
                    Err(t) => {
                        // Restore the cursor: the drain hands the whole
                        // object back to the fallback for re-tracing.
                        self.trace_state = Some(TraceState::Bidi { cursor, end });
                        self.raise_trap(t);
                        return true;
                    }
                };
                self.block_tracer_on_walk(&before, ready);
                let done =
                    self.data_access(pa, size as u32, false, false, Source::Tracer, ready, mem);
                let refs: Vec<u64> = (0..size / WORD)
                    .map(|i| heap.read_va(cursor + i * WORD))
                    .filter(|&r| r != 0)
                    .collect();
                self.push_response(done, refs);
                if let Some(trace) = &mut self.trace {
                    trace.record(now, "tracer", "trace_issue", size);
                }
                let next = cursor + size;
                if next < end {
                    self.trace_state = Some(TraceState::Bidi { cursor: next, end });
                }
                true
            }
            TraceState::ConvTib { obj, nrefs } => {
                // Load the TIB pointer (extra access #1), then the offset
                // words (extra access #2) — the cacheless-cost the
                // bidirectional layout removes (§IV-A.I).
                let objref = tracegc_heap::ObjRef::new(obj);
                let tib_va = conv::tib_slot(objref);
                let before = self.translator.stats();
                let (pa, ready) = match self.translate(Requester::Tracer, tib_va, now, mem, heap) {
                    Ok(v) => v,
                    Err(t) => {
                        self.trace_state = Some(TraceState::ConvTib { obj, nrefs });
                        self.raise_trap(t);
                        return true;
                    }
                };
                self.block_tracer_on_walk(&before, ready);
                let t1 = self.data_access(pa, 8, false, false, Source::Tracer, ready, mem);
                let tib = heap.read_va(tib_va);
                // Offset words, dependent on the TIB pointer.
                let mut t2 = t1;
                let mut offsets = VecDeque::with_capacity(nrefs as usize);
                for (addr, size) in decompose_aligned(tib + WORD, nrefs as u64 * WORD) {
                    let (pa, ready) = match self.translate(Requester::Tracer, addr, t2, mem, heap) {
                        Ok(v) => v,
                        Err(t) => {
                            // Restart the whole TIB walk on recovery.
                            self.trace_state = Some(TraceState::ConvTib { obj, nrefs });
                            self.raise_trap(t);
                            return true;
                        }
                    };
                    t2 = self.data_access(pa, size, false, false, Source::Tracer, ready, mem);
                    for i in 0..size as u64 / WORD {
                        offsets.push_back(heap.read_va(addr + i * WORD) as u32);
                    }
                }
                // An empty response carries the dependency time forward.
                self.push_response(t2, Vec::new());
                self.trace_state = Some(TraceState::ConvFields { obj, offsets });
                true
            }
            TraceState::ConvFields { obj, mut offsets } => {
                let Some(offset) = offsets.pop_front() else {
                    return true; // object finished
                };
                let objref = tracegc_heap::ObjRef::new(obj);
                let field_va = conv::field_slot(objref, offset);
                let before = self.translator.stats();
                let (pa, ready) = match self.translate(Requester::Tracer, field_va, now, mem, heap)
                {
                    Ok(v) => v,
                    Err(t) => {
                        offsets.push_front(offset);
                        self.trace_state = Some(TraceState::ConvFields { obj, offsets });
                        self.raise_trap(t);
                        return true;
                    }
                };
                self.block_tracer_on_walk(&before, ready);
                let done = self.data_access(pa, 8, false, false, Source::Tracer, ready, mem);
                let raw = heap.read_va(field_va);
                let refs = if raw != 0 { vec![raw] } else { Vec::new() };
                self.push_response(done, refs);
                if !offsets.is_empty() {
                    self.trace_state = Some(TraceState::ConvFields { obj, offsets });
                }
                true
            }
        }
    }

    /// Freezes the tracer when the translation that produced `before` →
    /// current stats walked, classifying the freeze as a walk of its own
    /// ([`StallReason::TlbMiss`]) or a wait behind the busy walker
    /// ([`StallReason::PtwBusy`]).
    fn block_tracer_on_walk(&mut self, before: &tracegc_vmem::TranslatorStats, ready: Cycle) {
        let after = self.translator.stats();
        if self.cfg.tlb.blocking_requesters && after.walks > before.walks {
            self.tracer_blocked_until = ready;
            self.tracer_block_reason = if after.walker_wait_cycles > before.walker_wait_cycles {
                StallReason::PtwBusy
            } else {
                StallReason::TlbMiss
            };
        }
    }

    fn push_response(&mut self, done: Cycle, refs: Vec<u64>) {
        self.resp_seq += 1;
        self.responses.push(Reverse(TraceResp {
            done,
            seq: self.resp_seq,
            refs,
        }));
    }

    fn is_done(&self) -> bool {
        self.roots.done()
            && self.markq.is_empty()
            && self.tracerq.is_empty()
            && self.trace_state.is_none()
            && self.responses.is_empty()
            && self.deliver_buf.is_empty()
            && self
                .marker_slots
                .iter()
                .all(|s| matches!(s, MarkerSlot::Free))
    }

    fn next_event(&self) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        if let Some(t) = self.markq.next_event() {
            consider(t);
        }
        if let Some((t, _)) = self.roots.pending {
            consider(t);
        }
        for s in &self.marker_slots {
            if let MarkerSlot::Busy { done, .. } = s {
                consider(*done);
            }
        }
        if let Some(Reverse(r)) = self.responses.peek() {
            consider(r.done);
        }
        if self.marker_blocked_until > 0 {
            consider(self.marker_blocked_until);
        }
        if self.tracer_blocked_until > 0 {
            consider(self.tracer_blocked_until);
        }
        if self.cfg.min_issue_interval > 0 {
            if let Some(t) = self.last_issue_at {
                consider(t + self.cfg.min_issue_interval);
            }
        }
        if self.bg_period > 0 {
            consider(self.bg_next);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegc_heap::verify::check_marks_match_reachability;
    use tracegc_heap::{HeapConfig, ObjRef};

    /// A heap whose live graph is a binary tree with cross edges — wide
    /// BFS frontiers, like real heaps (the paper notes "most of the
    /// parallelism in the heap traversal exists at the beginning").
    fn build_heap(n: usize, layout: LayoutKind) -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 256 << 20,
            layout,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..n)
            .map(|i| h.alloc(3, (i % 6) as u32, false).unwrap())
            .collect();
        let live = n * 3 / 5;
        for i in 0..live {
            if 2 * i + 1 < live {
                h.set_ref(objs[i], 0, Some(objs[2 * i + 1]));
            }
            if 2 * i + 2 < live {
                h.set_ref(objs[i], 1, Some(objs[2 * i + 2]));
            }
            h.set_ref(objs[i], 2, Some(objs[(i * 31 + 7) % live]));
        }
        for i in live..n - 1 {
            h.set_ref(objs[i], 0, Some(objs[i + 1]));
        }
        h.set_roots(&[objs[0]]);
        h
    }

    #[test]
    fn unit_marks_exactly_the_reachable_set() {
        let mut heap = build_heap(2000, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
        let result = unit.run_mark(&mut heap, &mut mem, 0);
        check_marks_match_reachability(&heap).unwrap();
        assert_eq!(result.objects_marked, 1200);
        assert!(result.cycles() > 0);
    }

    #[test]
    fn unit_is_faster_than_serialized_marking() {
        // With 16 slots and decoupled tracing, the pass must take far
        // fewer cycles than objects * DRAM latency.
        let mut heap = build_heap(2000, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
        let result = unit.run_mark(&mut heap, &mut mem, 0);
        let serial_floor = result.objects_marked * 40;
        assert!(
            result.cycles() < serial_floor,
            "no memory-level parallelism: {} >= {}",
            result.cycles(),
            serial_floor
        );
    }

    #[test]
    fn tiny_mark_queue_still_completes_via_spilling() {
        let mut heap = build_heap(3000, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let cfg = GcUnitConfig {
            markq_entries: 16,
            markq_side: 16,
            ..GcUnitConfig::default()
        };
        let mut unit = TraversalUnit::new(cfg, &mut heap);
        let result = unit.run_mark(&mut heap, &mut mem, 0);
        check_marks_match_reachability(&heap).unwrap();
        assert!(result.markq.spill_writes > 0, "expected spilling");
        assert_eq!(
            result.markq.enqueued, result.markq.dequeued,
            "every enqueued ref must be consumed"
        );
    }

    #[test]
    fn compression_preserves_correctness_and_halves_spill() {
        let run = |compress: bool| {
            let mut heap = build_heap(3000, LayoutKind::Bidirectional);
            let mut mem = MemSystem::ddr3(Default::default());
            let cfg = GcUnitConfig {
                markq_entries: 16,
                markq_side: 16,
                compress,
                ..GcUnitConfig::default()
            };
            let mut unit = TraversalUnit::new(cfg, &mut heap);
            let r = unit.run_mark(&mut heap, &mut mem, 0);
            check_marks_match_reachability(&heap).unwrap();
            r.markq.spill_bytes_written
        };
        let full = run(false);
        let compressed = run(true);
        assert!(compressed > 0 && compressed < full);
    }

    #[test]
    fn markbit_cache_filters_hot_objects() {
        // A hub object referenced by everyone: the cache should filter
        // most of the duplicate marks.
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let hub = h.alloc(0, 0, false).unwrap();
        let objs: Vec<ObjRef> = (0..500).map(|_| h.alloc(2, 0, false).unwrap()).collect();
        for i in 0..500usize {
            h.set_ref(objs[i], 0, Some(hub));
            if i + 1 < 500 {
                h.set_ref(objs[i], 1, Some(objs[i + 1]));
            }
        }
        h.set_roots(&[objs[0]]);
        let mut mem = MemSystem::ddr3(Default::default());
        let cfg = GcUnitConfig {
            markbit_cache: 64,
            ..GcUnitConfig::default()
        };
        let mut unit = TraversalUnit::new(cfg, &mut h);
        let result = unit.run_mark(&mut h, &mut mem, 0);
        check_marks_match_reachability(&h).unwrap();
        assert!(
            result.filtered > 400,
            "hub marks should be filtered: {}",
            result.filtered
        );
    }

    #[test]
    fn access_counts_reflect_popularity() {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let hub = h.alloc(0, 0, false).unwrap();
        let objs: Vec<ObjRef> = (0..100).map(|_| h.alloc(2, 0, false).unwrap()).collect();
        for i in 0..100usize {
            h.set_ref(objs[i], 0, Some(hub));
            if i + 1 < 100 {
                h.set_ref(objs[i], 1, Some(objs[i + 1]));
            }
        }
        h.set_roots(&[objs[0]]);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut h);
        unit.run_mark(&mut h, &mut mem, 0);
        assert_eq!(unit.access_counts()[&hub.addr()], 100);
    }

    #[test]
    fn conventional_layout_marks_correctly_but_slower() {
        let n = 800;
        let run = |layout| {
            let mut heap = build_heap(n, layout);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            let r = unit.run_mark(&mut heap, &mut mem, 0);
            check_marks_match_reachability(&heap).unwrap();
            (r.objects_marked, r.cycles())
        };
        let (bidi_marked, bidi_cycles) = run(LayoutKind::Bidirectional);
        let (conv_marked, conv_cycles) = run(LayoutKind::Conventional);
        assert_eq!(bidi_marked, conv_marked);
        assert!(
            conv_cycles > bidi_cycles,
            "conventional {conv_cycles} should exceed bidirectional {bidi_cycles}"
        );
    }

    #[test]
    fn shared_topology_marks_correctly_and_ptw_dominates_cache() {
        // Large enough that the live set far exceeds the TLB reach
        // (32 + 128 entries x 4 KiB), with randomized edges to kill page
        // locality, as in the paper's 200 MB heaps.
        use tracegc_sim::rng::{Rng, StdRng};
        let n = 40_000;
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 256 << 20,
            ..HeapConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(42);
        let objs: Vec<ObjRef> = (0..n)
            .map(|i| h.alloc(3, (i % 6) as u32, false).unwrap())
            .collect();
        for i in 0..n {
            for slot in 0..3 {
                let target = rng.random_range(0..n);
                h.set_ref(objs[i], slot, Some(objs[target]));
            }
        }
        let _: bool = rng.random();
        h.set_roots(&[objs[0]]);
        let mut heap = h;
        let mut mem = MemSystem::ddr3(Default::default());
        let cfg = GcUnitConfig {
            topology: CacheTopology::Shared,
            ..GcUnitConfig::default()
        };
        let mut unit = TraversalUnit::new(cfg, &mut heap);
        unit.run_mark(&mut heap, &mut mem, 0);
        check_marks_match_reachability(&heap).unwrap();
        let stats = unit.shared_cache_stats().expect("shared cache");
        let ptw = stats.accesses(Source::Ptw);
        let total: u64 = Source::ALL.iter().map(|&s| stats.accesses(s)).sum();
        assert!(ptw > 0 && total > 0);
        // Fig. 18a: the PTW is by far the largest requester at the
        // shared cache (the paper reports ~2/3 of all requests).
        for s in [Source::Marker, Source::Tracer, Source::MarkQueue] {
            assert!(
                ptw > stats.accesses(s),
                "PTW ({ptw}) should exceed {s} ({})",
                stats.accesses(s)
            );
        }
        assert!(
            ptw * 2 > total,
            "PTW should be the majority of shared-cache requests: {ptw}/{total}"
        );
    }

    #[test]
    fn empty_roots_complete_immediately() {
        let mut heap = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let _garbage = heap.alloc(1, 0, false).unwrap();
        heap.set_roots(&[]);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
        let result = unit.run_mark(&mut heap, &mut mem, 0);
        assert_eq!(result.objects_marked, 0);
        assert!(heap.marked_set().is_empty());
    }

    #[test]
    fn stall_accounting_sums_to_pass_cycles() {
        // The central observability invariant: every cycle of the pass is
        // attributed to exactly one bucket.
        for layout in [LayoutKind::Bidirectional, LayoutKind::Conventional] {
            let mut heap = build_heap(2000, layout);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            let result = unit.run_mark(&mut heap, &mut mem, 0);
            assert_eq!(
                result.stalls.total(),
                result.cycles(),
                "busy + stalls must cover the {layout:?} pass exactly"
            );
            assert!(result.stalls.busy_cycles() > 0);
            assert!(result.stalls.total_stalled() > 0, "a DDR3 pass must stall");
        }
    }

    #[test]
    fn trace_ring_records_mark_events_when_enabled() {
        let mut heap = build_heap(500, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let cfg = GcUnitConfig {
            trace: true,
            ..GcUnitConfig::default()
        };
        let mut unit = TraversalUnit::new(cfg, &mut heap);
        let result = unit.run_mark(&mut heap, &mut mem, 0);
        let trace = unit.take_trace().expect("tracing enabled");
        let marks = trace.events().filter(|e| e.kind == "mark_issue").count() as u64;
        assert_eq!(marks, result.objects_marked + result.already_marked);
        // Cycle-ordered and after take the ring starts fresh.
        let mut last = 0;
        for e in trace.events() {
            assert!(e.cycle >= last);
            last = e.cycle;
        }
        assert!(unit.take_trace().expect("still enabled").is_empty());

        let mut heap2 = build_heap(500, LayoutKind::Bidirectional);
        let mut unit2 = TraversalUnit::new(GcUnitConfig::default(), &mut heap2);
        assert!(unit2.take_trace().is_none(), "tracing off by default");
    }

    /// A minimal functional software fallback: sanitize the drained
    /// architected state, re-trace every pending object, and push
    /// children only when newly marked (monotonic marking terminates).
    /// The timed CPU version lives in `tracegc-cpu`; this pins the
    /// *soundness* of the drained state itself.
    fn software_fallback(heap: &mut Heap, pending: Vec<u64>) {
        let mut work: Vec<ObjRef> = pending
            .into_iter()
            .filter(|&va| va != 0 && va % WORD == 0 && heap.spaces().in_traced_space(va))
            .map(ObjRef::new)
            .collect();
        while let Some(obj) = work.pop() {
            heap.mark(obj);
            for r in heap.refs_of(obj) {
                // `Heap::mark` returns the *old* bit: push only the
                // newly marked, so the walk terminates.
                if !heap.mark(r) {
                    work.push(r);
                }
            }
        }
    }

    fn faulted_cfg() -> GcUnitConfig {
        GcUnitConfig::default()
    }

    fn fault_plan(cfg: tracegc_sim::FaultConfig) -> tracegc_sim::FaultPlan {
        tracegc_sim::FaultPlan::new(cfg)
    }

    #[test]
    fn injected_ref_corruption_traps_and_drained_state_completes_the_mark() {
        let mut heap = build_heap(2000, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(faulted_cfg(), &mut heap);
        unit.install_fault_plan(&fault_plan(tracegc_sim::FaultConfig {
            seed: 11,
            corrupt_ref_rate: 0.05,
            ..Default::default()
        }));
        let err = unit
            .try_run_mark(&mut heap, &mut mem, 0)
            .expect_err("a 5% corruption rate must trap within 2000 objects");
        let trap = unit.trap().expect("trap latched");
        assert!(
            matches!(
                trap.kind,
                TrapKind::RefMisaligned | TrapKind::RefOutOfBounds
            ),
            "unexpected trap {trap:?}"
        );
        assert_eq!(err.at(), trap.at);
        // The headline property: mark bitmap + drained state is enough
        // for software to finish, landing on the exact live set.
        let pending = unit.drain_architected_state(&heap);
        assert!(!pending.is_empty(), "mid-pass trap must leave work");
        software_fallback(&mut heap, pending);
        check_marks_match_reachability(&heap).unwrap();
    }

    #[test]
    fn injected_header_corruption_traps_and_recovers() {
        let mut heap = build_heap(1500, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(faulted_cfg(), &mut heap);
        unit.install_fault_plan(&fault_plan(tracegc_sim::FaultConfig {
            seed: 5,
            corrupt_header_rate: 0.02,
            ..Default::default()
        }));
        unit.try_run_mark(&mut heap, &mut mem, 0)
            .expect_err("header corruption must trap");
        assert_eq!(unit.trap().unwrap().kind, TrapKind::HeaderCorrupt);
        let pending = unit.drain_architected_state(&heap);
        software_fallback(&mut heap, pending);
        check_marks_match_reachability(&heap).unwrap();
    }

    #[test]
    fn injected_pte_fault_traps_as_page_fault_and_recovers() {
        let mut heap = build_heap(1500, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(faulted_cfg(), &mut heap);
        unit.install_fault_plan(&fault_plan(tracegc_sim::FaultConfig {
            seed: 9,
            pte_fault_rate: 0.05,
            ..Default::default()
        }));
        unit.try_run_mark(&mut heap, &mut mem, 0)
            .expect_err("PTE faults must trap");
        assert_eq!(unit.trap().unwrap().kind, TrapKind::PageFault);
        assert!(unit.ptw_fault_stats().unwrap().pte_faults > 0);
        let pending = unit.drain_architected_state(&heap);
        software_fallback(&mut heap, pending);
        check_marks_match_reachability(&heap).unwrap();
    }

    #[test]
    fn dropped_responses_escalate_to_a_mem_timeout_trap() {
        let mut heap = build_heap(500, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        mem.set_fault_injector(
            fault_plan(tracegc_sim::FaultConfig {
                seed: 2,
                drop_rate: 1.0,
                ..Default::default()
            })
            .injector(FaultSite::Mem),
        );
        let mut unit = TraversalUnit::new(faulted_cfg(), &mut heap);
        unit.try_run_mark(&mut heap, &mut mem, 0)
            .expect_err("every response dropped: the retry budget must exhaust");
        assert_eq!(unit.trap().unwrap().kind, TrapKind::MemTimeout);
        let pending = unit.drain_architected_state(&heap);
        software_fallback(&mut heap, pending);
        check_marks_match_reachability(&heap).unwrap();
    }

    #[test]
    fn uncorrectable_ecc_escalates_and_recovers() {
        let mut heap = build_heap(500, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        mem.set_fault_injector(
            fault_plan(tracegc_sim::FaultConfig {
                seed: 3,
                bit_flip_rate: 1.0,
                ecc_detect_weight: 0.0,
                ecc_uncorrectable_weight: 1.0,
                ..Default::default()
            })
            .injector(FaultSite::Mem),
        );
        let mut unit = TraversalUnit::new(faulted_cfg(), &mut heap);
        unit.try_run_mark(&mut heap, &mut mem, 0)
            .expect_err("every read poisoned: must escalate");
        assert_eq!(unit.trap().unwrap().kind, TrapKind::EccUncorrectable);
        let pending = unit.drain_architected_state(&heap);
        software_fallback(&mut heap, pending);
        check_marks_match_reachability(&heap).unwrap();
    }

    #[test]
    fn spill_exhaustion_traps_and_recovers() {
        // A spill region of exactly one chunk slot with a tiny main
        // queue: a graph this size must exhaust it.
        let mut heap = build_heap(3000, LayoutKind::Bidirectional);
        let mut mem = MemSystem::ddr3(Default::default());
        let cfg = GcUnitConfig {
            markq_entries: 16,
            markq_side: 16,
            spill_bytes: 64,
            ..GcUnitConfig::default()
        };
        let mut unit = TraversalUnit::new(cfg, &mut heap);
        unit.try_run_mark(&mut heap, &mut mem, 0)
            .expect_err("one-chunk spill region must exhaust");
        assert_eq!(unit.trap().unwrap().kind, TrapKind::SpillExhausted);
        let pending = unit.drain_architected_state(&heap);
        software_fallback(&mut heap, pending);
        check_marks_match_reachability(&heap).unwrap();
    }

    #[test]
    fn zero_rate_plan_leaves_the_pass_identical() {
        let run = |plan: bool| {
            let mut heap = build_heap(1500, LayoutKind::Bidirectional);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(faulted_cfg(), &mut heap);
            if plan {
                unit.install_fault_plan(&fault_plan(tracegc_sim::FaultConfig::zero_rates(99)));
                mem.set_fault_injector(
                    fault_plan(tracegc_sim::FaultConfig::zero_rates(99)).injector(FaultSite::Mem),
                );
            }
            let r = unit.run_mark(&mut heap, &mut mem, 0);
            (r.end, r.objects_marked, r.refs_enqueued, r.stalls.total())
        };
        assert_eq!(run(false), run(true), "zero rates must not perturb timing");
    }

    #[test]
    fn results_are_deterministic() {
        let run = || {
            let mut heap = build_heap(1500, LayoutKind::Bidirectional);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            let r = unit.run_mark(&mut heap, &mut mem, 0);
            (
                r.end,
                r.objects_marked,
                r.refs_enqueued,
                r.markq.spill_writes,
            )
        };
        assert_eq!(run(), run());
    }
}
