//! The GC accelerator: the paper's Traversal Unit and Reclamation Unit.
//!
//! This crate is the primary contribution of the reproduced paper: a
//! small hardware unit, located next to the memory controller and
//! integrated like any DMA-capable device, that performs the mark phase
//! of a tracing collector 4.2× faster than an in-order CPU at 18.5% of
//! its area, and sweeps with parallel block sweepers (Figs. 5, 7, 8).
//!
//! The three ideas that make the traversal unit fast (§IV-A) are all
//! modelled structurally:
//!
//! 1. **Bidirectional object layout** — one fetch-or AMO returns the mark
//!    bit *and* the reference count ([`tracegc_heap::layout`]).
//! 2. **Decoupled marking and tracing** — a [`markq`] feeds a marker with
//!    bounded tag-tracked request slots ([`traversal`]), which feeds a
//!    tracer queue, which feeds a tracer that walks reference sections
//!    with aligned 8–64 B transfers.
//! 3. **Untagged reference tracing** — the tracer holds no request state
//!    and lets responses return in any order, so its memory-level
//!    parallelism is bounded only by the memory system.
//!
//! Supporting structures: mark-queue spilling with `inQ`/`outQ`
//! (Fig. 12), 32-bit address compression (§V-C), a mark-bit cache
//! (Fig. 21), TLBs with a blocking PTW ([`tracegc_vmem`]), the
//! memory-mapped register file the Linux driver programs ([`mmio`]), and
//! the concurrent-GC barrier models of §IV-D ([`barrier`]).
//!
//! # Examples
//!
//! ```
//! use tracegc_heap::{Heap, HeapConfig};
//! use tracegc_hwgc::{GcUnit, GcUnitConfig};
//! use tracegc_mem::MemSystem;
//!
//! let mut heap = Heap::new(HeapConfig::default());
//! let a = heap.alloc(1, 0, false).unwrap();
//! let b = heap.alloc(0, 0, false).unwrap();
//! heap.set_ref(a, 0, Some(b));
//! heap.set_roots(&[a]);
//!
//! let mut mem = MemSystem::ddr3(Default::default());
//! let mut unit = GcUnit::new(GcUnitConfig::default(), &mut heap);
//! let report = unit.run_gc(&mut heap, &mut mem);
//! assert_eq!(report.mark.objects_marked, 2);
//! ```

pub mod barrier;
pub mod compress;
pub mod concurrent;
pub mod config;
pub mod engine;
pub mod markbit_cache;
pub mod markq;
pub mod mmio;
pub mod multiproc;
pub mod reclaim;
pub mod trap;
pub mod traversal;
pub mod unit;

pub use compress::RefCodec;
pub use concurrent::{
    run_concurrent_mark, try_run_concurrent_mark, ConcurrentReport, MutatorConfig,
};
pub use config::{CacheTopology, GcUnitConfig};
pub use engine::{MarkEngine, MutatorEngine};
pub use markbit_cache::MarkBitCache;
pub use markq::{MarkQueue, MarkQueueConfig, MarkQueueStats};
pub use multiproc::{
    run_multiprocess_mark, run_partitioned_mark, try_run_multiprocess_mark,
    try_run_partitioned_mark, MultiProcessReport, PartitionedProcess, ProcessContext,
};
pub use reclaim::{
    run_partitioned_sweep, ReclaimResult, ReclamationUnit, SweepEngine, SweepPartition,
};
pub use trap::{Trap, TrapKind};
pub use traversal::{TraversalResult, TraversalUnit};
pub use unit::{GcReport, GcUnit};
