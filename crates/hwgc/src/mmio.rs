//! The memory-mapped register file the Linux driver programs (§V-E,
//! Fig. 10).
//!
//! The unit "acts as a memory-mapped device, similar to a NIC" (§IV-C):
//! the driver writes the process's page-table base pointer, the hwgc
//! space location and the spill-region bounds into configuration
//! registers, launches a collection through the command register, and
//! polls the status register until the unit is ready.

/// Register indices of the unit's MMIO window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Reg {
    /// Physical address of the page-table root (from the process's
    /// `satp`, read by the driver).
    PageTableRoot = 0,
    /// Virtual address of the hwgc root-communication space.
    RootsPtr = 1,
    /// Physical base of the spill region.
    SpillBase = 2,
    /// Spill region size in bytes.
    SpillSize = 3,
    /// Command register (write [`MmioRegs::CMD_START_GC`] to launch).
    Command = 4,
    /// Status register (see [`MmioRegs::STATUS_IDLE`] /
    /// [`MmioRegs::STATUS_RUNNING`] / [`MmioRegs::STATUS_DONE`]).
    Status = 5,
    /// Objects marked by the last collection (diagnostics).
    MarkedCount = 6,
    /// Cells freed by the last collection (diagnostics).
    FreedCount = 7,
}

/// Number of registers in the window.
pub const NUM_REGS: usize = 8;

/// The register file.
///
/// # Examples
///
/// ```
/// use tracegc_hwgc::mmio::{MmioRegs, Reg};
///
/// let mut regs = MmioRegs::new();
/// regs.write(Reg::RootsPtr, 0x3000_0000);
/// assert_eq!(regs.read(Reg::RootsPtr), 0x3000_0000);
/// assert_eq!(regs.read(Reg::Status), MmioRegs::STATUS_IDLE);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MmioRegs {
    regs: [u64; NUM_REGS],
}

impl MmioRegs {
    /// Status: unit idle, no collection performed yet.
    pub const STATUS_IDLE: u64 = 0;
    /// Status: collection in progress.
    pub const STATUS_RUNNING: u64 = 1;
    /// Status: last collection complete; counters valid.
    pub const STATUS_DONE: u64 = 2;

    /// Command: start a full (mark + sweep) collection.
    pub const CMD_START_GC: u64 = 1;

    /// Creates an idle register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register.
    pub fn read(&self, reg: Reg) -> u64 {
        self.regs[reg as usize]
    }

    /// Writes a register.
    pub fn write(&mut self, reg: Reg, value: u64) {
        self.regs[reg as usize] = value;
    }

    /// Whether a start command is pending.
    pub fn start_requested(&self) -> bool {
        self.read(Reg::Command) == Self::CMD_START_GC
    }

    /// Acknowledges the command and flags the unit busy.
    pub fn begin(&mut self) {
        self.write(Reg::Command, 0);
        self.write(Reg::Status, Self::STATUS_RUNNING);
    }

    /// Publishes completion and diagnostics.
    pub fn complete(&mut self, marked: u64, freed: u64) {
        self.write(Reg::MarkedCount, marked);
        self.write(Reg::FreedCount, freed);
        self.write(Reg::Status, Self::STATUS_DONE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_lifecycle() {
        let mut regs = MmioRegs::new();
        assert!(!regs.start_requested());
        regs.write(Reg::Command, MmioRegs::CMD_START_GC);
        assert!(regs.start_requested());
        regs.begin();
        assert!(!regs.start_requested());
        assert_eq!(regs.read(Reg::Status), MmioRegs::STATUS_RUNNING);
        regs.complete(100, 42);
        assert_eq!(regs.read(Reg::Status), MmioRegs::STATUS_DONE);
        assert_eq!(regs.read(Reg::MarkedCount), 100);
        assert_eq!(regs.read(Reg::FreedCount), 42);
    }

    #[test]
    fn registers_are_independent() {
        let mut regs = MmioRegs::new();
        regs.write(Reg::PageTableRoot, 7);
        regs.write(Reg::SpillBase, 9);
        assert_eq!(regs.read(Reg::PageTableRoot), 7);
        assert_eq!(regs.read(Reg::SpillBase), 9);
        assert_eq!(regs.read(Reg::SpillSize), 0);
    }
}
