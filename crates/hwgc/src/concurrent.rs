//! Concurrent collection: the traversal unit marks while the mutator
//! keeps running (§IV-D).
//!
//! "Our design can be integrated into a concurrent GC without modifying
//! the CPU": the mutator's *write barrier* publishes every overwritten
//! reference into the root-communication region, and the traversal unit
//! feeds those references into its mark queue. This is
//! snapshot-at-the-beginning (SATB) marking: everything reachable when
//! the collection starts stays marked even if the mutator hides it
//! mid-trace (the Fig. 3 race), and objects allocated during the
//! collection are allocated marked ("black").
//!
//! The paper did not implement concurrent collection in its RTL
//! prototype; this module realizes the design it describes, driving the
//! cycle-stepped [`TraversalUnit`] interleaved with a modelled mutator,
//! and verifies the SATB safety invariant in its tests.

use tracegc_heap::{Heap, ObjRef, SocCtx};
use tracegc_mem::MemSystem;
use tracegc_sim::sched::{Policy, Scheduler};
use tracegc_sim::{Cycle, SimError};

use crate::engine::{MarkEngine, MutatorEngine};
use crate::trap::Trap;
use crate::traversal::{TraversalResult, TraversalUnit};

/// Mutator behaviour while the collector runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutatorConfig {
    /// Average cycles between two mutator heap operations.
    pub cycles_per_op: Cycle,
    /// Probability an operation overwrites a reference (vs reading).
    pub write_fraction: f64,
    /// Probability a write installs a *new* object (allocation) instead
    /// of redirecting to an existing one.
    pub alloc_fraction: f64,
    /// Seed for the mutator's choices.
    pub seed: u64,
}

impl Default for MutatorConfig {
    fn default() -> Self {
        Self {
            cycles_per_op: 40,
            write_fraction: 0.2,
            alloc_fraction: 0.3,
            seed: 7,
        }
    }
}

/// Outcome of a concurrent mark phase.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// The unit-side traversal result.
    pub traversal: TraversalResult,
    /// Mutator heap operations executed while marking ran.
    pub mutator_ops: u64,
    /// Write barriers taken (references published to the unit).
    pub write_barriers: u64,
    /// Objects allocated (black) during the collection.
    pub allocated_during_gc: u64,
    /// Total barrier cycles charged to the mutator.
    pub mutator_barrier_cycles: Cycle,
}

/// Runs a SATB concurrent mark: the unit steps cycle by cycle while the
/// mutator mutates the same heap, write-barriering every overwritten
/// reference into the unit.
///
/// Returns when the unit has drained (including all barrier-injected
/// references). On return, every object reachable at the *start* of the
/// collection and every object allocated during it carries a mark bit —
/// the SATB guarantee (verified in tests).
///
/// # Panics
///
/// Panics if the unit deadlocks (a bug, not a workload property) or
/// faults; use [`try_run_concurrent_mark`] to degrade gracefully.
pub fn run_concurrent_mark(
    unit: &mut TraversalUnit,
    heap: &mut Heap,
    mem: &mut MemSystem,
    mutator_cfg: MutatorConfig,
    start: Cycle,
) -> ConcurrentReport {
    try_run_concurrent_mark(unit, heap, mem, mutator_cfg, start).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_concurrent_mark`]: a trap during the mark
/// surfaces as a [`SimError`] with the unit frozen in its architected
/// state (recoverable via
/// [`TraversalUnit::drain_architected_state`]).
pub fn try_run_concurrent_mark(
    unit: &mut TraversalUnit,
    heap: &mut Heap,
    mem: &mut MemSystem,
    mutator_cfg: MutatorConfig,
    start: Cycle,
) -> Result<ConcurrentReport, SimError> {
    // The mutator works over the objects live at collection start.
    let working_set: Vec<ObjRef> = heap.reachable_from_roots().into_iter().collect();
    unit.begin(heap, start);
    // The mutator is scheduled *before* the collector so barrier
    // references published at cycle `t` enter the mark queue at `t`;
    // as a background engine it paces the clock (via its next-op time)
    // without gating completion. Lockstep over both reproduces the
    // historical hand-rolled interleaving cycle-for-cycle.
    let mut mutator = MutatorEngine::new(mutator_cfg, 0, working_set, start);
    let end = {
        let mut mark = MarkEngine::new(unit, 0);
        let mut ctx = SocCtx::single(mem, heap);
        let report = Scheduler::new(Policy::Lockstep).try_run(
            &mut [&mut mutator, &mut mark],
            &mut ctx,
            start,
        )?;
        report.end
    };
    // A trap freezes the unit but ends the schedule normally (the
    // frozen engine reports done); surface it, plus any fault the
    // memory system latched on the final access.
    if let Some(e) = mem.take_fault() {
        return Err(Trap::from_sim_error(&e).into());
    }
    if let Some(t) = unit.trap() {
        return Err(t.into());
    }

    let stats = mutator.barrier_stats();
    Ok(ConcurrentReport {
        traversal: unit.result_at(start, end),
        mutator_ops: mutator.ops(),
        write_barriers: stats.writes,
        allocated_during_gc: mutator.allocated(),
        mutator_barrier_cycles: stats.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcUnitConfig;
    use tracegc_heap::HeapConfig;

    fn build_heap(n: usize) -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 128 << 20,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..n)
            .map(|i| h.alloc(3, (i % 4) as u32, false).unwrap())
            .collect();
        let live = n * 2 / 3;
        for i in 0..live {
            if 2 * i + 1 < live {
                h.set_ref(objs[i], 0, Some(objs[2 * i + 1]));
            }
            if 2 * i + 2 < live {
                h.set_ref(objs[i], 1, Some(objs[2 * i + 2]));
            }
            h.set_ref(objs[i], 2, Some(objs[(i * 13 + 5) % live]));
        }
        h.set_roots(&[objs[0]]);
        h
    }

    #[test]
    fn satb_marks_everything_live_at_start() {
        let mut heap = build_heap(3000);
        let live_at_start = heap.reachable_from_roots();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
        let report =
            run_concurrent_mark(&mut unit, &mut heap, &mut mem, MutatorConfig::default(), 0);
        assert!(report.mutator_ops > 0, "mutator should have run");
        // The SATB guarantee: nothing live at the snapshot is lost,
        // even though the mutator overwrote references mid-trace.
        let marked = heap.marked_set();
        for obj in &live_at_start {
            assert!(marked.contains(obj), "lost object {obj}");
        }
    }

    #[test]
    fn objects_allocated_during_gc_are_marked() {
        let mut heap = build_heap(1500);
        let before: std::collections::BTreeSet<_> = heap.iter_objects().into_iter().collect();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
        let report = run_concurrent_mark(
            &mut unit,
            &mut heap,
            &mut mem,
            MutatorConfig {
                write_fraction: 0.5,
                alloc_fraction: 0.8,
                ..MutatorConfig::default()
            },
            0,
        );
        assert!(report.allocated_during_gc > 0);
        let marked = heap.marked_set();
        for obj in heap.iter_objects() {
            if !before.contains(&obj) {
                assert!(marked.contains(&obj), "new object {obj} unmarked");
            }
        }
    }

    #[test]
    fn no_mutation_degenerates_to_stop_the_world() {
        let run_stw = || {
            let mut heap = build_heap(1200);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            unit.run_mark(&mut heap, &mut mem, 0).objects_marked
        };
        let run_conc = || {
            let mut heap = build_heap(1200);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            run_concurrent_mark(
                &mut unit,
                &mut heap,
                &mut mem,
                MutatorConfig {
                    write_fraction: 0.0,
                    alloc_fraction: 0.0,
                    ..MutatorConfig::default()
                },
                0,
            )
            .traversal
            .objects_marked
        };
        assert_eq!(run_stw(), run_conc());
    }

    #[test]
    fn concurrent_marking_is_deterministic() {
        let run = || {
            let mut heap = build_heap(1500);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            let r =
                run_concurrent_mark(&mut unit, &mut heap, &mut mem, MutatorConfig::default(), 0);
            (r.traversal.end, r.mutator_ops, r.write_barriers)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn write_heavy_mutators_cost_more_barrier_cycles() {
        let run = |write_fraction| {
            let mut heap = build_heap(1500);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            run_concurrent_mark(
                &mut unit,
                &mut heap,
                &mut mem,
                MutatorConfig {
                    write_fraction,
                    ..MutatorConfig::default()
                },
                0,
            )
            .mutator_barrier_cycles
        };
        assert!(run(0.5) > run(0.05));
    }
}
