//! Concurrent collection: the traversal unit marks while the mutator
//! keeps running (§IV-D).
//!
//! "Our design can be integrated into a concurrent GC without modifying
//! the CPU": the mutator's *write barrier* publishes every overwritten
//! reference into the root-communication region, and the traversal unit
//! feeds those references into its mark queue. This is
//! snapshot-at-the-beginning (SATB) marking: everything reachable when
//! the collection starts stays marked even if the mutator hides it
//! mid-trace (the Fig. 3 race), and objects allocated during the
//! collection are allocated marked ("black").
//!
//! The paper did not implement concurrent collection in its RTL
//! prototype; this module realizes the design it describes, driving the
//! cycle-stepped [`TraversalUnit`] interleaved with a modelled mutator,
//! and verifies the SATB safety invariant in its tests.

use tracegc_heap::layout::HEADER_MARK_BIT;
use tracegc_heap::{Heap, ObjRef};
use tracegc_mem::MemSystem;
use tracegc_sim::rng::{Rng, StdRng};
use tracegc_sim::Cycle;

use crate::barrier::{BarrierCosts, BarrierModel};
use crate::traversal::{TraversalResult, TraversalUnit};

/// Mutator behaviour while the collector runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutatorConfig {
    /// Average cycles between two mutator heap operations.
    pub cycles_per_op: Cycle,
    /// Probability an operation overwrites a reference (vs reading).
    pub write_fraction: f64,
    /// Probability a write installs a *new* object (allocation) instead
    /// of redirecting to an existing one.
    pub alloc_fraction: f64,
    /// Seed for the mutator's choices.
    pub seed: u64,
}

impl Default for MutatorConfig {
    fn default() -> Self {
        Self {
            cycles_per_op: 40,
            write_fraction: 0.2,
            alloc_fraction: 0.3,
            seed: 7,
        }
    }
}

/// Outcome of a concurrent mark phase.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// The unit-side traversal result.
    pub traversal: TraversalResult,
    /// Mutator heap operations executed while marking ran.
    pub mutator_ops: u64,
    /// Write barriers taken (references published to the unit).
    pub write_barriers: u64,
    /// Objects allocated (black) during the collection.
    pub allocated_during_gc: u64,
    /// Total barrier cycles charged to the mutator.
    pub mutator_barrier_cycles: Cycle,
}

/// Runs a SATB concurrent mark: the unit steps cycle by cycle while the
/// mutator mutates the same heap, write-barriering every overwritten
/// reference into the unit.
///
/// Returns when the unit has drained (including all barrier-injected
/// references). On return, every object reachable at the *start* of the
/// collection and every object allocated during it carries a mark bit —
/// the SATB guarantee (verified in tests).
///
/// # Panics
///
/// Panics if the unit deadlocks (a bug, not a workload property).
pub fn run_concurrent_mark(
    unit: &mut TraversalUnit,
    heap: &mut Heap,
    mem: &mut MemSystem,
    mutator_cfg: MutatorConfig,
    start: Cycle,
) -> ConcurrentReport {
    let mut rng = StdRng::seed_from_u64(mutator_cfg.seed);
    let mut barriers = BarrierModel::new(BarrierCosts::default());
    // The mutator works over the objects live at collection start.
    let mut working_set: Vec<ObjRef> = heap.reachable_from_roots().into_iter().collect();
    let mut report_ops = 0u64;
    let mut allocated = 0u64;

    unit.begin(heap, start);
    let mut now = start;
    let mut next_mutator_op = start + mutator_cfg.cycles_per_op;
    loop {
        // Interleave mutator operations at their configured rate.
        while next_mutator_op <= now && !working_set.is_empty() {
            report_ops += 1;
            next_mutator_op += mutator_cfg.cycles_per_op;
            let victim = working_set[rng.random_range(0..working_set.len())];
            let slots = heap.nrefs(victim);
            if slots == 0 {
                continue;
            }
            let slot = rng.random_range(0..slots);
            if rng.random::<f64>() < mutator_cfg.write_fraction {
                // Overwrite: the write barrier publishes the old value
                // so the collector cannot lose it (Fig. 3).
                let old = heap.get_ref(victim, slot);
                if let Some(old) = barriers.write_barrier(old) {
                    unit.inject_reference(old.addr());
                }
                let target = if rng.random::<f64>() < mutator_cfg.alloc_fraction {
                    // Allocate black: new objects are marked at birth.
                    match heap.alloc(rng.random_range(0..3), rng.random_range(0..4), false) {
                        Ok(obj) => {
                            let pa = heap.va_to_pa(obj.addr());
                            heap.phys.fetch_or_u64(pa, HEADER_MARK_BIT);
                            allocated += 1;
                            working_set.push(obj);
                            Some(obj)
                        }
                        Err(_) => None,
                    }
                } else {
                    Some(working_set[rng.random_range(0..working_set.len())])
                };
                heap.set_ref(victim, slot, target);
            } else {
                // Read: loads the reference (a read barrier would check
                // relocation here; marking-only concurrent GC needs none).
                let _ = heap.get_ref(victim, slot);
            }
        }

        let progress = unit.step(now, heap, mem);
        if unit.is_complete() {
            break;
        }
        if progress {
            now += 1;
        } else {
            let wake = unit
                .next_event_at()
                .into_iter()
                .chain(std::iter::once(next_mutator_op))
                .min()
                .expect("mutator op always pending");
            now = wake.max(now + 1);
        }
    }

    let stats = barriers.stats();
    ConcurrentReport {
        traversal: unit.result_at(start, now),
        mutator_ops: report_ops,
        write_barriers: stats.writes,
        allocated_during_gc: allocated,
        mutator_barrier_cycles: stats.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcUnitConfig;
    use tracegc_heap::HeapConfig;

    fn build_heap(n: usize) -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 128 << 20,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..n)
            .map(|i| h.alloc(3, (i % 4) as u32, false).unwrap())
            .collect();
        let live = n * 2 / 3;
        for i in 0..live {
            if 2 * i + 1 < live {
                h.set_ref(objs[i], 0, Some(objs[2 * i + 1]));
            }
            if 2 * i + 2 < live {
                h.set_ref(objs[i], 1, Some(objs[2 * i + 2]));
            }
            h.set_ref(objs[i], 2, Some(objs[(i * 13 + 5) % live]));
        }
        h.set_roots(&[objs[0]]);
        h
    }

    #[test]
    fn satb_marks_everything_live_at_start() {
        let mut heap = build_heap(3000);
        let live_at_start = heap.reachable_from_roots();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
        let report =
            run_concurrent_mark(&mut unit, &mut heap, &mut mem, MutatorConfig::default(), 0);
        assert!(report.mutator_ops > 0, "mutator should have run");
        // The SATB guarantee: nothing live at the snapshot is lost,
        // even though the mutator overwrote references mid-trace.
        let marked = heap.marked_set();
        for obj in &live_at_start {
            assert!(marked.contains(obj), "lost object {obj}");
        }
    }

    #[test]
    fn objects_allocated_during_gc_are_marked() {
        let mut heap = build_heap(1500);
        let before: std::collections::BTreeSet<_> = heap.iter_objects().into_iter().collect();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
        let report = run_concurrent_mark(
            &mut unit,
            &mut heap,
            &mut mem,
            MutatorConfig {
                write_fraction: 0.5,
                alloc_fraction: 0.8,
                ..MutatorConfig::default()
            },
            0,
        );
        assert!(report.allocated_during_gc > 0);
        let marked = heap.marked_set();
        for obj in heap.iter_objects() {
            if !before.contains(&obj) {
                assert!(marked.contains(&obj), "new object {obj} unmarked");
            }
        }
    }

    #[test]
    fn no_mutation_degenerates_to_stop_the_world() {
        let run_stw = || {
            let mut heap = build_heap(1200);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            unit.run_mark(&mut heap, &mut mem, 0).objects_marked
        };
        let run_conc = || {
            let mut heap = build_heap(1200);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            run_concurrent_mark(
                &mut unit,
                &mut heap,
                &mut mem,
                MutatorConfig {
                    write_fraction: 0.0,
                    alloc_fraction: 0.0,
                    ..MutatorConfig::default()
                },
                0,
            )
            .traversal
            .objects_marked
        };
        assert_eq!(run_stw(), run_conc());
    }

    #[test]
    fn concurrent_marking_is_deterministic() {
        let run = || {
            let mut heap = build_heap(1500);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            let r =
                run_concurrent_mark(&mut unit, &mut heap, &mut mem, MutatorConfig::default(), 0);
            (r.traversal.end, r.mutator_ops, r.write_barriers)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn write_heavy_mutators_cost_more_barrier_cycles() {
        let run = |write_fraction| {
            let mut heap = build_heap(1500);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut heap);
            run_concurrent_mark(
                &mut unit,
                &mut heap,
                &mut mem,
                MutatorConfig {
                    write_fraction,
                    ..MutatorConfig::default()
                },
                0,
            )
            .mutator_barrier_cycles
        };
        assert!(run(0.5) > run(0.05));
    }
}
