//! The mark queue with memory spilling (Fig. 12, §V-C).
//!
//! The mark queue is the largest SRAM in the unit and can theoretically
//! grow without bound, so overflow is spilled to a dedicated physical
//! region (the Linux driver's statically allocated 4 MiB, §V-E). Two
//! small side queues implement the protocol:
//!
//! * entries that do not fit the main queue go to `outQ`;
//! * a state machine writes `outQ` to memory in 64-byte chunks and reads
//!   chunks back into `inQ` when the main queue drains;
//! * when nothing is spilled, `outQ` is copied directly into `inQ`,
//!   saving the round-trip ("if there are elements in outQ and free
//!   slots in inQ, we copy them directly");
//! * when `outQ` reaches a fill level, a throttle signal tells the
//!   tracer to stop issuing ("to avoid outQ from filling up");
//! * spill *writes* have priority over everything, which is what makes
//!   the protocol deadlock-free.
//!
//! Entries are stored through a [`RefCodec`]: compressed 32-bit entries
//! double the effective queue size and halve spill traffic (Fig. 19).

use std::collections::VecDeque;

use tracegc_mem::cache::MemBacking;
use tracegc_mem::{Cache, MemReq, MemSystem, PhysMem, Source};
use tracegc_sim::{BoundedQueue, Cycle};

use crate::compress::RefCodec;

/// Mark-queue sizing and spill parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkQueueConfig {
    /// Main queue capacity in entries (paper baseline: 1,024).
    pub main_entries: usize,
    /// Capacity of each of `inQ` and `outQ` in entries.
    pub side_entries: usize,
    /// `outQ` fill level that asserts the tracer throttle signal.
    pub throttle_level: usize,
    /// Entry encoding.
    pub codec: RefCodec,
    /// Physical base of the spill region (64-byte aligned).
    pub spill_base: u64,
    /// Spill region size in bytes (driver default: 4 MiB).
    pub spill_bytes: u64,
}

impl MarkQueueConfig {
    /// The paper's baseline: 1,024 entries, uncompressed, 4 MiB spill.
    pub fn baseline(spill_base: u64) -> Self {
        Self {
            main_entries: 1024,
            side_entries: 32,
            throttle_level: 24,
            codec: RefCodec::Full,
            spill_base,
            spill_bytes: 4 << 20,
        }
    }
}

/// Spill-engine statistics (Fig. 19a plots spill memory requests).
#[derive(Debug, Clone, Copy, Default)]
pub struct MarkQueueStats {
    /// Entries enqueued in total.
    pub enqueued: u64,
    /// Entries dequeued in total.
    pub dequeued: u64,
    /// 64-byte spill write requests issued.
    pub spill_writes: u64,
    /// Spill read (fill) requests issued.
    pub spill_reads: u64,
    /// Entries moved directly `outQ` → `inQ` without touching memory.
    pub bypassed: u64,
    /// Peak number of entries resident in the spill region.
    pub peak_spilled: u64,
    /// Bytes written to the spill region.
    pub spill_bytes_written: u64,
    /// Peak entries resident anywhere (queues + spill + pending fill) —
    /// the queue-occupancy summary of the metrics sidecars.
    pub peak_occupancy: u64,
}

#[derive(Debug, Clone, Copy)]
struct SpillChunk {
    /// Byte offset of the chunk slot within the spill region.
    offset: u64,
    /// Entries stored in the chunk.
    count: u32,
}

/// The mark queue: main queue, `inQ`, `outQ` and the spill state machine.
#[derive(Debug)]
pub struct MarkQueue {
    cfg: MarkQueueConfig,
    main: BoundedQueue<u64>,
    inq: BoundedQueue<u64>,
    outq: BoundedQueue<u64>,
    /// Chunks resident in the spill region, oldest first.
    chunks: VecDeque<SpillChunk>,
    /// Next chunk slot to write (ring, in 64-byte slots).
    write_slot: u64,
    /// Entries currently spilled.
    spilled: u64,
    /// An issued fill whose data arrives at `.0`.
    pending_fill: Option<(Cycle, Vec<u64>)>,
    /// Latched when a spill write found every chunk slot occupied: the
    /// driver under-provisioned the region (§V-E) and the unit must
    /// trap to software rather than risk wedging behind a throttle
    /// that may never clear.
    spill_exhausted: bool,
    stats: MarkQueueStats,
}

impl MarkQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if the spill base is not 64-byte aligned, the spill region
    /// holds no chunk, or the side queues are smaller than one chunk.
    pub fn new(cfg: MarkQueueConfig) -> Self {
        assert!(
            cfg.spill_base.is_multiple_of(64),
            "spill base must be 64B aligned"
        );
        assert!(cfg.spill_bytes >= 64, "spill region too small");
        let chunk = Self::entries_per_chunk_for(cfg.codec);
        assert!(
            cfg.side_entries >= chunk,
            "side queues must hold at least one chunk"
        );
        assert!(cfg.throttle_level <= cfg.side_entries);
        Self {
            main: BoundedQueue::new(cfg.main_entries),
            inq: BoundedQueue::new(cfg.side_entries),
            outq: BoundedQueue::new(cfg.side_entries),
            chunks: VecDeque::new(),
            write_slot: 0,
            spilled: 0,
            pending_fill: None,
            spill_exhausted: false,
            stats: MarkQueueStats::default(),
            cfg,
        }
    }

    fn entries_per_chunk_for(codec: RefCodec) -> usize {
        (64 / codec.entry_bytes()) as usize
    }

    /// Entries per 64-byte spill chunk (8 uncompressed, 16 compressed).
    pub fn entries_per_chunk(&self) -> usize {
        Self::entries_per_chunk_for(self.cfg.codec)
    }

    /// The configuration.
    pub fn config(&self) -> &MarkQueueConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> MarkQueueStats {
        self.stats
    }

    /// Whether the tracer must stop issuing requests (§V-C).
    pub fn throttled(&self) -> bool {
        self.outq.len() >= self.cfg.throttle_level
    }

    /// Whether a spill write ever found the region completely full.
    /// Latched (never cleared mid-pass): a full region means the driver
    /// under-provisioned it, and the unit escalates to a trap.
    pub fn spill_exhausted(&self) -> bool {
        self.spill_exhausted
    }

    /// Physical base of the spill region (the faulting address reported
    /// by a spill-exhaustion trap).
    pub fn spill_base(&self) -> u64 {
        self.cfg.spill_base
    }

    /// Entries currently held anywhere (queues + spill + pending fill).
    pub fn len(&self) -> u64 {
        self.main.len() as u64
            + self.inq.len() as u64
            + self.outq.len() as u64
            + self.spilled
            + self
                .pending_fill
                .as_ref()
                .map_or(0, |(_, v)| v.len() as u64)
    }

    /// Whether every queue, the spill region and the fill pipeline are
    /// empty — the traversal's termination condition.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue a reference. Priority goes to the main queue;
    /// overflow goes to `outQ`. Returns `false` (caller must stall) when
    /// even `outQ` is full.
    pub fn enqueue(&mut self, va: u64) -> bool {
        let encoded = self.cfg.codec.encode(va);
        if self.main.try_push(encoded).is_ok() || self.outq.try_push(encoded).is_ok() {
            self.stats.enqueued += 1;
            self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.len());
            return true;
        }
        false
    }

    /// Dequeues the next reference: main queue first, then `inQ`.
    pub fn dequeue(&mut self) -> Option<u64> {
        let encoded = self.main.pop().or_else(|| self.inq.pop())?;
        self.stats.dequeued += 1;
        Some(self.cfg.codec.decode(encoded))
    }

    /// Advances the spill state machine by one action. Returns `true`
    /// when any state changed (for the unit's progress tracking).
    pub fn tick(
        &mut self,
        now: Cycle,
        mem: &mut MemSystem,
        phys: &mut PhysMem,
        mut shared_cache: Option<&mut Cache>,
        port_free: &mut bool,
    ) -> bool {
        // 1. Land a completed fill into inQ.
        //
        // The `expect`s below are structural invariants of this state
        // machine, not fault paths: a fill is only issued when
        // `inq.free_slots() >= chunk` (checked in step 3), inQ is
        // private to this struct, and the fill data was just peeked.
        // Injected faults cannot violate them — they perturb timing and
        // data, never queue geometry — so a failure here is a simulator
        // bug and panicking is the correct response.
        if let Some((done, _)) = self.pending_fill {
            if done <= now {
                let (_, entries) = self.pending_fill.take().expect("fill present");
                for e in entries {
                    self.inq
                        .try_push(e)
                        .expect("fill was sized to fit inQ at issue");
                }
                return true;
            }
        }

        let chunk_entries = self.entries_per_chunk();

        // 2. Spill writes take priority (deadlock freedom). A partial
        // chunk is written as soon as the throttle level is reached:
        // with compressed entries one chunk can exceed the throttle
        // level, and waiting for a full chunk would wedge the tracer
        // behind a throttle that can never clear.
        if self.outq.len() >= chunk_entries
            || self.throttled()
            || (!self.outq.is_empty() && self.main.is_empty() && self.spilled > 0)
        {
            // Direct bypass when nothing is spilled and inQ has room
            // (no memory request, so no port needed).
            if self.spilled == 0 && self.pending_fill.is_none() && !self.inq.is_full() {
                let mut moved = 0;
                while !self.inq.is_full() {
                    match self.outq.pop() {
                        Some(e) => {
                            self.inq.try_push(e).expect("checked not full");
                            moved += 1;
                        }
                        None => break,
                    }
                }
                self.stats.bypassed += moved;
                return moved > 0;
            }
            if !*port_free {
                return false;
            }
            if self.issue_spill_write(now, mem, phys, shared_cache.as_deref_mut()) {
                *port_free = false;
                return true;
            }
            return false;
        }

        // 3. Refill from the spill region when the unit is draining.
        if self.spilled > 0
            && self.pending_fill.is_none()
            && self.outq.is_empty()
            && self.inq.free_slots() >= chunk_entries
            && self.main.len() < self.main.capacity() / 2
        {
            if !*port_free {
                return false;
            }
            if self.issue_fill(now, mem, phys, shared_cache) {
                *port_free = false;
                return true;
            }
            return false;
        }

        // 4. Opportunistic bypass of a trickle of outQ entries. Checked
        // before popping: a pop + failed re-push would rotate outQ on a
        // no-progress tick, making stalled ticks side-effectful and
        // breaking the scheduler's fast-forward/lockstep equivalence.
        if !self.outq.is_empty()
            && self.spilled == 0
            && self.pending_fill.is_none()
            && (!self.main.is_full() || !self.inq.is_full())
        {
            let e = self.outq.pop().expect("checked non-empty");
            if self.main.try_push(e).is_err() {
                self.inq.try_push(e).expect("checked free above");
            }
            self.stats.bypassed += 1;
            return true;
        }
        false
    }

    fn issue_spill_write(
        &mut self,
        now: Cycle,
        mem: &mut MemSystem,
        phys: &mut PhysMem,
        shared_cache: Option<&mut Cache>,
    ) -> bool {
        let chunk_entries = self.entries_per_chunk();
        let slots_total = self.cfg.spill_bytes / 64;
        if self.chunks.len() as u64 >= slots_total {
            // Spill region full: latch exhaustion so the unit traps to
            // the software fallback instead of stalling behind a
            // throttle that a wedged main queue may never clear.
            self.spill_exhausted = true;
            return false;
        }
        let take = self.outq.len().min(chunk_entries);
        if take == 0 {
            return false;
        }
        let offset = self.write_slot * 64;
        self.write_slot = (self.write_slot + 1) % slots_total;
        let entry_bytes = self.cfg.codec.entry_bytes();
        // Functionally pack the entries into the spill region.
        let mut word = 0u64;
        let mut entries = Vec::with_capacity(take);
        for i in 0..take {
            let e = self.outq.pop().expect("sized by len");
            entries.push(e);
            match entry_bytes {
                8 => phys.write_u64(self.cfg.spill_base + offset + (i as u64) * 8, e),
                4 => {
                    if i % 2 == 0 {
                        word = e;
                    } else {
                        word |= e << 32;
                        phys.write_u64(self.cfg.spill_base + offset + (i as u64 / 2) * 8, word);
                    }
                }
                _ => unreachable!("entry sizes are 4 or 8"),
            }
        }
        if entry_bytes == 4 && take % 2 == 1 {
            phys.write_u64(self.cfg.spill_base + offset + (take as u64 / 2) * 8, word);
        }
        let bytes = (take as u64 * entry_bytes).next_power_of_two().clamp(8, 64) as u32;
        match shared_cache {
            Some(cache) => {
                let mut backing = MemBacking {
                    mem,
                    source: Source::MarkQueue,
                };
                cache.access(
                    self.cfg.spill_base + offset,
                    true,
                    now,
                    Source::MarkQueue,
                    &mut backing,
                );
            }
            None => {
                mem.schedule(
                    &MemReq::write(self.cfg.spill_base + offset, bytes, Source::MarkQueue),
                    now,
                );
            }
        }
        self.chunks.push_back(SpillChunk {
            offset,
            count: take as u32,
        });
        self.spilled += take as u64;
        self.stats.spill_writes += 1;
        self.stats.spill_bytes_written += bytes as u64;
        self.stats.peak_spilled = self.stats.peak_spilled.max(self.spilled);
        true
    }

    fn issue_fill(
        &mut self,
        now: Cycle,
        mem: &mut MemSystem,
        phys: &mut PhysMem,
        shared_cache: Option<&mut Cache>,
    ) -> bool {
        let Some(chunk) = self.chunks.pop_front() else {
            return false;
        };
        let entry_bytes = self.cfg.codec.entry_bytes();
        let bytes = (chunk.count as u64 * entry_bytes)
            .next_power_of_two()
            .clamp(8, 64) as u32;
        let done = match shared_cache {
            Some(cache) => {
                let mut backing = MemBacking {
                    mem,
                    source: Source::MarkQueue,
                };
                cache.access(
                    self.cfg.spill_base + chunk.offset,
                    false,
                    now,
                    Source::MarkQueue,
                    &mut backing,
                )
            }
            None => mem.schedule(
                &MemReq::read(self.cfg.spill_base + chunk.offset, bytes, Source::MarkQueue),
                now,
            ),
        };
        let mut entries = Vec::with_capacity(chunk.count as usize);
        for i in 0..chunk.count as u64 {
            let e = match entry_bytes {
                8 => phys.read_u64(self.cfg.spill_base + chunk.offset + i * 8),
                4 => {
                    let w = phys.read_u64(self.cfg.spill_base + chunk.offset + (i / 2) * 8);
                    if i % 2 == 0 {
                        w & 0xFFFF_FFFF
                    } else {
                        w >> 32
                    }
                }
                _ => unreachable!(),
            };
            entries.push(e);
        }
        self.spilled -= chunk.count as u64;
        self.stats.spill_reads += 1;
        self.pending_fill = Some((done, entries));
        true
    }

    /// Earliest pending event (for the unit's idle skip-ahead).
    pub fn next_event(&self) -> Option<Cycle> {
        self.pending_fill.as_ref().map(|&(t, _)| t)
    }

    /// Drains every entry — main, `inQ`, `outQ`, an in-flight fill and
    /// all spilled chunks (read back functionally from `phys`) —
    /// decoding each. This is the trap path's recovery of the
    /// architected queue contents for the software fallback; the queue
    /// is empty afterwards.
    pub fn drain_all(&mut self, phys: &PhysMem) -> Vec<u64> {
        let mut encoded = Vec::new();
        while let Some(e) = self.main.pop() {
            encoded.push(e);
        }
        while let Some(e) = self.inq.pop() {
            encoded.push(e);
        }
        while let Some(e) = self.outq.pop() {
            encoded.push(e);
        }
        if let Some((_, entries)) = self.pending_fill.take() {
            encoded.extend(entries);
        }
        let entry_bytes = self.cfg.codec.entry_bytes();
        while let Some(chunk) = self.chunks.pop_front() {
            for i in 0..chunk.count as u64 {
                let e = match entry_bytes {
                    8 => phys.read_u64(self.cfg.spill_base + chunk.offset + i * 8),
                    4 => {
                        let w = phys.read_u64(self.cfg.spill_base + chunk.offset + (i / 2) * 8);
                        if i % 2 == 0 {
                            w & 0xFFFF_FFFF
                        } else {
                            w >> 32
                        }
                    }
                    _ => unreachable!("entry sizes are 4 or 8"),
                };
                encoded.push(e);
            }
        }
        self.spilled = 0;
        encoded
            .into_iter()
            .map(|e| self.cfg.codec.decode(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fresh always-free port token for tests.
    fn true_port() -> bool {
        true
    }

    fn harness(main: usize, codec: RefCodec) -> (MarkQueue, MemSystem, PhysMem) {
        let cfg = MarkQueueConfig {
            main_entries: main,
            side_entries: 32,
            throttle_level: 24,
            codec,
            spill_base: 0,
            spill_bytes: 1 << 20,
        };
        (
            MarkQueue::new(cfg),
            MemSystem::pipe(Default::default()),
            PhysMem::new(2 << 20),
        )
    }

    /// Drains everything, ticking the spill engine, and returns the
    /// multiset of dequeued values.
    fn drain(q: &mut MarkQueue, mem: &mut MemSystem, phys: &mut PhysMem) -> Vec<u64> {
        let mut out = Vec::new();
        let mut now = 1_000_000; // far past any fill latency
        let mut idle = 0;
        while !q.is_empty() {
            q.tick(now, mem, phys, None, &mut true_port());
            while let Some(v) = q.dequeue() {
                out.push(v);
            }
            now += 100;
            idle += 1;
            assert!(idle < 100_000, "queue failed to drain");
        }
        out
    }

    #[test]
    fn small_workload_never_spills() {
        let (mut q, mut mem, mut phys) = harness(64, RefCodec::Full);
        for i in 0..32u64 {
            assert!(q.enqueue(0x4000_0000 + i * 8));
        }
        let mut got = drain(&mut q, &mut mem, &mut phys);
        got.sort_unstable();
        let want: Vec<u64> = (0..32).map(|i| 0x4000_0000 + i * 8).collect();
        assert_eq!(got, want);
        assert_eq!(q.stats().spill_writes, 0);
    }

    #[test]
    fn overflow_spills_and_comes_back() {
        let (mut q, mut mem, mut phys) = harness(8, RefCodec::Full);
        let mut pushed = Vec::new();
        let mut now = 0;
        let mut i = 0u64;
        while pushed.len() < 200 {
            let va = 0x4000_0000 + i * 8;
            if q.enqueue(va) {
                pushed.push(va);
            } else {
                q.tick(now, &mut mem, &mut phys, None, &mut true_port());
            }
            q.tick(now, &mut mem, &mut phys, None, &mut true_port());
            now += 1;
            i += 1;
        }
        assert!(q.stats().spill_writes > 0, "expected spilling");
        let mut got = drain(&mut q, &mut mem, &mut phys);
        got.sort_unstable();
        pushed.sort_unstable();
        assert_eq!(got, pushed, "entries lost or duplicated through spill");
    }

    #[test]
    fn compressed_entries_halve_spill_traffic() {
        let run = |codec| {
            let (mut q, mut mem, mut phys) = harness(8, codec);
            let mut now = 0;
            for i in 0..500u64 {
                while !q.enqueue(0x4000_0000 + i * 8) {
                    q.tick(now, &mut mem, &mut phys, None, &mut true_port());
                    now += 1;
                }
                q.tick(now, &mut mem, &mut phys, None, &mut true_port());
                now += 1;
            }
            let got = drain(&mut q, &mut mem, &mut phys);
            assert_eq!(got.len(), 500);
            q.stats().spill_bytes_written
        };
        let full = run(RefCodec::Full);
        let compressed = run(RefCodec::Compressed { base: 0x4000_0000 });
        assert!(compressed > 0);
        assert!(
            compressed <= full / 2 + 64,
            "compressed {compressed} vs full {full}"
        );
    }

    #[test]
    fn compressed_roundtrip_preserves_values() {
        let (mut q, mut mem, mut phys) = harness(4, RefCodec::Compressed { base: 0x4000_0000 });
        let vals: Vec<u64> = (0..100).map(|i| 0x4000_0000 + i * 16).collect();
        let mut now = 0;
        for &v in &vals {
            while !q.enqueue(v) {
                q.tick(now, &mut mem, &mut phys, None, &mut true_port());
                now += 1;
            }
            q.tick(now, &mut mem, &mut phys, None, &mut true_port());
            now += 1;
        }
        let mut got = drain(&mut q, &mut mem, &mut phys);
        got.sort_unstable();
        assert_eq!(got, vals);
    }

    #[test]
    fn throttle_asserts_when_outq_fills() {
        let (mut q, _mem, _phys) = harness(1, RefCodec::Full);
        assert!(!q.throttled());
        q.enqueue(8); // fills main (capacity 1)
        for i in 0..24u64 {
            q.enqueue(16 + i * 8); // all go to outQ
        }
        assert!(q.throttled());
    }

    #[test]
    fn enqueue_fails_only_when_everything_full() {
        let (mut q, _mem, _phys) = harness(1, RefCodec::Full);
        q.enqueue(8);
        for i in 0..32u64 {
            assert!(q.enqueue(16 + i * 8));
        }
        assert!(!q.enqueue(0x800), "outQ full must reject");
    }

    #[test]
    fn bypass_skips_memory_when_nothing_spilled() {
        let (mut q, mut mem, mut phys) = harness(1, RefCodec::Full);
        q.enqueue(8);
        q.enqueue(16); // -> outQ
        q.dequeue(); // main now empty
        q.tick(0, &mut mem, &mut phys, None, &mut true_port());
        assert!(q.stats().bypassed >= 1);
        assert_eq!(q.stats().spill_writes, 0);
        assert_eq!(q.dequeue(), Some(16));
    }

    #[test]
    fn drain_all_recovers_every_entry_including_spilled() {
        for codec in [RefCodec::Full, RefCodec::Compressed { base: 0x4000_0000 }] {
            let (mut q, mut mem, mut phys) = harness(8, codec);
            let mut pushed = Vec::new();
            let mut now = 0;
            for i in 0..300u64 {
                let va = 0x4000_0000 + i * 8;
                while !q.enqueue(va) {
                    q.tick(now, &mut mem, &mut phys, None, &mut true_port());
                    now += 1;
                }
                pushed.push(va);
                q.tick(now, &mut mem, &mut phys, None, &mut true_port());
                now += 1;
            }
            assert!(q.stats().spill_writes > 0, "test must exercise the spill");
            let mut got = q.drain_all(&phys);
            got.sort_unstable();
            pushed.sort_unstable();
            assert_eq!(got, pushed, "architected drain lost or invented entries");
            assert!(q.is_empty(), "queue must be empty after the drain");
        }
    }

    #[test]
    fn full_spill_region_latches_exhaustion() {
        // One 64-byte chunk slot: the second spill write finds the
        // region full and must latch the exhaustion flag.
        let cfg = MarkQueueConfig {
            main_entries: 1,
            side_entries: 32,
            throttle_level: 8,
            codec: RefCodec::Full,
            spill_base: 0,
            spill_bytes: 64,
        };
        let mut q = MarkQueue::new(cfg);
        let mut mem = MemSystem::pipe(Default::default());
        let mut phys = PhysMem::new(1 << 20);
        let mut now = 0;
        let mut i = 0u64;
        while !q.spill_exhausted() {
            q.enqueue(0x4000_0000 + i * 8);
            q.tick(now, &mut mem, &mut phys, None, &mut true_port());
            now += 1;
            i += 1;
            assert!(i < 10_000, "exhaustion never latched");
        }
        assert!(q.stats().spill_writes >= 1);
    }

    #[test]
    fn peak_spilled_is_tracked() {
        let (mut q, mut mem, mut phys) = harness(8, RefCodec::Full);
        let mut now = 0;
        for i in 0..300u64 {
            while !q.enqueue(i * 8 + 8) {
                q.tick(now, &mut mem, &mut phys, None, &mut true_port());
                now += 1;
            }
            q.tick(now, &mut mem, &mut phys, None, &mut true_port());
            now += 1;
        }
        assert!(q.stats().peak_spilled > 0);
        drain(&mut q, &mut mem, &mut phys);
        assert_eq!(q.len(), 0);
    }
}
