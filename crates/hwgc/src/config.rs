//! Configuration of the GC unit — every knob the paper's design-space
//! exploration turns (Figs. 18–21).

use tracegc_vmem::TlbConfig;

/// How the unit's requesters reach the memory system (§V-C, Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheTopology {
    /// The paper's final design: the PTW gets a dedicated 8 KiB cache,
    /// the mark queue gets line buffers, and marker/tracer talk to the
    /// TileLink interconnect directly.
    #[default]
    Partitioned,
    /// The initial design: one shared 16 KiB cache for every requester,
    /// whose crossbar the PTW traffic drowns (Fig. 18a — "this performed
    /// barely better than the CPU").
    Shared,
}

/// Full configuration of the traversal + reclamation units.
///
/// The default is the paper's baseline (§VI-A): "2 sweepers, a 1,024
/// entry mark-queue, 16 request slots for the marker, 32-entry TLBs and
/// a 128-entry shared L2 TLB".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcUnitConfig {
    /// Marker request slots (tag/address table entries, Fig. 13).
    pub marker_slots: usize,
    /// Tracer queue capacity in objects (the "TQ" of Fig. 19).
    pub tracer_queue: usize,
    /// Main mark-queue capacity in entries.
    pub markq_entries: usize,
    /// `inQ`/`outQ` capacity in entries.
    pub markq_side: usize,
    /// Store 32-bit compressed references in the mark queue (§V-C).
    pub compress: bool,
    /// Mark-bit cache entries (0 disables it; Fig. 21 sweeps 64–256).
    pub markbit_cache: usize,
    /// Parallel block sweepers in the reclamation unit (Fig. 20).
    pub sweepers: usize,
    /// Line buffers per sweeper ("only need 2 cache lines", §VI-B).
    pub sweeper_line_bufs: usize,
    /// Cycles a block sweeper's state machine spends per cell
    /// (classification, mark-word address computation, free-list link
    /// update; §V-D).
    pub sweeper_cell_cycles: u64,
    /// Cycles to dequeue/enqueue a block from the global block lists.
    pub sweeper_block_cycles: u64,
    /// TLB and page-table-walker sizing.
    pub tlb: TlbConfig,
    /// Cache topology (partitioned vs shared).
    pub topology: CacheTopology,
    /// Spill region size in bytes (driver default 4 MiB, §V-E).
    pub spill_bytes: u64,
    /// Minimum cycles between the unit's memory-port issues (0 = run at
    /// full bandwidth). §VII Bandwidth Throttling: "this interference
    /// could be reduced by communicating with the memory controller to
    /// only use residual bandwidth".
    pub min_issue_interval: u64,
    /// Per-pass cycle budget (0 = unlimited). When a mark pass runs
    /// longer than this many cycles past its `begin`, the unit latches
    /// [`TrapKind::RequestTimeout`](crate::trap::TrapKind::RequestTimeout)
    /// and freezes, handing the rest of the mark to the software
    /// fallback — the fleet scheduler's per-request timeout.
    pub mark_budget: u64,
    /// Record an event trace (bounded ring; see `sim::metrics`) during
    /// collection. Off by default: stall *accounting* is always on, only
    /// the per-event ring is gated.
    pub trace: bool,
}

impl Default for GcUnitConfig {
    fn default() -> Self {
        Self {
            marker_slots: 16,
            tracer_queue: 128,
            markq_entries: 1024,
            markq_side: 32,
            compress: false,
            markbit_cache: 0,
            sweepers: 2,
            sweeper_line_bufs: 2,
            sweeper_cell_cycles: 16,
            sweeper_block_cycles: 8,
            tlb: TlbConfig::default(),
            topology: CacheTopology::Partitioned,
            spill_bytes: 4 << 20,
            min_issue_interval: 0,
            mark_budget: 0,
            trace: false,
        }
    }
}

impl GcUnitConfig {
    /// Approximate SRAM the unit's queues occupy, in bytes — the input to
    /// the Fig. 19 x-axis ("sizes include inQ/outQ") and the area model.
    pub fn markq_sram_bytes(&self) -> u64 {
        let entry = if self.compress { 4 } else { 8 };
        (self.markq_entries as u64 + 2 * self.markq_side as u64) * entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        let c = GcUnitConfig::default();
        assert_eq!(c.marker_slots, 16);
        assert_eq!(c.markq_entries, 1024);
        assert_eq!(c.sweepers, 2);
        assert_eq!(c.tlb.l1_entries, 32);
        assert_eq!(c.tlb.l2_entries, 128);
        assert_eq!(c.topology, CacheTopology::Partitioned);
    }

    #[test]
    fn markq_sram_accounts_for_side_queues_and_compression() {
        let mut c = GcUnitConfig::default();
        let full = c.markq_sram_bytes();
        assert_eq!(full, (1024 + 64) * 8);
        c.compress = true;
        assert_eq!(c.markq_sram_bytes() * 2, full);
    }
}
