//! The complete GC unit: traversal + reclamation behind the MMIO
//! protocol — what the JikesRVM `libhwgc.so` / Linux-driver stack talks
//! to (§V-E, Fig. 10).

use tracegc_heap::Heap;
use tracegc_mem::MemSystem;
use tracegc_sim::{Cycle, FaultPlan, SimError, TraceEvent};

use crate::config::GcUnitConfig;
use crate::mmio::{MmioRegs, Reg};
use crate::reclaim::{ReclaimResult, ReclamationUnit};
use crate::traversal::{TraversalResult, TraversalUnit};

/// The outcome of one hardware collection.
#[derive(Debug, Clone)]
pub struct GcReport {
    /// Mark-phase result.
    pub mark: TraversalResult,
    /// Sweep-phase result.
    pub sweep: ReclaimResult,
}

impl GcReport {
    /// Total pause cycles (mark + sweep).
    pub fn total_cycles(&self) -> Cycle {
        self.mark.cycles() + self.sweep.cycles()
    }
}

/// The accelerator as the runtime sees it: a memory-mapped device that
/// traverses and reclaims the heap autonomously.
#[derive(Debug)]
pub struct GcUnit {
    cfg: GcUnitConfig,
    regs: MmioRegs,
    traversal: TraversalUnit,
    reclaim: ReclamationUnit,
}

impl GcUnit {
    /// Builds the unit for `heap`, programming the register file the way
    /// the Linux driver does at initialization.
    pub fn new(cfg: GcUnitConfig, heap: &mut Heap) -> Self {
        let traversal = TraversalUnit::new(cfg, heap);
        let reclaim = ReclamationUnit::new(cfg, heap);
        let mut regs = MmioRegs::new();
        regs.write(Reg::PageTableRoot, heap.address_space().root());
        regs.write(Reg::RootsPtr, heap.spaces().hwgc_base);
        regs.write(Reg::SpillSize, cfg.spill_bytes);
        Self {
            cfg,
            regs,
            traversal,
            reclaim,
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &GcUnitConfig {
        &self.cfg
    }

    /// The MMIO register file (what the driver reads and writes).
    pub fn regs(&self) -> &MmioRegs {
        &self.regs
    }

    /// The traversal unit (for detailed statistics).
    pub fn traversal(&self) -> &TraversalUnit {
        &self.traversal
    }

    /// The traversal unit, mutably (the driver's trap-recovery path:
    /// reading the trap register and draining architected state).
    pub fn traversal_mut(&mut self) -> &mut TraversalUnit {
        &mut self.traversal
    }

    /// Attaches fault injectors from `plan` to the traversal unit's
    /// marker datapath and page-table walker (the memory system takes
    /// its own injector via
    /// [`MemSystem::set_fault_injector`](tracegc_mem::MemSystem)).
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        self.traversal.install_fault_plan(plan);
    }

    /// Drains both sub-units' event rings (populated when the config's
    /// `trace` flag is set) into one cycle-ordered vector.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = Vec::new();
        if let Some(t) = self.traversal.take_trace() {
            events.extend(t.into_vec());
        }
        if let Some(t) = self.reclaim.take_trace() {
            events.extend(t.into_vec());
        }
        events.sort_by_key(|e| e.cycle);
        events
    }

    /// Runs a complete stop-the-world collection starting at cycle
    /// `start`, following the MMIO protocol: command → running → done.
    ///
    /// # Panics
    ///
    /// Panics if the collection faults; use [`GcUnit::try_run_gc_at`]
    /// to degrade gracefully instead.
    pub fn run_gc_at(&mut self, heap: &mut Heap, mem: &mut MemSystem, start: Cycle) -> GcReport {
        self.try_run_gc_at(heap, mem, start)
            .unwrap_or_else(|e| panic!("traversal unit fault: {e}"))
    }

    /// Fallible variant of [`GcUnit::run_gc_at`]: a trap during the
    /// mark leaves the traversal unit frozen (architected state
    /// recoverable via [`GcUnit::traversal_mut`]) and the sweep is not
    /// started — the driver must finish the mark in software before it
    /// may sweep.
    pub fn try_run_gc_at(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        start: Cycle,
    ) -> Result<GcReport, SimError> {
        self.regs.write(Reg::Command, MmioRegs::CMD_START_GC);
        self.regs.begin();
        let mark = self.traversal.try_run_mark(heap, mem, start)?;
        let sweep = self.reclaim.run_sweep(heap, mem, mark.end);
        self.regs.complete(mark.objects_marked, sweep.cells_freed);
        Ok(GcReport { mark, sweep })
    }

    /// [`GcUnit::run_gc_at`] from cycle 0.
    pub fn run_gc(&mut self, heap: &mut Heap, mem: &mut MemSystem) -> GcReport {
        self.run_gc_at(heap, mem, 0)
    }

    /// The driver's recovery tail after a trapped mark: once software
    /// has completed the mark from the drained architected state
    /// (`marked_total` objects now carry marks), the reclamation unit
    /// sweeps as usual and the register file reports completion.
    pub fn sweep_after_fallback(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        start: Cycle,
        marked_total: u64,
    ) -> ReclaimResult {
        let sweep = self.reclaim.run_sweep(heap, mem, start);
        self.regs.complete(marked_total, sweep.cells_freed);
        sweep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegc_heap::verify::{check_free_lists, check_marks_match_reachability};
    use tracegc_heap::{HeapConfig, ObjRef};

    fn workload() -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 128 << 20,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..1000)
            .map(|i| h.alloc(2, (i % 4) as u32, false).unwrap())
            .collect();
        for i in 0..600usize {
            h.set_ref(objs[i], 0, Some(objs[(i + 1) % 600]));
            h.set_ref(objs[i], 1, Some(objs[(i * 7) % 600]));
        }
        h.set_roots(&[objs[0]]);
        h
    }

    #[test]
    fn full_gc_marks_and_sweeps_correctly() {
        let mut heap = workload();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = GcUnit::new(GcUnitConfig::default(), &mut heap);
        let report = unit.run_gc(&mut heap, &mut mem);
        assert_eq!(report.mark.objects_marked, 600);
        assert_eq!(report.sweep.cells_freed, 400);
        check_free_lists(&heap).unwrap();
        assert!(heap.marked_set().is_empty());
        assert!(report.total_cycles() > 0);
    }

    #[test]
    fn mmio_protocol_is_followed() {
        let mut heap = workload();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = GcUnit::new(GcUnitConfig::default(), &mut heap);
        assert_eq!(unit.regs().read(Reg::Status), MmioRegs::STATUS_IDLE);
        assert_eq!(
            unit.regs().read(Reg::PageTableRoot),
            heap.address_space().root()
        );
        unit.run_gc(&mut heap, &mut mem);
        assert_eq!(unit.regs().read(Reg::Status), MmioRegs::STATUS_DONE);
        assert_eq!(unit.regs().read(Reg::MarkedCount), 600);
        assert_eq!(unit.regs().read(Reg::FreedCount), 400);
    }

    #[test]
    fn sweep_follows_mark_in_time() {
        let mut heap = workload();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = GcUnit::new(GcUnitConfig::default(), &mut heap);
        let report = unit.run_gc_at(&mut heap, &mut mem, 1000);
        assert_eq!(report.mark.start, 1000);
        assert_eq!(report.sweep.start, report.mark.end);
        assert!(report.sweep.end >= report.sweep.start);
    }

    #[test]
    fn consecutive_collections_work() {
        let mut heap = workload();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = GcUnit::new(GcUnitConfig::default(), &mut heap);
        let r1 = unit.run_gc(&mut heap, &mut mem);
        // Second GC over the same live set: marks the same objects,
        // frees nothing new.
        let mut unit2 = GcUnit::new(GcUnitConfig::default(), &mut heap);
        let r2 = unit2.run_gc_at(&mut heap, &mut mem, r1.sweep.end);
        assert_eq!(r2.mark.objects_marked, r1.mark.objects_marked);
        assert_eq!(r2.sweep.cells_freed, 0);
        // The sweep cleared every mark, so the heap no longer looks
        // mid-collection: the mark/reachability oracle must *fail* on
        // the live set (reachable objects exist but carry no marks).
        assert!(heap.marked_set().is_empty(), "sweep must clear all marks");
        assert!(
            check_marks_match_reachability(&heap).is_err(),
            "live objects should be unmarked after sweep"
        );
        check_free_lists(&heap).unwrap();
    }
}
