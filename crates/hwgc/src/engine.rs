//! Scheduled-engine adapters for the accelerator: the traversal unit as
//! a [`MarkEngine`] and the concurrent-mutator model as a
//! [`MutatorEngine`].
//!
//! Both implement [`tracegc_sim::sched::Engine`] over the concrete
//! [`SocCtx`], so any mix of them (plus the reclamation unit's
//! [`SweepEngine`](crate::reclaim::SweepEngine) and the CPU collector
//! engines) can share one clock and one memory system under a
//! [`Scheduler`](tracegc_sim::sched::Scheduler). Every historical
//! `run_*` entry point in this crate is now a thin driver over these
//! adapters; `tests/engine_equivalence.rs` proves the scheduled form
//! reproduces the pre-refactor cycle counts and stall ledgers exactly.

use tracegc_heap::layout::HEADER_MARK_BIT;
use tracegc_heap::{ObjRef, SocCtx};
use tracegc_sim::rng::{Rng, StdRng};
use tracegc_sim::sched::{Engine, Progress};
use tracegc_sim::{Cycle, StallAccounting, StallReason};

use crate::barrier::{BarrierModel, BarrierStats};
use crate::concurrent::MutatorConfig;
use crate::traversal::TraversalUnit;

/// The traversal unit as a scheduled engine over `heaps[heap_idx]`.
///
/// The caller must have called [`TraversalUnit::begin`] for the pass
/// before scheduling. The engine drains the heap's [`SocCtx`] mailbox
/// into the unit's injection queue at the top of every step, so a
/// mutator engine scheduled *earlier in the same cycle* has its
/// write-barrier references observed exactly as the historical
/// hand-rolled concurrent loop did.
///
/// Scheduler charges are routed into the unit's own per-pass ledger
/// ([`TraversalUnit::charge_busy`] / [`TraversalUnit::charge_stall`]),
/// keeping `busy + Σ stalls == pass cycles` for any scheduling policy.
#[derive(Debug)]
pub struct MarkEngine<'a> {
    unit: &'a mut TraversalUnit,
    heap_idx: usize,
    /// Wake-up hint covering the memory system's fault latch: the unit
    /// polls the latch at the top of each step, so a fault latched by
    /// an access *during* this step becomes a trap exactly one cycle
    /// later — an imminent state change the unit's own `next_event`
    /// cannot see. Without this hint the fast-forward scheduler could
    /// hop past the trap cycle and observe it late.
    fault_wake: Option<Cycle>,
}

impl<'a> MarkEngine<'a> {
    /// Wraps `unit` (already `begin`-ed) marking `heaps[heap_idx]`.
    pub fn new(unit: &'a mut TraversalUnit, heap_idx: usize) -> Self {
        Self {
            unit,
            heap_idx,
            fault_wake: None,
        }
    }

    /// The wrapped unit's heap index within the [`SocCtx`].
    pub fn heap_idx(&self) -> usize {
        self.heap_idx
    }
}

impl<'a, 'c> Engine<SocCtx<'c>> for MarkEngine<'a> {
    fn name(&self) -> &'static str {
        "traversal"
    }

    fn label(&self) -> String {
        format!("traversal[heap {}]", self.heap_idx)
    }

    fn step(&mut self, now: Cycle, ctx: &mut SocCtx<'c>) -> Progress {
        let SocCtx {
            mem,
            heaps,
            mailboxes,
        } = ctx;
        for va in mailboxes[self.heap_idx].drain(..) {
            self.unit.inject_reference(va);
        }
        let progress = self.unit.step(now, &mut *heaps[self.heap_idx], mem);
        self.fault_wake = mem.pending_fault().map(|_| now + 1);
        if self.unit.is_complete() {
            Progress::Done
        } else if progress {
            Progress::Advanced
        } else {
            Progress::Stalled
        }
    }

    fn next_event_at(&self) -> Option<Cycle> {
        match (self.unit.next_event_at(), self.fault_wake) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn stall_reason(&self, now: Cycle) -> StallReason {
        self.unit.stall_reason(now)
    }

    fn note_busy(&mut self, n: u64) {
        self.unit.charge_busy(n);
    }

    fn note_stall(&mut self, now: Cycle, reason: StallReason, span: u64) {
        self.unit.charge_stall(now, reason, span);
    }

    fn ledger(&self) -> Option<StallAccounting> {
        Some(*self.unit.stalls())
    }
}

/// The SATB concurrent-mutator model as a background engine (§IV-D).
///
/// Executes heap operations at the configured rate over the working set
/// live at collection start: reads, reference overwrites (each
/// write-barriered, publishing the old value into the heap's mailbox for
/// the collector engine to mark) and black allocations. Always reports
/// [`Progress::Stalled`] — the mutator paces the clock via
/// `next_event_at` but never gates completion
/// ([`Engine::is_background`]).
///
/// Schedule it *before* the heap's [`MarkEngine`] so barrier references
/// published at cycle `t` enter the unit's mark queue at `t`, exactly as
/// in the historical hand-rolled loop.
#[derive(Debug)]
pub struct MutatorEngine {
    cfg: MutatorConfig,
    heap_idx: usize,
    rng: StdRng,
    barriers: BarrierModel,
    working_set: Vec<ObjRef>,
    next_op: Cycle,
    ops: u64,
    allocated: u64,
}

impl MutatorEngine {
    /// A mutator over `heaps[heap_idx]`, mutating `working_set` (the
    /// objects live at collection start) from cycle `start`.
    pub fn new(
        cfg: MutatorConfig,
        heap_idx: usize,
        working_set: Vec<ObjRef>,
        start: Cycle,
    ) -> Self {
        Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            barriers: BarrierModel::new(Default::default()),
            next_op: start + cfg.cycles_per_op,
            cfg,
            heap_idx,
            working_set,
            ops: 0,
            allocated: 0,
        }
    }

    /// Heap operations executed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Objects allocated (black) so far.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Write-barrier statistics so far.
    pub fn barrier_stats(&self) -> BarrierStats {
        self.barriers.stats()
    }
}

impl<'c> Engine<SocCtx<'c>> for MutatorEngine {
    fn name(&self) -> &'static str {
        "mutator"
    }

    fn label(&self) -> String {
        format!("mutator[heap {}]", self.heap_idx)
    }

    fn step(&mut self, now: Cycle, ctx: &mut SocCtx<'c>) -> Progress {
        let SocCtx {
            heaps, mailboxes, ..
        } = ctx;
        let heap = &mut *heaps[self.heap_idx];
        if self.working_set.is_empty() {
            // Nothing to mutate: keep the op clock ticking anyway so
            // the reported next event stays honest (strictly future)
            // instead of going stale and pinning the scheduler to a
            // one-cycle crawl.
            while self.next_op <= now {
                self.next_op += self.cfg.cycles_per_op.max(1);
            }
            return Progress::Stalled;
        }
        while self.next_op <= now && !self.working_set.is_empty() {
            self.ops += 1;
            self.next_op += self.cfg.cycles_per_op;
            let victim = self.working_set[self.rng.random_range(0..self.working_set.len())];
            let slots = heap.nrefs(victim);
            if slots == 0 {
                continue;
            }
            let slot = self.rng.random_range(0..slots);
            if self.rng.random::<f64>() < self.cfg.write_fraction {
                // Overwrite: the write barrier publishes the old value
                // so the collector cannot lose it (Fig. 3).
                let old = heap.get_ref(victim, slot);
                if let Some(old) = self.barriers.write_barrier(old) {
                    mailboxes[self.heap_idx].push(old.addr());
                }
                let target = if self.rng.random::<f64>() < self.cfg.alloc_fraction {
                    // Allocate black: new objects are marked at birth.
                    match heap.alloc(
                        self.rng.random_range(0..3),
                        self.rng.random_range(0..4),
                        false,
                    ) {
                        Ok(obj) => {
                            let pa = heap.va_to_pa(obj.addr());
                            heap.phys.fetch_or_u64(pa, HEADER_MARK_BIT);
                            self.allocated += 1;
                            self.working_set.push(obj);
                            Some(obj)
                        }
                        Err(_) => None,
                    }
                } else {
                    Some(self.working_set[self.rng.random_range(0..self.working_set.len())])
                };
                heap.set_ref(victim, slot, target);
            } else {
                // Read: loads the reference (a read barrier would check
                // relocation here; marking-only concurrent GC needs none).
                let _ = heap.get_ref(victim, slot);
            }
        }
        Progress::Stalled
    }

    fn next_event_at(&self) -> Option<Cycle> {
        Some(self.next_op)
    }

    fn is_background(&self) -> bool {
        true
    }
}
