//! Concurrent-GC barrier models (§IV-D).
//!
//! The paper proposes barriers that "hijack" the coherence protocol so
//! neither the fast nor the slow path redirects the instruction stream:
//!
//! * **Write barrier** — an overwritten reference is written into the
//!   same memory region used to communicate roots; the traversal unit
//!   picks it up from there. Cost: one extra store (usually an L1 hit).
//! * **Read barrier** — one virtual-address bit is flipped and loaded.
//!   Unrelocated pages map to a shared zero page, so the load returns 0
//!   and `new = old + 0` (fast path, an extra L1-hit load plus an add).
//!   Pages being relocated map to the Reclamation Unit's physical range;
//!   the first access to each cache line pays a coherence acquire from
//!   the unit, which answers with per-object deltas; later accesses hit
//!   in the local cache (Fig. 9).
//!
//! These were not implemented in the paper's RTL prototype either — they
//! are the design §IV-D argues for — so this module is a functional +
//! cost model, exercised by the `ablD` ablation and the
//! `concurrent_barriers` example.

use std::collections::{HashMap, HashSet};

use tracegc_heap::ObjRef;
use tracegc_sim::Cycle;
use tracegc_vmem::PAGE_SIZE;

/// Cycle costs of the barrier fast/slow paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCosts {
    /// Fast path: the zero-page load hits in the L1 plus one add.
    pub read_fast: Cycle,
    /// Slow path: a coherence acquire of the delta line from the
    /// reclamation unit across the interconnect.
    pub read_slow_acquire: Cycle,
    /// Subsequent slow-path hits on an already-acquired line.
    pub read_slow_hit: Cycle,
    /// Write barrier: one store into the root-communication region.
    pub write: Cycle,
    /// A trap-based read barrier for comparison (pipeline flush +
    /// handler), the cost the coherence trick avoids.
    pub trap: Cycle,
}

impl Default for BarrierCosts {
    fn default() -> Self {
        Self {
            read_fast: 3,
            read_slow_acquire: 120,
            read_slow_hit: 3,
            write: 2,
            trap: 400,
        }
    }
}

/// Barrier activity statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierStats {
    /// Read barriers taking the fast (unrelocated) path.
    pub read_fast: u64,
    /// Read barriers that paid a line acquire.
    pub read_slow_acquire: u64,
    /// Read barriers hitting an already-acquired delta line.
    pub read_slow_hit: u64,
    /// Write barriers executed.
    pub writes: u64,
    /// Total barrier cycles charged.
    pub cycles: Cycle,
}

/// The relocation state the read barrier consults: which pages are being
/// relocated and where each of their objects moved.
#[derive(Debug, Default)]
pub struct ForwardingState {
    /// Pages under relocation (VA page numbers).
    relocated_pages: HashSet<u64>,
    /// old header VA → new header VA.
    forwarding: HashMap<u64, u64>,
    /// Delta cache lines already acquired by the CPU.
    acquired_lines: HashSet<u64>,
}

impl ForwardingState {
    /// Creates an empty state (no relocation in progress).
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins relocating the page containing `page_va`; `moves` maps old
    /// object addresses to new ones.
    ///
    /// # Panics
    ///
    /// Panics if a moved object is not on the page.
    pub fn relocate_page(&mut self, page_va: u64, moves: &[(ObjRef, ObjRef)]) {
        let page = page_va / PAGE_SIZE;
        self.relocated_pages.insert(page);
        for &(old, new) in moves {
            assert_eq!(old.addr() / PAGE_SIZE, page, "object not on the page");
            self.forwarding.insert(old.addr(), new.addr());
        }
        // New relocation invalidates previously acquired delta lines for
        // this page.
        self.acquired_lines.retain(|&line| line / PAGE_SIZE != page);
    }

    /// Finishes relocating a page (all references fixed up).
    pub fn finish_page(&mut self, page_va: u64) {
        let page = page_va / PAGE_SIZE;
        self.relocated_pages.remove(&page);
        self.forwarding.retain(|&old, _| old / PAGE_SIZE != page);
        self.acquired_lines.retain(|&line| line / PAGE_SIZE != page);
    }

    /// Whether the page containing `va` is currently being relocated.
    pub fn is_relocating(&self, va: u64) -> bool {
        self.relocated_pages.contains(&(va / PAGE_SIZE))
    }

    /// Number of pages currently relocating.
    pub fn pages_in_flight(&self) -> usize {
        self.relocated_pages.len()
    }
}

/// The barrier execution model a mutator thread uses.
#[derive(Debug)]
pub struct BarrierModel {
    costs: BarrierCosts,
    stats: BarrierStats,
}

impl BarrierModel {
    /// Creates the model with the given cost table.
    pub fn new(costs: BarrierCosts) -> Self {
        Self {
            costs,
            stats: BarrierStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BarrierStats {
        self.stats
    }

    /// Executes the read barrier of Fig. 9 on a loaded reference:
    /// returns the possibly forwarded reference and charges the
    /// appropriate path cost.
    pub fn read_barrier(&mut self, fwd: &mut ForwardingState, loaded: ObjRef) -> ObjRef {
        let va = loaded.addr();
        if !fwd.is_relocating(va) {
            // Zero-page fast path: delta load returns 0.
            self.stats.read_fast += 1;
            self.stats.cycles += self.costs.read_fast;
            return loaded;
        }
        // Slow path: the delta line must be owned locally.
        let line = (va ^ (1 << 63)) & !63; // the flipped-MSB shadow line
        if fwd.acquired_lines.insert(line) {
            self.stats.read_slow_acquire += 1;
            self.stats.cycles += self.costs.read_slow_acquire;
        } else {
            self.stats.read_slow_hit += 1;
            self.stats.cycles += self.costs.read_slow_hit;
        }
        let new = fwd.forwarding.get(&va).copied().unwrap_or(va);
        ObjRef::new(new)
    }

    /// Executes the write barrier: the overwritten reference is
    /// published to the traversal unit's root region; returns it so the
    /// caller can enqueue it for marking.
    pub fn write_barrier(&mut self, overwritten: Option<ObjRef>) -> Option<ObjRef> {
        self.stats.writes += 1;
        self.stats.cycles += self.costs.write;
        overwritten
    }

    /// Cost the same workload would pay with a trap-based read barrier
    /// (for the §IV-D comparison).
    pub fn trap_equivalent_cycles(&self) -> Cycle {
        self.stats.read_fast * self.costs.read_fast
            + (self.stats.read_slow_acquire + self.stats.read_slow_hit) * self.costs.trap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(addr: u64) -> ObjRef {
        ObjRef::new(addr)
    }

    #[test]
    fn fast_path_when_nothing_relocates() {
        let mut fwd = ForwardingState::new();
        let mut b = BarrierModel::new(BarrierCosts::default());
        let r = obj(0x4000_0010);
        assert_eq!(b.read_barrier(&mut fwd, r), r);
        assert_eq!(b.stats().read_fast, 1);
        assert_eq!(b.stats().read_slow_acquire, 0);
    }

    #[test]
    fn relocated_object_is_forwarded() {
        let mut fwd = ForwardingState::new();
        let old = obj(0x4000_0010);
        let new = obj(0x5000_0010);
        fwd.relocate_page(0x4000_0000, &[(old, new)]);
        let mut b = BarrierModel::new(BarrierCosts::default());
        assert_eq!(b.read_barrier(&mut fwd, old), new);
        assert_eq!(b.stats().read_slow_acquire, 1);
    }

    #[test]
    fn second_access_to_line_is_cheap() {
        let mut fwd = ForwardingState::new();
        let a = obj(0x4000_0010);
        let b_ = obj(0x4000_0018); // same 64-byte line
        fwd.relocate_page(
            0x4000_0000,
            &[(a, obj(0x5000_0010)), (b_, obj(0x5000_0018))],
        );
        let mut b = BarrierModel::new(BarrierCosts::default());
        b.read_barrier(&mut fwd, a);
        b.read_barrier(&mut fwd, b_);
        assert_eq!(b.stats().read_slow_acquire, 1);
        assert_eq!(b.stats().read_slow_hit, 1);
    }

    #[test]
    fn finish_page_restores_fast_path() {
        let mut fwd = ForwardingState::new();
        let old = obj(0x4000_0010);
        fwd.relocate_page(0x4000_0000, &[(old, obj(0x5000_0010))]);
        fwd.finish_page(0x4000_0000);
        assert!(!fwd.is_relocating(old.addr()));
        let mut b = BarrierModel::new(BarrierCosts::default());
        assert_eq!(b.read_barrier(&mut fwd, old), old);
        assert_eq!(b.stats().read_fast, 1);
    }

    #[test]
    fn unforwarded_object_on_relocating_page_keeps_address() {
        let mut fwd = ForwardingState::new();
        let moved = obj(0x4000_0010);
        let stayed = obj(0x4000_0100); // same page, delta 0
        fwd.relocate_page(0x4000_0000, &[(moved, obj(0x5000_0010))]);
        let mut b = BarrierModel::new(BarrierCosts::default());
        assert_eq!(b.read_barrier(&mut fwd, stayed), stayed);
    }

    #[test]
    fn coherence_trick_beats_traps() {
        let mut fwd = ForwardingState::new();
        let old = obj(0x4000_0010);
        fwd.relocate_page(0x4000_0000, &[(old, obj(0x5000_0010))]);
        let mut b = BarrierModel::new(BarrierCosts::default());
        for _ in 0..100 {
            b.read_barrier(&mut fwd, old);
        }
        assert!(b.stats().cycles < b.trap_equivalent_cycles());
    }

    #[test]
    fn write_barrier_returns_the_overwritten_ref() {
        let mut b = BarrierModel::new(BarrierCosts::default());
        let r = obj(0x4000_0010);
        assert_eq!(b.write_barrier(Some(r)), Some(r));
        assert_eq!(b.write_barrier(None), None);
        assert_eq!(b.stats().writes, 2);
    }
}
