//! The Reclamation Unit: parallel block sweepers (Fig. 8, §V-D).
//!
//! Blocks are read from a global block list and distributed to block
//! sweepers that reclaim them in parallel. Each sweeper steps through a
//! block's cells linearly: it reads the word at the start of the cell —
//! LSB 1 means a live cell with a bidirectional layout, otherwise it is a
//! free-list pointer — locates the word containing the mark bit, and
//! either clears the mark (reachable), links the cell onto the new free
//! list (dead or already free), or skips ahead. Each sweeper holds only
//! two line buffers ("the mark queue and sweeper access memory
//! sequentially and therefore only need 2 cache lines", §VI-B).
//!
//! Fig. 20 scales the sweeper count 1–8: linear to 2, diminishing
//! beyond, with memory contention outweighing parallelism at 8.

use tracegc_heap::layout::{
    bidi, conv, decode_cell_start, encode_free_cell_start, CellStart, Header, LayoutKind,
};
use tracegc_heap::{Heap, SocCtx};
use tracegc_mem::{MemReq, MemSystem, Source};
use tracegc_sim::metrics::DEFAULT_TRACE_CAPACITY;
use tracegc_sim::sched::{Engine, Exec, Partition, Policy, Progress, Scheduler};
use tracegc_sim::{Cycle, EventTrace, StallAccounting, StallReason};
use tracegc_vmem::{Requester, Translator};

use crate::config::GcUnitConfig;

/// Result of one sweep pass on the reclamation unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimResult {
    /// Cycle the pass began.
    pub start: Cycle,
    /// Cycle the last sweeper finished.
    pub end: Cycle,
    /// Cells scanned across all blocks.
    pub cells_scanned: u64,
    /// Dead-object cells converted to free-list entries.
    pub cells_freed: u64,
    /// Surviving (marked) objects whose marks were cleared.
    pub live_objects: u64,
    /// Memory read requests issued by the sweepers.
    pub line_reads: u64,
    /// Parallel sweeper lanes the pass ran with.
    pub lanes: u64,
    /// Cycle attribution summed across all lanes:
    /// `stalls.total() == cycles() * lanes`. A sweeper that drains its
    /// share of blocks before its siblings charges the remainder to
    /// [`StallReason::Idle`].
    pub stalls: StallAccounting,
}

impl ReclaimResult {
    /// Duration of the pass in cycles.
    pub fn cycles(&self) -> Cycle {
        self.end - self.start
    }
}

/// A per-sweeper line buffer: the 64-byte line at `line_va` is valid from
/// cycle `ready`.
#[derive(Debug, Clone, Copy)]
struct LineBuf {
    line_va: u64,
    ready: Cycle,
    last_use: u64,
}

/// One block sweeper's progress through its current block.
#[derive(Debug)]
struct Sweeper {
    /// Index into the heap's block table, or `None` between blocks.
    block: Option<BlockJob>,
    bufs: Vec<LineBuf>,
    use_clock: u64,
    /// The sweeper's own notion of time (sweepers run in parallel).
    now: Cycle,
}

#[derive(Debug)]
struct BlockJob {
    bidx: usize,
    base_va: u64,
    cell_bytes: u64,
    ncells: u64,
    next_cell: u64,
    /// Tail of the free list being built (0 = list empty so far).
    tail: u64,
    free_head: u64,
    free_cells: u64,
}

/// The reclamation unit.
#[derive(Debug)]
pub struct ReclamationUnit {
    cfg: GcUnitConfig,
    translator: Translator,
    ptw_cache: tracegc_mem::Cache,
    /// Event ring, present when `cfg.trace` is set.
    trace: Option<EventTrace>,
}

impl ReclamationUnit {
    /// Builds the unit bound to `heap`'s address space.
    pub fn new(cfg: GcUnitConfig, heap: &Heap) -> Self {
        Self {
            translator: Translator::new(heap.address_space(), cfg.tlb),
            ptw_cache: tracegc_mem::Cache::new(cfg.tlb.ptw_cache),
            trace: cfg.trace.then(|| EventTrace::new(DEFAULT_TRACE_CAPACITY)),
            cfg,
        }
    }

    /// The event ring (if tracing is enabled), leaving tracing active.
    pub fn take_trace(&mut self) -> Option<EventTrace> {
        let capacity = self.trace.as_ref()?.capacity();
        self.trace.replace(EventTrace::new(capacity))
    }

    /// Runs a full sweep starting at `start`, rebuilding every block's
    /// free list and clearing surviving mark bits. Functionally identical
    /// to [`tracegc_heap::verify::software_sweep`].
    ///
    /// A thin driver: schedules a single [`SweepEngine`] under the
    /// lockstep policy, which replays the historical min-local-clock
    /// event loop action-for-action (proven cycle- and ledger-exact by
    /// `tests/engine_equivalence.rs`).
    pub fn run_sweep(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemSystem,
        start: Cycle,
    ) -> ReclaimResult {
        let mut engine = SweepEngine::new(self, 0, start);
        {
            let mut ctx = SocCtx::single(mem, heap);
            Scheduler::new(Policy::Lockstep).run(&mut [&mut engine], &mut ctx, start);
        }
        engine.into_result()
    }

    /// Reads the 64-byte line containing `va` through the sweeper's line
    /// buffers; returns the cycle the word is available.
    #[allow(clippy::too_many_arguments)]
    fn line_read(
        sweeper: &mut Sweeper,
        heap: &Heap,
        mem: &mut MemSystem,
        line_bufs: usize,
        translator: &mut Translator,
        ptw_cache: &mut tracegc_mem::Cache,
        result: &mut ReclaimResult,
        va: u64,
    ) -> Cycle {
        let line_va = va & !63;
        sweeper.use_clock += 1;
        let clock = sweeper.use_clock;
        if let Some(buf) = sweeper.bufs.iter_mut().find(|b| b.line_va == line_va) {
            buf.last_use = clock;
            // An in-flight buffered line: the remaining wait is memory.
            result.stalls.stall(
                StallReason::MemLatency,
                buf.ready.saturating_sub(sweeper.now),
            );
            return buf.ready;
        }
        let before = translator.stats();
        let (pa, ready) = translator
            .translate_with_cache(
                Requester::Sweeper,
                line_va,
                sweeper.now,
                mem,
                &heap.phys,
                ptw_cache,
            )
            .unwrap_or_else(|e| panic!("sweeper fault: {e}"));
        let after = translator.stats();
        let done = mem.schedule(&MemReq::read(pa, 64, Source::Sweeper), ready);
        // Split the wait: the translation portion is a TLB-miss walk (or
        // a wait behind the busy shared walker), the rest is the line
        // fetch itself.
        let total = done.saturating_sub(sweeper.now);
        let xlat = if after.walks > before.walks {
            ready.saturating_sub(sweeper.now).min(total)
        } else {
            0
        };
        if xlat > 0 {
            let reason = if after.walker_wait_cycles > before.walker_wait_cycles {
                StallReason::PtwBusy
            } else {
                StallReason::TlbMiss
            };
            result.stalls.stall(reason, xlat);
        }
        result.stalls.stall(StallReason::MemLatency, total - xlat);
        result.line_reads += 1;
        let entry = LineBuf {
            line_va,
            ready: done,
            last_use: clock,
        };
        if sweeper.bufs.len() < line_bufs {
            sweeper.bufs.push(entry);
        } else {
            let lru = sweeper
                .bufs
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.last_use)
                .map(|(i, _)| i)
                .expect("buffers non-empty");
            sweeper.bufs[lru] = entry;
        }
        done
    }

    /// Processes one cell of the sweeper's current block.
    #[allow(clippy::too_many_arguments)]
    fn step_cell(
        sweeper: &mut Sweeper,
        heap: &mut Heap,
        mem: &mut MemSystem,
        cfg: &GcUnitConfig,
        translator: &mut Translator,
        ptw_cache: &mut tracegc_mem::Cache,
        trace: &mut Option<EventTrace>,
        result: &mut ReclaimResult,
    ) {
        let line_bufs = cfg.sweeper_line_bufs;
        let job = sweeper.block.as_mut().expect("has a block");
        if job.next_cell >= job.ncells {
            // Block finished: return it to the free/live block lists.
            let job = sweeper.block.take().expect("has a block");
            heap.set_block_free_list(job.bidx, job.free_head, job.free_cells);
            if let Some(trace) = trace {
                trace.record(sweeper.now, "sweeper", "block_done", job.bidx as u64);
            }
            sweeper.bufs.clear();
            sweeper.now += cfg.sweeper_block_cycles;
            result.stalls.busy(cfg.sweeper_block_cycles);
            return;
        }
        let cell = job.base_va + job.next_cell * job.cell_bytes;
        job.next_cell += 1;
        result.cells_scanned += 1;
        sweeper.now += cfg.sweeper_cell_cycles;
        result.stalls.busy(cfg.sweeper_cell_cycles);

        // Read the cell-start word and classify.
        let (cell_copy, layout) = (cell, heap.layout());
        let t = {
            let job_now = sweeper.now;
            let _ = job_now;
            Self::line_read(
                sweeper, heap, mem, line_bufs, translator, ptw_cache, result, cell_copy,
            )
        };
        sweeper.now = sweeper.now.max(t);
        let start_word = heap.read_va(cell);

        // Re-borrow the job after the heap accesses.
        let job = sweeper.block.as_mut().expect("has a block");
        match decode_cell_start(start_word) {
            CellStart::Free { .. } => {
                // Already free: re-link onto the new list.
                Self::append_free(heap, mem, sweeper.now, job, cell);
            }
            CellStart::Live { nrefs, .. } => {
                let header_va = match layout {
                    LayoutKind::Bidirectional => bidi::header_of_cell(cell, nrefs),
                    LayoutKind::Conventional => conv::header_of_cell(cell),
                };
                let t = Self::line_read(
                    sweeper, heap, mem, line_bufs, translator, ptw_cache, result, header_va,
                );
                sweeper.now = sweeper.now.max(t);
                let header = Header::from_raw(heap.read_va(header_va));
                let job = sweeper.block.as_mut().expect("has a block");
                if header.is_marked() {
                    // Reachable: clear the mark (posted 8-byte write).
                    heap.write_va(header_va, header.without_mark().raw());
                    let pa = heap.va_to_pa(header_va);
                    mem.schedule(&MemReq::write(pa, 8, Source::Sweeper), sweeper.now);
                    result.live_objects += 1;
                } else {
                    // Dead: the cell joins the free list.
                    Self::append_free(heap, mem, sweeper.now, job, cell);
                    result.cells_freed += 1;
                }
            }
        }
    }

    /// Links `cell` onto the block's new free list (address order is
    /// preserved because cells are visited in address order).
    fn append_free(
        heap: &mut Heap,
        mem: &mut MemSystem,
        now: Cycle,
        job: &mut BlockJob,
        cell: u64,
    ) {
        heap.write_va(cell, encode_free_cell_start(0));
        let pa = heap.va_to_pa(cell);
        mem.schedule(&MemReq::write(pa, 8, Source::Sweeper), now);
        if job.tail == 0 {
            job.free_head = cell;
        } else {
            heap.write_va(job.tail, encode_free_cell_start(cell));
            let tail_pa = heap.va_to_pa(job.tail);
            mem.schedule(&MemReq::write(tail_pa, 8, Source::Sweeper), now);
        }
        job.tail = cell;
        job.free_cells += 1;
    }

    /// Suppresses the unused-field lint until per-requester cache stats
    /// are surfaced (the sweeper PTW cache is real and used in walks).
    pub fn ptw_cache_stats(&self) -> &tracegc_mem::CacheStats {
        self.ptw_cache.stats()
    }

    /// Bytes of the word within its 64-byte line (helper for tests).
    pub fn word_in_line(va: u64) -> u64 {
        va & 63
    }
}

/// The reclamation unit's sweeper array as a scheduled engine over
/// `heaps[heap_idx]`.
///
/// Each [`step`](SweepEngine::step) replays every sweeper action whose
/// local clock has been reached — block fetches and cell scans, chosen
/// earliest-local-clock-first exactly like the historical event loop —
/// so the action order, memory-request timestamps and [`ReclaimResult`]
/// are identical whether the engine runs alone or interleaved with
/// other engines on a shared memory system. When all blocks are swept
/// the engine stalls until the slowest lane's finish cycle (charging
/// early lanes' idle tails), finalizes the heap (free lists, LOS mark
/// clears) and reports [`Progress::Done`].
///
/// The engine self-accounts its multi-lane ledger into the
/// [`ReclaimResult`], so the scheduler's `note_busy`/`note_stall`
/// charges stay the default no-ops.
#[derive(Debug)]
pub struct SweepEngine<'a> {
    unit: &'a mut ReclamationUnit,
    heap_idx: usize,
    sweepers: Vec<Sweeper>,
    /// Block count, captured from the heap on the first step.
    nblocks: Option<usize>,
    next_block: usize,
    result: ReclaimResult,
    finalized: bool,
}

impl<'a> SweepEngine<'a> {
    /// A sweep pass over `heaps[heap_idx]` starting at `start`.
    pub fn new(unit: &'a mut ReclamationUnit, heap_idx: usize, start: Cycle) -> Self {
        let lanes = unit.cfg.sweepers.max(1);
        let line_bufs = unit.cfg.sweeper_line_bufs;
        Self {
            unit,
            heap_idx,
            sweepers: (0..lanes)
                .map(|_| Sweeper {
                    block: None,
                    bufs: Vec::with_capacity(line_bufs),
                    use_clock: 0,
                    now: start,
                })
                .collect(),
            nblocks: None,
            next_block: 0,
            result: ReclaimResult {
                start,
                end: start,
                lanes: lanes as u64,
                ..ReclaimResult::default()
            },
            finalized: false,
        }
    }

    /// The completed pass's result (after the scheduler reports done).
    pub fn into_result(self) -> ReclaimResult {
        self.result
    }

    /// Index of the earliest-clock sweeper with work, if any.
    fn earliest_pending(&self) -> Option<usize> {
        let nblocks = self.nblocks.unwrap_or(0);
        (0..self.sweepers.len())
            .filter(|&i| self.sweepers[i].block.is_some() || self.next_block < nblocks)
            .min_by_key(|&i| self.sweepers[i].now)
    }

    /// Idle tails, free-list bookkeeping and LOS mark clears once every
    /// block is swept.
    fn finalize(&mut self, heap: &mut Heap) {
        for s in &self.sweepers {
            self.result.end = self.result.end.max(s.now);
        }
        // A lane that finished early is idle until the slowest one ends,
        // keeping busy + stalls == cycles × lanes exact.
        for s in &self.sweepers {
            self.result
                .stalls
                .stall(StallReason::Idle, self.result.end - s.now);
        }
        heap.finish_sweep();
        // LOS marks are cleared by the runtime (§V-A).
        for los in heap.los_objects().to_vec() {
            let h = heap.header(los.obj).without_mark();
            heap.write_va(los.obj.addr(), h.raw());
        }
        self.finalized = true;
    }
}

impl<'a, 'c> Engine<SocCtx<'c>> for SweepEngine<'a> {
    fn name(&self) -> &'static str {
        "reclaim"
    }

    fn step(&mut self, now: Cycle, ctx: &mut SocCtx<'c>) -> Progress {
        let SocCtx { mem, heaps, .. } = ctx;
        let heap = &mut *heaps[self.heap_idx];
        if self.nblocks.is_none() {
            self.nblocks = Some(heap.blocks().len());
        }
        // Replay every sweeper action due by the shared clock, earliest
        // local clock first: the same global time-ordering the
        // historical standalone loop produced, so the interleaving of
        // requests through the shared memory system is unchanged.
        let mut progress = false;
        while let Some(idx) = self.earliest_pending() {
            if self.sweepers[idx].now > now {
                return if progress {
                    Progress::Advanced
                } else {
                    Progress::Stalled
                };
            }
            let sweeper = &mut self.sweepers[idx];
            if sweeper.block.is_none() {
                // Fetch the next block from the global block list.
                let info = heap.blocks()[self.next_block];
                sweeper.block = Some(BlockJob {
                    bidx: self.next_block,
                    base_va: info.base_va,
                    cell_bytes: info.cell_bytes,
                    ncells: info.ncells,
                    next_cell: 0,
                    tail: 0,
                    free_head: 0,
                    free_cells: 0,
                });
                self.next_block += 1;
                sweeper.now += self.unit.cfg.sweeper_block_cycles;
                self.result.stalls.busy(self.unit.cfg.sweeper_block_cycles);
            } else {
                ReclamationUnit::step_cell(
                    sweeper,
                    heap,
                    mem,
                    &self.unit.cfg,
                    &mut self.unit.translator,
                    &mut self.unit.ptw_cache,
                    &mut self.unit.trace,
                    &mut self.result,
                );
            }
            progress = true;
        }
        // All blocks swept: wait out the slowest lane, then finish.
        if !self.finalized {
            self.finalize(heap);
        }
        if now >= self.result.end {
            Progress::Done
        } else if progress {
            Progress::Advanced
        } else {
            Progress::Stalled
        }
    }

    // Contract-honest: every sweeper lane is self-clocked, so the
    // earliest lane clock is exactly the next cycle any state changes;
    // after finalization the only remaining event is the slowest lane's
    // end (when `step` reports done).
    fn next_event_at(&self) -> Option<Cycle> {
        self.earliest_pending()
            .map(|i| self.sweepers[i].now)
            .or(self.finalized.then_some(self.result.end))
    }

    fn stall_reason(&self, _now: Cycle) -> StallReason {
        if self.finalized {
            StallReason::Idle
        } else {
            StallReason::MemLatency
        }
    }

    fn ledger(&self) -> Option<StallAccounting> {
        Some(self.result.stalls)
    }
}

/// One independent sweep: a reclamation unit, the heap it sweeps and a
/// *private* memory channel.
///
/// Within one [`ReclamationUnit`] the sweeper lanes share line buffers
/// and a memory controller every cycle, so a lane array is one
/// indivisible partition; what parallelizes across host threads are
/// whole sweeps over disjoint heaps on disjoint channels — see
/// [`run_partitioned_sweep`].
#[derive(Debug)]
pub struct SweepPartition {
    /// The partition's reclamation unit.
    pub unit: ReclamationUnit,
    /// The heap being swept.
    pub heap: Heap,
    /// The partition's private memory channel.
    pub mem: MemSystem,
}

/// Sweeps every partition's heap on its own unit and memory channel,
/// executing the sweeps as independent partitions under `exec`.
///
/// Deterministic: results come back in partition order and are
/// byte-identical for every `exec` (each equals a solo
/// [`ReclamationUnit::run_sweep`]); each [`ReclaimResult`]'s ledger
/// stays closed (`busy + Σ stalls == cycles × lanes`), so any
/// partition-order merge of the ledgers closes too.
pub fn run_partitioned_sweep(
    parts: &mut [SweepPartition],
    exec: Exec,
    start: Cycle,
) -> Vec<ReclaimResult> {
    assert!(!parts.is_empty(), "need at least one sweep partition");
    let mut engines = Vec::with_capacity(parts.len());
    let mut ctxs = Vec::with_capacity(parts.len());
    for p in parts.iter_mut() {
        let SweepPartition { unit, heap, mem } = p;
        engines.push(SweepEngine::new(unit, 0, start));
        ctxs.push(SocCtx::new(mem, vec![&mut *heap]));
    }
    let partitions: Vec<Partition<'_, SocCtx>> = engines
        .iter_mut()
        .zip(ctxs.iter_mut())
        .map(|(e, ctx)| Partition {
            engines: vec![e as &mut (dyn Engine<SocCtx> + Send)],
            ctx,
        })
        .collect();
    Scheduler::new(Policy::Lockstep)
        .try_run_partitioned(exec, partitions, start)
        .unwrap_or_else(|e| panic!("{e}"));
    engines.into_iter().map(SweepEngine::into_result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegc_heap::verify::{check_free_lists, software_mark, software_sweep};
    use tracegc_heap::{HeapConfig, ObjRef};

    fn marked_heap(n: usize) -> Heap {
        let mut h = Heap::new(HeapConfig {
            phys_bytes: 128 << 20,
            ..HeapConfig::default()
        });
        let objs: Vec<ObjRef> = (0..n)
            .map(|i| h.alloc((i % 3) as u32, (i % 8) as u32, false).unwrap())
            .collect();
        let live = n / 2;
        for i in 0..live.saturating_sub(1) {
            if h.nrefs(objs[i]) > 0 {
                h.set_ref(objs[i], 0, Some(objs[i + 1]));
            }
        }
        h.set_roots(&objs[..live]);
        software_mark(&mut h);
        h
    }

    #[test]
    fn hw_sweep_matches_software_oracle() {
        let n = 3000;
        // Reference outcome from the software oracle.
        let mut href = marked_heap(n);
        let expected = software_sweep(&mut href);

        let mut heap = marked_heap(n);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = ReclamationUnit::new(GcUnitConfig::default(), &heap);
        let result = unit.run_sweep(&mut heap, &mut mem, 0);

        assert_eq!(result.cells_freed, expected.freed_cells);
        assert_eq!(result.live_objects, expected.live_objects);
        check_free_lists(&heap).unwrap();
        assert!(heap.marked_set().is_empty());
        // Block metadata agrees with the oracle heap.
        for (a, b) in heap.blocks().iter().zip(href.blocks()) {
            assert_eq!(a.free_cells, b.free_cells);
            assert_eq!(a.free_head, b.free_head);
        }
    }

    #[test]
    fn more_sweepers_are_faster_until_contention() {
        let time_with = |sweepers: usize| {
            let mut heap = marked_heap(6000);
            let mut mem = MemSystem::ddr3(Default::default());
            let cfg = GcUnitConfig {
                sweepers,
                ..GcUnitConfig::default()
            };
            let mut unit = ReclamationUnit::new(cfg, &heap);
            unit.run_sweep(&mut heap, &mut mem, 0).cycles()
        };
        let one = time_with(1);
        let two = time_with(2);
        let four = time_with(4);
        assert!(two < one, "2 sweepers ({two}) should beat 1 ({one})");
        assert!(
            four <= two,
            "4 sweepers ({four}) should not lose to 2 ({two})"
        );
        // Scaling must be sublinear by 4 (contention).
        assert!(
            four * 4 > one,
            "scaling should be sublinear: {one} vs {four}"
        );
    }

    #[test]
    fn sweep_preserves_live_objects() {
        let mut heap = marked_heap(2000);
        let live_before = heap.reachable_from_roots();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = ReclamationUnit::new(GcUnitConfig::default(), &heap);
        unit.run_sweep(&mut heap, &mut mem, 0);
        assert_eq!(heap.reachable_from_roots(), live_before);
    }

    #[test]
    fn allocation_works_after_hw_sweep() {
        let mut heap = marked_heap(2000);
        let blocks_before = heap.blocks().len();
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = ReclamationUnit::new(GcUnitConfig::default(), &heap);
        unit.run_sweep(&mut heap, &mut mem, 0);
        for _ in 0..500 {
            heap.alloc(1, 3, false).unwrap();
        }
        assert_eq!(heap.blocks().len(), blocks_before, "swept cells reused");
    }

    #[test]
    fn line_buffers_amortize_small_cells() {
        // Small cells share lines: the sweeper must issue far fewer reads
        // than 2 per cell.
        let mut heap = marked_heap(4000);
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = ReclamationUnit::new(GcUnitConfig::default(), &heap);
        let result = unit.run_sweep(&mut heap, &mut mem, 0);
        assert!(
            result.line_reads < result.cells_scanned,
            "line reuse missing: {} reads for {} cells",
            result.line_reads,
            result.cells_scanned
        );
    }

    #[test]
    fn empty_heap_sweep_is_trivial() {
        let mut heap = Heap::new(HeapConfig {
            phys_bytes: 64 << 20,
            ..HeapConfig::default()
        });
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = ReclamationUnit::new(GcUnitConfig::default(), &heap);
        let result = unit.run_sweep(&mut heap, &mut mem, 0);
        assert_eq!(result.cells_scanned, 0);
        assert_eq!(result.cells_freed, 0);
    }

    #[test]
    fn sweep_stalls_sum_to_lane_cycles() {
        for sweepers in [1usize, 2, 4] {
            let mut heap = marked_heap(3000);
            let mut mem = MemSystem::ddr3(Default::default());
            let cfg = GcUnitConfig {
                sweepers,
                ..GcUnitConfig::default()
            };
            let mut unit = ReclamationUnit::new(cfg, &heap);
            let result = unit.run_sweep(&mut heap, &mut mem, 0);
            assert_eq!(result.lanes, sweepers as u64);
            assert_eq!(
                result.stalls.total(),
                result.cycles() * result.lanes,
                "busy + stalls must cover all {sweepers} lanes exactly"
            );
            assert!(result.stalls.busy_cycles() > 0);
            if sweepers > 1 {
                // Sibling lanes never finish on exactly the same cycle at
                // this scale, so some idle tail must be attributed.
                assert!(result.stalls.stalled(StallReason::Idle) > 0);
            }
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let run = || {
            let mut heap = marked_heap(1500);
            let mut mem = MemSystem::ddr3(Default::default());
            let mut unit = ReclamationUnit::new(GcUnitConfig::default(), &heap);
            let r = unit.run_sweep(&mut heap, &mut mem, 0);
            (r.end, r.cells_freed, r.line_reads)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partitioned_sweep_is_exec_invariant_and_matches_solo_runs() {
        use tracegc_sim::Exec;
        let sizes = [1200usize, 2400, 800];
        // The reference: each heap swept solo on its own channel.
        let solo: Vec<ReclaimResult> = sizes
            .iter()
            .map(|&n| {
                let mut heap = marked_heap(n);
                let mut mem = MemSystem::ddr3(Default::default());
                let mut unit = ReclamationUnit::new(GcUnitConfig::default(), &heap);
                unit.run_sweep(&mut heap, &mut mem, 0)
            })
            .collect();
        for exec in [Exec::Serial, Exec::Parallel { workers: 4 }] {
            let mut parts: Vec<SweepPartition> = sizes
                .iter()
                .map(|&n| {
                    let heap = marked_heap(n);
                    let unit = ReclamationUnit::new(GcUnitConfig::default(), &heap);
                    SweepPartition {
                        unit,
                        heap,
                        mem: MemSystem::ddr3(Default::default()),
                    }
                })
                .collect();
            let results = run_partitioned_sweep(&mut parts, exec, 0);
            assert_eq!(results, solo, "{exec:?}");
            // Each partition's ledger closes, so the merged one does too.
            let mut merged = StallAccounting::default();
            for r in &results {
                assert_eq!(r.stalls.total(), r.cycles() * r.lanes);
                merged.merge(&r.stalls);
            }
            let lane_cycles: u64 = results.iter().map(|r| r.cycles() * r.lanes).sum();
            assert_eq!(merged.total(), lane_cycles);
            for p in &parts {
                check_free_lists(&p.heap).unwrap();
            }
        }
    }
}
