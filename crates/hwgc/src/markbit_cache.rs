//! The mark-bit cache (§V-C, Fig. 21).
//!
//! "About 10% of mark operations access the same 56 objects in our
//! benchmarks. We therefore conclude that a small mark bit cache that
//! stores a set of recently accessed objects can be efficient at
//! reducing traffic." The cache is a tiny fully-associative LRU set of
//! recently *marked* references; a hit means the mark AMO can be
//! filtered before it ever reaches the memory system.

/// A small LRU filter over recently marked object references.
///
/// A capacity of zero disables filtering (every lookup misses).
///
/// # Examples
///
/// ```
/// use tracegc_hwgc::MarkBitCache;
///
/// let mut cache = MarkBitCache::new(64);
/// assert!(!cache.filter(0x4000_0010)); // first sight: not filtered
/// assert!(cache.filter(0x4000_0010)); // hot object: filtered
/// ```
#[derive(Debug, Clone)]
pub struct MarkBitCache {
    entries: Vec<(u64, u64)>, // (ref, last_use)
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl MarkBitCache {
    /// Creates a cache holding `capacity` references (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `va` and inserts it on a miss. Returns `true` when the
    /// reference was recently marked and the AMO can be skipped.
    pub fn filter(&mut self, va: u64) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == va) {
            e.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("full cache non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((va, self.clock));
        false
    }

    /// Lookups that hit (mark operations filtered).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups filtered, 0.0 when unused.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empties the cache (between GC passes).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_filters() {
        let mut c = MarkBitCache::new(0);
        assert!(!c.filter(8));
        assert!(!c.filter(8));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn repeated_reference_is_filtered() {
        let mut c = MarkBitCache::new(4);
        assert!(!c.filter(16));
        assert!(c.filter(16));
        assert!(c.filter(16));
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_keeps_hot_entries() {
        let mut c = MarkBitCache::new(2);
        c.filter(8); // A
        c.filter(16); // B
        c.filter(8); // touch A -> B is LRU
        c.filter(24); // C evicts B
        assert!(c.filter(8), "hot entry evicted");
        assert!(!c.filter(16), "cold entry retained");
    }

    #[test]
    fn hit_ratio_reflects_skew() {
        let mut c = MarkBitCache::new(8);
        // One hot object referenced 90 times among 10 cold ones.
        for i in 0..100u64 {
            let va = if i % 10 == 0 { 8 * (i + 1000) } else { 0x100 };
            c.filter(va);
        }
        assert!(c.hit_ratio() > 0.8, "ratio {}", c.hit_ratio());
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut c = MarkBitCache::new(2);
        c.filter(8);
        c.clear();
        assert!(!c.filter(8));
        assert_eq!(c.misses(), 2);
    }
}
