//! Property-based tests for the accelerator: the mark queue's spill
//! machinery never loses or duplicates entries, compression round-trips,
//! and the traversal unit matches the reachability oracle on arbitrary
//! graphs under arbitrary (legal) configurations.

use proptest::prelude::*;

use tracegc_heap::verify::check_marks_match_reachability;
use tracegc_heap::{Heap, HeapConfig, ObjRef};
use tracegc_hwgc::{GcUnitConfig, MarkQueue, MarkQueueConfig, RefCodec, TraversalUnit};
use tracegc_mem::{MemSystem, PhysMem};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compression_roundtrips(word_off in 0u64..=u32::MAX as u64) {
        let base = 0x2000_0000u64;
        let codec = RefCodec::Compressed { base };
        let va = base + word_off * 8;
        prop_assert_eq!(codec.decode(codec.encode(va)), va);
    }

    #[test]
    fn markq_preserves_the_multiset_under_arbitrary_interleavings(
        main in 1usize..32,
        ops in proptest::collection::vec((any::<bool>(), 1u64..1 << 20), 1..300),
        compress: bool,
    ) {
        let codec = if compress {
            RefCodec::Compressed { base: 0x4000_0000 }
        } else {
            RefCodec::Full
        };
        let mut q = MarkQueue::new(MarkQueueConfig {
            main_entries: main,
            side_entries: 32,
            throttle_level: 24,
            codec,
            spill_base: 0,
            spill_bytes: 1 << 20,
        });
        let mut mem = MemSystem::pipe(Default::default());
        let mut phys = PhysMem::new(2 << 20);
        let mut pushed: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();
        let mut now = 0u64;
        for (is_push, off) in &ops {
            let mut port = true;
            q.tick(now, &mut mem, &mut phys, None, &mut port);
            if *is_push {
                let va = 0x4000_0000 + off * 8;
                if q.enqueue(va) {
                    pushed.push(va);
                }
            } else if let Some(v) = q.dequeue() {
                popped.push(v);
            }
            now += 7;
        }
        // Drain completely.
        let mut idle = 0;
        now += 1_000_000;
        while !q.is_empty() {
            let mut port = true;
            q.tick(now, &mut mem, &mut phys, None, &mut port);
            while let Some(v) = q.dequeue() {
                popped.push(v);
            }
            now += 50;
            idle += 1;
            prop_assert!(idle < 50_000, "queue failed to drain");
        }
        pushed.sort_unstable();
        popped.sort_unstable();
        prop_assert_eq!(pushed, popped);
    }
}

/// Builds a heap from a random edge list.
fn build_random_heap(
    n: usize,
    edges: &[(usize, usize)],
    roots: &[usize],
) -> Heap {
    let mut heap = Heap::new(HeapConfig {
        phys_bytes: 32 << 20,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..n)
        .map(|i| heap.alloc(3, (i % 3) as u32, false).expect("fits"))
        .collect();
    let mut used = vec![0u32; n];
    for &(from, to) in edges {
        if used[from] < 3 {
            heap.set_ref(objs[from], used[from], Some(objs[to]));
            used[from] += 1;
        }
    }
    let root_refs: Vec<ObjRef> = roots.iter().map(|&i| objs[i]).collect();
    heap.set_roots(&root_refs);
    heap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unit_matches_oracle_on_random_graphs(
        n in 4usize..80,
        seed_edges in proptest::collection::vec((0usize..80, 0usize..80), 0..200),
        root in 0usize..80,
        markq_entries in 16usize..256,
        marker_slots in 1usize..24,
        markbit in prop_oneof![Just(0usize), Just(16), Just(64)],
        compress: bool,
    ) {
        let edges: Vec<(usize, usize)> = seed_edges
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .collect();
        let mut heap = build_random_heap(n, &edges, &[root % n]);
        let cfg = GcUnitConfig {
            markq_entries,
            markq_side: 16,
            marker_slots,
            markbit_cache: markbit,
            compress,
            ..GcUnitConfig::default()
        };
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(cfg, &mut heap);
        let result = unit.run_mark(&mut heap, &mut mem, 0);
        prop_assert!(check_marks_match_reachability(&heap).is_ok());
        prop_assert_eq!(
            result.objects_marked as usize,
            heap.reachable_from_roots().len()
        );
    }
}
