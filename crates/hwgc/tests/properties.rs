//! Property-based tests for the accelerator: the mark queue's spill
//! machinery never loses or duplicates entries, compression round-trips,
//! and the traversal unit matches the reachability oracle on arbitrary
//! graphs under arbitrary (legal) configurations. Randomized cases come
//! from fixed seeds.

use tracegc_heap::verify::check_marks_match_reachability;
use tracegc_heap::{Heap, HeapConfig, ObjRef};
use tracegc_hwgc::{GcUnitConfig, MarkQueue, MarkQueueConfig, RefCodec, TraversalUnit};
use tracegc_mem::{MemSystem, PhysMem};
use tracegc_sim::rng::{Rng, StdRng};

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x496C_0000 + property * 10_007 + case)
}

#[test]
fn compression_roundtrips() {
    for case in 0..100 {
        let mut rng = case_rng(1, case);
        let word_off = rng.random_range(0u64..(u32::MAX as u64) + 1);
        let base = 0x2000_0000u64;
        let codec = RefCodec::Compressed { base };
        let va = base + word_off * 8;
        assert_eq!(codec.decode(codec.encode(va)), va, "case {case}");
    }
}

#[test]
fn markq_preserves_the_multiset_under_arbitrary_interleavings() {
    for case in 0..100 {
        let mut rng = case_rng(2, case);
        let main = rng.random_range(1usize..32);
        let compress = rng.random::<bool>();
        let codec = if compress {
            RefCodec::Compressed { base: 0x4000_0000 }
        } else {
            RefCodec::Full
        };
        let mut q = MarkQueue::new(MarkQueueConfig {
            main_entries: main,
            side_entries: 32,
            throttle_level: 24,
            codec,
            spill_base: 0,
            spill_bytes: 1 << 20,
        });
        let mut mem = MemSystem::pipe(Default::default());
        let mut phys = PhysMem::new(2 << 20);
        let mut pushed: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();
        let mut now = 0u64;
        for _ in 0..rng.random_range(1usize..300) {
            let is_push = rng.random::<bool>();
            let off = rng.random_range(1u64..1 << 20);
            let mut port = true;
            q.tick(now, &mut mem, &mut phys, None, &mut port);
            if is_push {
                let va = 0x4000_0000 + off * 8;
                if q.enqueue(va) {
                    pushed.push(va);
                }
            } else if let Some(v) = q.dequeue() {
                popped.push(v);
            }
            now += 7;
        }
        // Drain completely.
        let mut idle = 0;
        now += 1_000_000;
        while !q.is_empty() {
            let mut port = true;
            q.tick(now, &mut mem, &mut phys, None, &mut port);
            while let Some(v) = q.dequeue() {
                popped.push(v);
            }
            now += 50;
            idle += 1;
            assert!(idle < 50_000, "case {case}: queue failed to drain");
        }
        pushed.sort_unstable();
        popped.sort_unstable();
        assert_eq!(pushed, popped, "case {case}");
    }
}

/// Builds a heap from a random edge list.
fn build_random_heap(n: usize, edges: &[(usize, usize)], roots: &[usize]) -> Heap {
    let mut heap = Heap::new(HeapConfig {
        phys_bytes: 32 << 20,
        ..HeapConfig::default()
    });
    let objs: Vec<ObjRef> = (0..n)
        .map(|i| heap.alloc(3, (i % 3) as u32, false).expect("fits"))
        .collect();
    let mut used = vec![0u32; n];
    for &(from, to) in edges {
        if used[from] < 3 {
            heap.set_ref(objs[from], used[from], Some(objs[to]));
            used[from] += 1;
        }
    }
    let root_refs: Vec<ObjRef> = roots.iter().map(|&i| objs[i]).collect();
    heap.set_roots(&root_refs);
    heap
}

#[test]
fn unit_matches_oracle_on_random_graphs() {
    // Each case drives the full cycle-level unit, so fewer cases than
    // the structural properties.
    for case in 0..40 {
        let mut rng = case_rng(3, case);
        let n = rng.random_range(4usize..80);
        let edges: Vec<(usize, usize)> = (0..rng.random_range(0usize..200))
            .map(|_| (rng.random_range(0usize..n), rng.random_range(0usize..n)))
            .collect();
        let root = rng.random_range(0usize..n);
        let markq_entries = rng.random_range(16usize..256);
        let marker_slots = rng.random_range(1usize..24);
        let markbit = [0usize, 16, 64][rng.random_range(0usize..3)];
        let compress = rng.random::<bool>();

        let mut heap = build_random_heap(n, &edges, &[root]);
        let cfg = GcUnitConfig {
            markq_entries,
            markq_side: 16,
            marker_slots,
            markbit_cache: markbit,
            compress,
            ..GcUnitConfig::default()
        };
        let mut mem = MemSystem::ddr3(Default::default());
        let mut unit = TraversalUnit::new(cfg, &mut heap);
        let result = unit.run_mark(&mut heap, &mut mem, 0);
        assert!(check_marks_match_reachability(&heap).is_ok(), "case {case}");
        assert_eq!(
            result.objects_marked as usize,
            heap.reachable_from_roots().len(),
            "case {case}"
        );
    }
}
