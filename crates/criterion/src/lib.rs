//! A tiny, dependency-free stand-in for the subset of the
//! [Criterion.rs](https://docs.rs/criterion) API that the `tracegc-bench`
//! targets use.
//!
//! The project must build and test on machines with **no registry
//! access**, so the real `criterion` crate cannot appear anywhere in the
//! dependency graph (even optional registry dependencies participate in
//! resolution). This shim keeps the bench sources compiling unchanged —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}` and
//! `Bencher::iter` — and reports wall-clock statistics (min / median /
//! mean) instead of Criterion's full statistical machinery.
//!
//! Timing methodology: each `bench_function` is warmed up once, then run
//! for `sample_size` samples. Each sample executes the closure in a
//! batch sized so a sample takes ≳1 ms (amortizing timer overhead) and
//! records the mean per-iteration time.
//!
//! # Examples
//!
//! ```
//! use criterion::{criterion_group, criterion_main, Criterion};
//!
//! fn bench(c: &mut Criterion) {
//!     let mut group = c.benchmark_group("demo");
//!     group.sample_size(10);
//!     group.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64) + 1));
//!     group.finish();
//! }
//!
//! criterion_group!(benches, bench);
//! # fn main() {} // criterion_main!(benches) in a real bench target
//! ```

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// The bench context handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut per_iter = bencher.samples;
        if per_iter.is_empty() {
            println!(
                "{}/{}: no measurements (Bencher::iter never called)",
                self.name, id
            );
            return self;
        }
        per_iter.sort_unstable();
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        println!(
            "{}/{}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            self.name,
            id,
            min,
            median,
            mean,
            per_iter.len()
        );
        self
    }

    /// Ends the group (reporting happens per bench; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Runs the closure under timing; handed to `bench_function` callbacks.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples of its mean
    /// per-iteration wall-clock time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and batch sizing: aim for >= 1 ms per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

/// Registers bench functions under a group name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_the_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 3, "warm-up plus 3 samples of >=1 iteration: {runs}");
    }

    #[test]
    fn sample_size_clamps_to_one() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(0);
        group.bench_function("noop", |b| b.iter(|| 1));
    }
}
