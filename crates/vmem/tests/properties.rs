//! Property-based tests for virtual memory: the timed translator always
//! agrees with the page-table oracle, for arbitrary mappings and access
//! orders.

use proptest::prelude::*;

use tracegc_mem::{Cache, CacheConfig, MemSystem, PhysMem};
use tracegc_vmem::{AddressSpace, FrameAlloc, Requester, Tlb, TlbConfig, Translator, PAGE_SIZE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn translator_matches_oracle_for_random_access_orders(
        pages in 1u64..64,
        accesses in proptest::collection::vec((0u64..64, 0u64..4096), 1..200),
        l1 in 1usize..64,
        l2 in 1usize..256,
        walks in 1usize..4,
    ) {
        let mut phys = PhysMem::new(32 << 20);
        let mut falloc = FrameAlloc::new(0, 32 << 20);
        let aspace = AddressSpace::new(&mut phys, &mut falloc);
        let base = 0x4000_0000u64;
        aspace.map_range(&mut phys, &mut falloc, base, pages * PAGE_SIZE);

        let cfg = TlbConfig {
            l1_entries: l1,
            l2_entries: l2,
            concurrent_walks: walks,
            ..TlbConfig::default()
        };
        let mut tr = Translator::new(aspace, cfg);
        let mut mem = MemSystem::pipe(Default::default());
        let mut now = 0;
        for (page, offset) in &accesses {
            let va = base + (page % pages) * PAGE_SIZE + (offset & !7);
            let (pa, t) = tr
                .translate(Requester::Marker, va, now, &mut mem, &phys)
                .expect("mapped");
            prop_assert_eq!(Some(pa), aspace.translate(&phys, va));
            prop_assert!(t >= now);
            now = t;
        }
    }

    #[test]
    fn tlb_never_returns_a_wrong_translation(
        inserts in proptest::collection::vec((0u64..128, 0u64..128), 1..200),
        lookups in proptest::collection::vec(0u64..128, 1..200),
        capacity in 1usize..32,
    ) {
        let mut tlb = Tlb::new(capacity);
        let mut truth = std::collections::HashMap::new();
        for (vpn, ppn) in &inserts {
            tlb.insert(vpn * PAGE_SIZE, ppn * PAGE_SIZE);
            truth.insert(*vpn, *ppn);
        }
        for vpn in &lookups {
            if let Some(pa) = tlb.lookup(vpn * PAGE_SIZE + 8) {
                // A hit must agree with the last inserted mapping.
                prop_assert_eq!(pa, truth[vpn] * PAGE_SIZE + 8);
            }
        }
    }

    #[test]
    fn tlb_capacity_is_never_exceeded(
        inserts in proptest::collection::vec(0u64..256, 1..300),
        capacity in 1usize..16,
    ) {
        let mut tlb = Tlb::new(capacity);
        for vpn in &inserts {
            tlb.insert(vpn * PAGE_SIZE, vpn * PAGE_SIZE);
            prop_assert!(tlb.len() <= capacity);
        }
    }

    #[test]
    fn walk_path_lengths_are_bounded(
        pages in 1u64..32,
        probe in 0u64..64,
    ) {
        let mut phys = PhysMem::new(16 << 20);
        let mut falloc = FrameAlloc::new(0, 16 << 20);
        let aspace = AddressSpace::new(&mut phys, &mut falloc);
        let base = 0x4000_0000u64;
        aspace.map_range(&mut phys, &mut falloc, base, pages * PAGE_SIZE);
        let path = aspace.walk_path(&phys, base + probe * PAGE_SIZE);
        prop_assert!((1..=3).contains(&path.len()));
        if probe < pages {
            prop_assert_eq!(path.len(), 3, "mapped page must walk to the leaf");
        }
    }
}

#[test]
fn translator_uses_external_cache_identically() {
    // translate() and translate_with_cache() must produce the same
    // physical addresses (timing may differ with cache geometry).
    let mut phys = PhysMem::new(16 << 20);
    let mut falloc = FrameAlloc::new(0, 16 << 20);
    let aspace = AddressSpace::new(&mut phys, &mut falloc);
    let base = 0x4000_0000u64;
    aspace.map_range(&mut phys, &mut falloc, base, 8 * PAGE_SIZE);
    let mut internal = Translator::new(aspace, TlbConfig::default());
    let mut external = Translator::new(aspace, TlbConfig::default());
    let mut shared = Cache::new(CacheConfig::hwgc_shared());
    let mut mem = MemSystem::pipe(Default::default());
    for i in 0..8 {
        let va = base + i * PAGE_SIZE + 16;
        let (pa1, _) = internal
            .translate(Requester::Tracer, va, 0, &mut mem, &phys)
            .unwrap();
        let (pa2, _) = external
            .translate_with_cache(Requester::Tracer, va, 0, &mut mem, &phys, &mut shared)
            .unwrap();
        assert_eq!(pa1, pa2);
    }
}
