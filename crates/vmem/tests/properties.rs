//! Property-based tests for virtual memory: the timed translator always
//! agrees with the page-table oracle, for arbitrary mappings and access
//! orders. Randomized cases come from fixed seeds.

use tracegc_mem::{Cache, CacheConfig, MemSystem, PhysMem};
use tracegc_sim::rng::{Rng, StdRng};
use tracegc_vmem::{AddressSpace, FrameAlloc, Requester, Tlb, TlbConfig, Translator, PAGE_SIZE};

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x7AB0_0000 + property * 10_007 + case)
}

#[test]
fn translator_matches_oracle_for_random_access_orders() {
    // Page-table walks through the full memory model are the costly
    // part, so this property uses fewer, larger cases.
    for case in 0..48 {
        let mut rng = case_rng(1, case);
        let pages = rng.random_range(1u64..64);
        let l1 = rng.random_range(1usize..64);
        let l2 = rng.random_range(1usize..256);
        let walks = rng.random_range(1usize..4);

        let mut phys = PhysMem::new(32 << 20);
        let mut falloc = FrameAlloc::new(0, 32 << 20);
        let aspace = AddressSpace::new(&mut phys, &mut falloc);
        let base = 0x4000_0000u64;
        aspace.map_range(&mut phys, &mut falloc, base, pages * PAGE_SIZE);

        let cfg = TlbConfig {
            l1_entries: l1,
            l2_entries: l2,
            concurrent_walks: walks,
            ..TlbConfig::default()
        };
        let mut tr = Translator::new(aspace, cfg);
        let mut mem = MemSystem::pipe(Default::default());
        let mut now = 0;
        for _ in 0..rng.random_range(1usize..200) {
            let page = rng.random_range(0u64..64);
            let offset = rng.random_range(0u64..4096);
            let va = base + (page % pages) * PAGE_SIZE + (offset & !7);
            let (pa, t) = tr
                .translate(Requester::Marker, va, now, &mut mem, &phys)
                .expect("mapped");
            assert_eq!(Some(pa), aspace.translate(&phys, va), "case {case}");
            assert!(t >= now, "case {case}");
            now = t;
        }
    }
}

#[test]
fn tlb_never_returns_a_wrong_translation() {
    for case in 0..100 {
        let mut rng = case_rng(2, case);
        let capacity = rng.random_range(1usize..32);
        let mut tlb = Tlb::new(capacity);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..rng.random_range(1usize..200) {
            let vpn = rng.random_range(0u64..128);
            let ppn = rng.random_range(0u64..128);
            tlb.insert(vpn * PAGE_SIZE, ppn * PAGE_SIZE);
            truth.insert(vpn, ppn);
        }
        for _ in 0..rng.random_range(1usize..200) {
            let vpn = rng.random_range(0u64..128);
            if let Some(pa) = tlb.lookup(vpn * PAGE_SIZE + 8) {
                // A hit must agree with the last inserted mapping.
                assert_eq!(pa, truth[&vpn] * PAGE_SIZE + 8, "case {case}");
            }
        }
    }
}

#[test]
fn tlb_capacity_is_never_exceeded() {
    for case in 0..100 {
        let mut rng = case_rng(3, case);
        let capacity = rng.random_range(1usize..16);
        let mut tlb = Tlb::new(capacity);
        for _ in 0..rng.random_range(1usize..300) {
            let vpn = rng.random_range(0u64..256);
            tlb.insert(vpn * PAGE_SIZE, vpn * PAGE_SIZE);
            assert!(tlb.len() <= capacity, "case {case}");
        }
    }
}

#[test]
fn walk_path_lengths_are_bounded() {
    for case in 0..100 {
        let mut rng = case_rng(4, case);
        let pages = rng.random_range(1u64..32);
        let probe = rng.random_range(0u64..64);
        let mut phys = PhysMem::new(16 << 20);
        let mut falloc = FrameAlloc::new(0, 16 << 20);
        let aspace = AddressSpace::new(&mut phys, &mut falloc);
        let base = 0x4000_0000u64;
        aspace.map_range(&mut phys, &mut falloc, base, pages * PAGE_SIZE);
        let path = aspace.walk_path(&phys, base + probe * PAGE_SIZE);
        assert!((1..=3).contains(&path.len()), "case {case}");
        if probe < pages {
            assert_eq!(
                path.len(),
                3,
                "case {case}: mapped page must walk to the leaf"
            );
        }
    }
}

#[test]
fn translator_uses_external_cache_identically() {
    // translate() and translate_with_cache() must produce the same
    // physical addresses (timing may differ with cache geometry).
    let mut phys = PhysMem::new(16 << 20);
    let mut falloc = FrameAlloc::new(0, 16 << 20);
    let aspace = AddressSpace::new(&mut phys, &mut falloc);
    let base = 0x4000_0000u64;
    aspace.map_range(&mut phys, &mut falloc, base, 8 * PAGE_SIZE);
    let mut internal = Translator::new(aspace, TlbConfig::default());
    let mut external = Translator::new(aspace, TlbConfig::default());
    let mut shared = Cache::new(CacheConfig::hwgc_shared());
    let mut mem = MemSystem::pipe(Default::default());
    for i in 0..8 {
        let va = base + i * PAGE_SIZE + 16;
        let (pa1, _) = internal
            .translate(Requester::Tracer, va, 0, &mut mem, &phys)
            .unwrap();
        let (pa2, _) = external
            .translate_with_cache(Requester::Tracer, va, 0, &mut mem, &phys, &mut shared)
            .unwrap();
        assert_eq!(pa1, pa2);
    }
}
