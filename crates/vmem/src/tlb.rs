//! Fully-associative LRU translation look-aside buffers.
//!
//! The traversal unit carries 32-entry L1 TLBs in the marker and tracer
//! and a 128-entry shared L2 TLB (§VI-A). At these sizes hardware TLBs
//! are fully associative; the model is a simple LRU map from virtual page
//! number to physical page number.

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// VA of the mapping's base (aligned to its page size).
    base_va: u64,
    /// PA of the mapping's base.
    base_pa: u64,
    /// Page size in bytes (4 KiB entries by default; 2 MiB for
    /// superpages, §VII).
    page_bytes: u64,
    last_use: u64,
}

/// A fully-associative, LRU-replaced TLB.
///
/// # Examples
///
/// ```
/// use tracegc_vmem::Tlb;
///
/// let mut tlb = Tlb::new(2);
/// tlb.insert(0x4000_0000, 0x1000);
/// assert_eq!(tlb.lookup(0x4000_0123), Some(0x1123));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `va`; on a hit returns the full physical address.
    pub fn lookup(&mut self, va: u64) -> Option<u64> {
        self.clock += 1;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| va & !(e.page_bytes - 1) == e.base_va)
        {
            e.last_use = self.clock;
            self.hits += 1;
            Some(e.base_pa + (va & (e.page_bytes - 1)))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs a 4 KiB translation for the page containing `va`,
    /// evicting the LRU entry when full.
    pub fn insert(&mut self, va: u64, pa: u64) {
        self.insert_sized(va, pa, crate::PAGE_SIZE);
    }

    /// Installs a translation with an explicit page size (superpage
    /// entries cover far more reach per TLB slot — the §VII argument).
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn insert_sized(&mut self, va: u64, pa: u64, page_bytes: u64) {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        self.clock += 1;
        let base_va = va & !(page_bytes - 1);
        let base_pa = pa & !(page_bytes - 1);
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.base_va == base_va && e.page_bytes == page_bytes)
        {
            e.base_pa = base_pa;
            e.last_use = self.clock;
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("full TLB is non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push(Entry {
            base_va,
            base_pa,
            page_bytes,
            last_use: self.clock,
        });
    }

    /// Drops every entry (e.g. on address-space switch).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn hit_after_insert() {
        let mut tlb = Tlb::new(4);
        tlb.insert(0x4000_0000, 7 * PAGE_SIZE);
        assert_eq!(tlb.lookup(0x4000_0ab0), Some(7 * PAGE_SIZE + 0xab0));
        assert_eq!(tlb.hits(), 1);
    }

    #[test]
    fn miss_on_unknown_page() {
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.lookup(0x1000), None);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let mut tlb = Tlb::new(2);
        tlb.insert(0, 0);
        tlb.insert(PAGE_SIZE, PAGE_SIZE);
        // Touch page 0 so page 1 becomes LRU.
        tlb.lookup(0);
        tlb.insert(2 * PAGE_SIZE, 2 * PAGE_SIZE);
        assert!(tlb.lookup(0).is_some());
        assert!(tlb.lookup(PAGE_SIZE).is_none());
        assert!(tlb.lookup(2 * PAGE_SIZE).is_some());
    }

    #[test]
    fn reinsert_updates_mapping() {
        let mut tlb = Tlb::new(2);
        tlb.insert(0, 0);
        tlb.insert(0, 5 * PAGE_SIZE);
        assert_eq!(tlb.lookup(0x10), Some(5 * PAGE_SIZE + 0x10));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn flush_empties() {
        let mut tlb = Tlb::new(2);
        tlb.insert(0, 0);
        tlb.flush();
        assert!(tlb.is_empty());
        assert_eq!(tlb.lookup(0), None);
    }

    #[test]
    fn capacity_is_respected() {
        let mut tlb = Tlb::new(3);
        for i in 0..10u64 {
            tlb.insert(i * PAGE_SIZE, i * PAGE_SIZE);
        }
        assert_eq!(tlb.len(), 3);
    }
}

#[cfg(test)]
mod superpage_tests {
    use super::*;
    use crate::pagetable::MEGAPAGE_SIZE;
    use crate::PAGE_SIZE;

    #[test]
    fn one_superpage_entry_covers_two_mib() {
        let mut tlb = Tlb::new(2);
        tlb.insert_sized(0x4000_0000, 0x80_0000, MEGAPAGE_SIZE);
        // Any 4 KiB page inside the megapage hits the single entry.
        for off in [0u64, PAGE_SIZE, 511 * PAGE_SIZE, MEGAPAGE_SIZE - 8] {
            assert_eq!(
                tlb.lookup(0x4000_0000 + off),
                Some(0x80_0000 + off),
                "offset {off:#x}"
            );
        }
        assert_eq!(tlb.lookup(0x4000_0000 + MEGAPAGE_SIZE), None);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn mixed_sizes_coexist() {
        let mut tlb = Tlb::new(4);
        tlb.insert_sized(0, 0x10_0000, PAGE_SIZE);
        tlb.insert_sized(MEGAPAGE_SIZE, 0x80_0000, MEGAPAGE_SIZE);
        assert_eq!(tlb.lookup(0x10), Some(0x10_0010));
        assert_eq!(tlb.lookup(MEGAPAGE_SIZE + 0x1234), Some(0x80_1234));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_page_panics() {
        let mut tlb = Tlb::new(1);
        tlb.insert_sized(0, 0, 3000);
    }
}
