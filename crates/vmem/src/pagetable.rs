//! Sv39-style three-level page tables built inside simulated physical
//! memory.
//!
//! The Linux driver in the paper reads the process's page-table base
//! register and hands it to the GC unit so the unit "can operate in the
//! same address space as the process on the CPU" (§V-E). Here the
//! workload builder plays the role of the OS: it allocates frames, builds
//! a real radix page table in [`PhysMem`], and hands the root to the
//! unit's [`Translator`](crate::Translator).
//!
//! PTE format (RISC-V flavoured): bit 0 = valid, bit 1 = leaf, physical
//! page number in bits 10 and up.

use tracegc_mem::PhysMem;

/// Page size in bytes (the paper uses standard 4 KiB pages; §VII notes
/// superpages as future work).
pub const PAGE_SIZE: u64 = 4096;

/// Megapage (level-1 superpage) size: 2 MiB, as in Sv39. §VII: "large
/// heaps could use superpages instead of 4KB pages" to relieve TLB and
/// PTW-cache pressure.
pub const MEGAPAGE_SIZE: u64 = 2 << 20;

/// Bits of virtual page number consumed per level.
const VPN_BITS: u32 = 9;
/// Number of radix levels (Sv39).
const LEVELS: u32 = 3;
/// Entries per page-table node.
const ENTRIES: u64 = 1 << VPN_BITS;

const PTE_VALID: u64 = 1 << 0;
const PTE_LEAF: u64 = 1 << 1;
const PTE_PPN_SHIFT: u32 = 10;

/// A bump allocator for physical page frames.
///
/// # Examples
///
/// ```
/// use tracegc_vmem::FrameAlloc;
///
/// let mut falloc = FrameAlloc::new(0x1000, 0x10000);
/// let f0 = falloc.alloc();
/// let f1 = falloc.alloc();
/// assert_eq!(f1 - f0, 4096);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    next: u64,
    limit: u64,
}

impl FrameAlloc {
    /// Creates an allocator handing out frames in `[start, limit)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not page-aligned or empty.
    pub fn new(start: u64, limit: u64) -> Self {
        assert!(start.is_multiple_of(PAGE_SIZE) && limit.is_multiple_of(PAGE_SIZE));
        assert!(start < limit, "empty frame region");
        Self { next: start, limit }
    }

    /// Allocates the next frame.
    ///
    /// # Panics
    ///
    /// Panics when the region is exhausted.
    pub fn alloc(&mut self) -> u64 {
        assert!(self.next < self.limit, "out of physical frames");
        let frame = self.next;
        self.next += PAGE_SIZE;
        frame
    }

    /// Allocates `bytes` of physically contiguous memory aligned to
    /// `align` (e.g. a 2 MiB superpage frame), returning its base.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power-of-two multiple of the page size
    /// or the region is exhausted.
    pub fn alloc_region(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two() && align >= PAGE_SIZE);
        let base = self.next.next_multiple_of(align);
        let end = base + bytes.next_multiple_of(PAGE_SIZE);
        assert!(end <= self.limit, "out of physical frames");
        self.next = end;
        base
    }

    /// Frames allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Remaining capacity in frames.
    pub fn remaining(&self) -> u64 {
        (self.limit - self.next) / PAGE_SIZE
    }
}

/// A three-level radix page table rooted in simulated physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    root_pa: u64,
}

impl AddressSpace {
    /// Creates an empty address space, allocating the root node.
    pub fn new(mem: &mut PhysMem, falloc: &mut FrameAlloc) -> Self {
        let root_pa = falloc.alloc();
        mem.zero_range(root_pa, PAGE_SIZE);
        Self { root_pa }
    }

    /// Physical address of the root page-table node (the value the Linux
    /// driver would read from the process's `satp`).
    pub fn root(&self) -> u64 {
        self.root_pa
    }

    #[inline]
    fn vpn(va: u64, level: u32) -> u64 {
        // level 0 is the root (highest) level.
        (va >> (12 + VPN_BITS * (LEVELS - 1 - level))) & (ENTRIES - 1)
    }

    /// Physical addresses of the PTEs visited when walking `va`, root
    /// first. This is exactly the sequence of reads the hardware walker
    /// performs.
    pub fn walk_path(&self, mem: &PhysMem, va: u64) -> Vec<u64> {
        let mut path = Vec::with_capacity(LEVELS as usize);
        let mut node = self.root_pa;
        for level in 0..LEVELS {
            let pte_pa = node + Self::vpn(va, level) * 8;
            path.push(pte_pa);
            let pte = mem.read_u64(pte_pa);
            if pte & PTE_VALID == 0 || pte & PTE_LEAF != 0 {
                break;
            }
            node = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE;
        }
        path
    }

    /// Maps the page containing `va` to the frame containing `pa`,
    /// creating intermediate nodes as needed.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped to a different frame.
    pub fn map_page(&self, mem: &mut PhysMem, falloc: &mut FrameAlloc, va: u64, pa: u64) {
        let mut node = self.root_pa;
        for level in 0..LEVELS - 1 {
            let pte_pa = node + Self::vpn(va, level) * 8;
            let pte = mem.read_u64(pte_pa);
            if pte & PTE_VALID == 0 {
                let child = falloc.alloc();
                mem.zero_range(child, PAGE_SIZE);
                mem.write_u64(pte_pa, ((child / PAGE_SIZE) << PTE_PPN_SHIFT) | PTE_VALID);
                node = child;
            } else {
                assert!(pte & PTE_LEAF == 0, "superpage in the middle of a walk");
                node = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE;
            }
        }
        let leaf_pa = node + Self::vpn(va, LEVELS - 1) * 8;
        let ppn = pa / PAGE_SIZE;
        let new_pte = (ppn << PTE_PPN_SHIFT) | PTE_VALID | PTE_LEAF;
        let existing = mem.read_u64(leaf_pa);
        assert!(
            existing & PTE_VALID == 0 || existing == new_pte,
            "page {va:#x} already mapped elsewhere"
        );
        mem.write_u64(leaf_pa, new_pte);
    }

    /// Maps `len` bytes starting at `va` to consecutive frames from
    /// `falloc`, returning the physical address of the first frame.
    pub fn map_range(&self, mem: &mut PhysMem, falloc: &mut FrameAlloc, va: u64, len: u64) -> u64 {
        assert!(va.is_multiple_of(PAGE_SIZE), "range must be page-aligned");
        let pages = len.div_ceil(PAGE_SIZE);
        let mut first = None;
        for i in 0..pages {
            let frame = falloc.alloc();
            first.get_or_insert(frame);
            self.map_page(mem, falloc, va + i * PAGE_SIZE, frame);
        }
        first.expect("map_range of zero length")
    }

    /// Maps a 2 MiB superpage at `va` to the 2 MiB frame at `pa`
    /// (level-1 leaf PTE).
    ///
    /// # Panics
    ///
    /// Panics if `va` or `pa` is not megapage-aligned, or the slot is
    /// already occupied.
    pub fn map_superpage(&self, mem: &mut PhysMem, falloc: &mut FrameAlloc, va: u64, pa: u64) {
        assert!(
            va.is_multiple_of(MEGAPAGE_SIZE),
            "superpage VA must be 2 MiB aligned"
        );
        assert!(
            pa.is_multiple_of(MEGAPAGE_SIZE),
            "superpage PA must be 2 MiB aligned"
        );
        // Walk/create the root level only.
        let root_pte_pa = self.root_pa + Self::vpn(va, 0) * 8;
        let root_pte = mem.read_u64(root_pte_pa);
        let mid = if root_pte & PTE_VALID == 0 {
            let child = falloc.alloc();
            mem.zero_range(child, PAGE_SIZE);
            mem.write_u64(
                root_pte_pa,
                ((child / PAGE_SIZE) << PTE_PPN_SHIFT) | PTE_VALID,
            );
            child
        } else {
            assert!(root_pte & PTE_LEAF == 0, "gigapage in the way");
            (root_pte >> PTE_PPN_SHIFT) * PAGE_SIZE
        };
        let leaf_pa = mid + Self::vpn(va, 1) * 8;
        let new_pte = ((pa / PAGE_SIZE) << PTE_PPN_SHIFT) | PTE_VALID | PTE_LEAF;
        let existing = mem.read_u64(leaf_pa);
        assert!(
            existing & PTE_VALID == 0 || existing == new_pte,
            "superpage slot at {va:#x} already mapped"
        );
        mem.write_u64(leaf_pa, new_pte);
    }

    /// Functional translation oracle: walks the table in one step, no
    /// timing. Returns `None` for unmapped addresses.
    pub fn translate(&self, mem: &PhysMem, va: u64) -> Option<u64> {
        self.translate_entry(mem, va).map(|(pa, _)| pa)
    }

    /// Like [`AddressSpace::translate`], but also reports the size of
    /// the mapping's page (4 KiB, 2 MiB or 1 GiB) so TLBs can install
    /// reach-appropriate entries.
    pub fn translate_entry(&self, mem: &PhysMem, va: u64) -> Option<(u64, u64)> {
        let mut node = self.root_pa;
        for level in 0..LEVELS {
            let pte = mem.read_u64(node + Self::vpn(va, level) * 8);
            if pte & PTE_VALID == 0 {
                return None;
            }
            if pte & PTE_LEAF != 0 {
                let page_bytes = PAGE_SIZE << (VPN_BITS * (LEVELS - 1 - level));
                let ppn = pte >> PTE_PPN_SHIFT;
                return Some((ppn * PAGE_SIZE + (va % page_bytes), page_bytes));
            }
            node = (pte >> PTE_PPN_SHIFT) * PAGE_SIZE;
        }
        None
    }
}

/// Virtual page number of `va` (the TLB lookup key).
pub fn vpn_of(va: u64) -> u64 {
    va / PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, FrameAlloc, AddressSpace) {
        let mut mem = PhysMem::new(8 * 1024 * 1024);
        let mut falloc = FrameAlloc::new(0, 8 * 1024 * 1024);
        let aspace = AddressSpace::new(&mut mem, &mut falloc);
        (mem, falloc, aspace)
    }

    #[test]
    fn translate_roundtrip_single_page() {
        let (mut mem, mut falloc, aspace) = setup();
        let frame = falloc.alloc();
        aspace.map_page(&mut mem, &mut falloc, 0x4000_0000, frame);
        assert_eq!(aspace.translate(&mem, 0x4000_0000), Some(frame));
        assert_eq!(aspace.translate(&mem, 0x4000_0123), Some(frame + 0x123));
    }

    #[test]
    fn unmapped_is_none() {
        let (mem, _, aspace) = setup();
        assert_eq!(aspace.translate(&mem, 0x1234_5000), None);
    }

    #[test]
    fn map_range_is_contiguous_per_page() {
        let (mut mem, mut falloc, aspace) = setup();
        let base_va = 0x8000_0000;
        aspace.map_range(&mut mem, &mut falloc, base_va, 4 * PAGE_SIZE);
        for i in 0..4 {
            let va = base_va + i * PAGE_SIZE;
            assert!(aspace.translate(&mem, va).is_some(), "page {i} unmapped");
        }
        assert_eq!(aspace.translate(&mem, base_va + 4 * PAGE_SIZE), None);
    }

    #[test]
    fn distinct_vas_get_distinct_frames() {
        let (mut mem, mut falloc, aspace) = setup();
        aspace.map_range(&mut mem, &mut falloc, 0x4000_0000, 8 * PAGE_SIZE);
        let mut frames: Vec<u64> = (0..8)
            .map(|i| aspace.translate(&mem, 0x4000_0000 + i * PAGE_SIZE).unwrap())
            .collect();
        frames.sort_unstable();
        frames.dedup();
        assert_eq!(frames.len(), 8);
    }

    #[test]
    fn walk_path_has_three_levels_when_mapped() {
        let (mut mem, mut falloc, aspace) = setup();
        let frame = falloc.alloc();
        aspace.map_page(&mut mem, &mut falloc, 0x4000_0000, frame);
        let path = aspace.walk_path(&mem, 0x4000_0000);
        assert_eq!(path.len(), 3);
        // The leaf PTE on the path must decode to the mapped frame.
        let leaf = mem.read_u64(path[2]);
        assert_eq!((leaf >> 10) * PAGE_SIZE, frame);
    }

    #[test]
    fn walk_path_stops_early_when_unmapped() {
        let (mem, _, aspace) = setup();
        let path = aspace.walk_path(&mem, 0xdead_beef << 12);
        assert_eq!(path.len(), 1); // invalid at the root
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn remapping_to_a_different_frame_panics() {
        let (mut mem, mut falloc, aspace) = setup();
        let f0 = falloc.alloc();
        let f1 = falloc.alloc();
        aspace.map_page(&mut mem, &mut falloc, 0x4000_0000, f0);
        aspace.map_page(&mut mem, &mut falloc, 0x4000_0000, f1);
    }

    #[test]
    fn frame_alloc_exhaustion_is_detected() {
        let mut falloc = FrameAlloc::new(0, 2 * PAGE_SIZE);
        falloc.alloc();
        assert_eq!(falloc.remaining(), 1);
        falloc.alloc();
        assert_eq!(falloc.remaining(), 0);
    }

    #[test]
    fn vpn_of_is_page_number() {
        assert_eq!(vpn_of(0), 0);
        assert_eq!(vpn_of(4095), 0);
        assert_eq!(vpn_of(4096), 1);
    }

    #[test]
    fn sibling_pages_share_interior_nodes() {
        let (mut mem, mut falloc, aspace) = setup();
        let before = falloc.allocated();
        aspace.map_range(&mut mem, &mut falloc, 0x4000_0000, 16 * PAGE_SIZE);
        let used = (falloc.allocated() - before) / PAGE_SIZE;
        // 16 data frames + at most 2 interior nodes (L1 + L2 created once).
        assert!(used <= 18, "used {used} frames");
    }
}

#[cfg(test)]
mod superpage_tests {
    use super::*;

    fn setup() -> (PhysMem, FrameAlloc, AddressSpace) {
        let mut mem = PhysMem::new(32 * 1024 * 1024);
        let mut falloc = FrameAlloc::new(0, 32 * 1024 * 1024);
        let aspace = AddressSpace::new(&mut mem, &mut falloc);
        (mem, falloc, aspace)
    }

    #[test]
    fn superpage_translates_across_its_whole_span() {
        let (mut mem, mut falloc, aspace) = setup();
        let pa = 4 * MEGAPAGE_SIZE;
        aspace.map_superpage(&mut mem, &mut falloc, 0x4000_0000, pa);
        for off in [0u64, 0x1000, 0x1F_F000, MEGAPAGE_SIZE - 8] {
            assert_eq!(aspace.translate(&mem, 0x4000_0000 + off), Some(pa + off));
        }
        assert_eq!(aspace.translate(&mem, 0x4000_0000 + MEGAPAGE_SIZE), None);
    }

    #[test]
    fn translate_entry_reports_page_size() {
        let (mut mem, mut falloc, aspace) = setup();
        aspace.map_superpage(&mut mem, &mut falloc, 0x4000_0000, 2 * MEGAPAGE_SIZE);
        let frame = falloc.alloc();
        aspace.map_page(&mut mem, &mut falloc, 0x5000_0000, frame);
        assert_eq!(
            aspace.translate_entry(&mem, 0x4000_0000).map(|e| e.1),
            Some(MEGAPAGE_SIZE)
        );
        assert_eq!(
            aspace.translate_entry(&mem, 0x5000_0000).map(|e| e.1),
            Some(PAGE_SIZE)
        );
    }

    #[test]
    fn superpage_walk_path_is_two_levels() {
        let (mut mem, mut falloc, aspace) = setup();
        aspace.map_superpage(&mut mem, &mut falloc, 0x4000_0000, 2 * MEGAPAGE_SIZE);
        assert_eq!(aspace.walk_path(&mem, 0x4000_0000).len(), 2);
    }

    #[test]
    #[should_panic(expected = "2 MiB aligned")]
    fn misaligned_superpage_panics() {
        let (mut mem, mut falloc, aspace) = setup();
        aspace.map_superpage(&mut mem, &mut falloc, 0x4000_1000, 0);
    }
}
