//! The translation pipeline: per-requester L1 TLBs, a shared L2 TLB, and
//! the (by default blocking) page-table walker with its 8 KiB cache.
//!
//! §VI-A: "as the TLB and page table walker are blocking, TLB misses can
//! serialize execution. Future work should therefore introduce a
//! non-blocking TLB that can perform multiple page-table walks
//! concurrently while still serving requests that hit in the TLB." Both
//! behaviours are implemented: [`TlbConfig::concurrent_walks`] = 1 is the
//! paper's prototype; larger values are the proposed extension measured
//! by the `ablC` ablation.

use tracegc_mem::cache::MemBacking;
use tracegc_mem::{Cache, CacheConfig, MemSystem, PhysMem, Source};
use tracegc_sim::fault::{FaultInjector, FaultStats};
use tracegc_sim::Cycle;

use crate::pagetable::AddressSpace;
use crate::tlb::Tlb;

/// Which unit is asking for a translation. Each requester owns a private
/// L1 TLB, mirroring the marker/tracer split in the paper's Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requester {
    /// The traversal unit's marker.
    Marker,
    /// The traversal unit's tracer.
    Tracer,
    /// A reclamation-unit block sweeper.
    Sweeper,
    /// The CPU core's data accesses.
    Cpu,
}

impl Requester {
    fn index(self) -> usize {
        match self {
            Requester::Marker => 0,
            Requester::Tracer => 1,
            Requester::Sweeper => 2,
            Requester::Cpu => 3,
        }
    }

    /// Number of distinct requesters.
    pub const COUNT: usize = 4;
}

/// TLB/PTW sizing (defaults = the paper's prototype).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Entries in each requester's private L1 TLB (paper: 32).
    pub l1_entries: usize,
    /// Entries in the shared L2 TLB (paper: 128).
    pub l2_entries: usize,
    /// Added latency of an L2 TLB hit.
    pub l2_hit_latency: Cycle,
    /// Concurrent page-table walks (1 = the paper's blocking PTW).
    pub concurrent_walks: usize,
    /// Whether a requester's pipeline freezes during its own walk (the
    /// paper's prototype; §VI-A). `false` models the proposed
    /// non-blocking TLB "that can perform multiple page-table walks
    /// concurrently while still serving requests that hit in the TLB".
    pub blocking_requesters: bool,
    /// Geometry of the PTW's dedicated cache (paper: 8 KiB).
    pub ptw_cache: CacheConfig,
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self {
            l1_entries: 32,
            l2_entries: 128,
            l2_hit_latency: 4,
            concurrent_walks: 1,
            blocking_requesters: true,
            ptw_cache: CacheConfig::ptw_cache(),
        }
    }
}

/// A translation attempt on an unmapped address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslateFault {
    /// The faulting virtual address.
    pub va: u64,
}

impl std::fmt::Display for TranslateFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page fault at virtual address {:#x}", self.va)
    }
}

impl std::error::Error for TranslateFault {}

/// Translation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslatorStats {
    /// L1 TLB hits across all requesters.
    pub l1_hits: u64,
    /// Shared L2 TLB hits.
    pub l2_hits: u64,
    /// Full page-table walks performed.
    pub walks: u64,
    /// Cycles some requester spent waiting for a busy walker (the
    /// serialization the paper calls out).
    pub walker_wait_cycles: u64,
    /// Cycles spent inside page-table walks themselves (PTE fetches
    /// through the PTW cache), excluding walker-queue waits.
    pub walk_cycles: u64,
}

/// The shared translation machinery of the traversal unit (and, reused,
/// of the CPU model).
#[derive(Debug)]
pub struct Translator {
    aspace: AddressSpace,
    cfg: TlbConfig,
    l1: Vec<Tlb>,
    l2: Tlb,
    ptw_cache: Cache,
    /// Completion times of in-flight walks (bounded by
    /// `concurrent_walks`).
    walks_inflight: Vec<Cycle>,
    stats: TranslatorStats,
    /// Optional fault source ([`FaultSite::Ptw`]); rolls once per walk
    /// for an injected invalid PTE.
    ///
    /// [`FaultSite::Ptw`]: tracegc_sim::fault::FaultSite::Ptw
    fault: Option<FaultInjector>,
}

impl Translator {
    /// Creates the translator for `aspace`.
    pub fn new(aspace: AddressSpace, cfg: TlbConfig) -> Self {
        Self {
            aspace,
            l1: (0..Requester::COUNT)
                .map(|_| Tlb::new(cfg.l1_entries))
                .collect(),
            l2: Tlb::new(cfg.l2_entries),
            ptw_cache: Cache::new(cfg.ptw_cache),
            walks_inflight: Vec::new(),
            cfg,
            stats: TranslatorStats::default(),
            fault: None,
        }
    }

    /// Attaches a fault injector: each page-table walk rolls once for
    /// an injected invalid PTE, which surfaces as a [`TranslateFault`].
    /// Zero-rate injectors never draw and never perturb a clean run.
    pub fn set_fault_injector(&mut self, inj: FaultInjector) {
        self.fault = Some(inj);
    }

    /// What fired so far at this site, when an injector is attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(|f| f.stats())
    }

    /// The active configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TranslatorStats {
        self.stats
    }

    /// Statistics of the PTW cache (Fig. 18a's dominant requester).
    pub fn ptw_cache_stats(&self) -> &tracegc_mem::CacheStats {
        self.ptw_cache.stats()
    }

    /// Drops all TLB contents (address-space switch / new GC pass).
    pub fn flush(&mut self) {
        for tlb in &mut self.l1 {
            tlb.flush();
        }
        self.l2.flush();
        self.walks_inflight.clear();
    }

    /// Translates `va` for `who` starting at `now`.
    ///
    /// Returns the physical address and the cycle at which it is
    /// available. TLB hits cost nothing (L1) or `l2_hit_latency`; misses
    /// walk the real page table in `phys` through the PTW cache, issuing
    /// PTE fills into `mem`.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateFault`] when `va` is unmapped.
    pub fn translate(
        &mut self,
        who: Requester,
        va: u64,
        now: Cycle,
        mem: &mut MemSystem,
        phys: &PhysMem,
    ) -> Result<(u64, Cycle), TranslateFault> {
        // Split borrows: the walk core takes the dedicated PTW cache as
        // a disjoint field, so no take/replace dance is needed.
        let Self {
            aspace,
            cfg,
            l1,
            l2,
            ptw_cache,
            walks_inflight,
            stats,
            fault,
        } = self;
        translate_core(
            aspace,
            cfg,
            l1,
            l2,
            walks_inflight,
            stats,
            fault.as_mut(),
            who,
            va,
            now,
            mem,
            phys,
            ptw_cache,
        )
    }

    /// Like [`Translator::translate`], but PTE reads go through a
    /// caller-supplied cache — the traversal unit's *shared* cache in the
    /// unpartitioned configuration of Fig. 18a.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateFault`] when `va` is unmapped.
    pub fn translate_with_cache(
        &mut self,
        who: Requester,
        va: u64,
        now: Cycle,
        mem: &mut MemSystem,
        phys: &PhysMem,
        ptw_cache: &mut Cache,
    ) -> Result<(u64, Cycle), TranslateFault> {
        let Self {
            aspace,
            cfg,
            l1,
            l2,
            walks_inflight,
            stats,
            fault,
            ..
        } = self;
        translate_core(
            aspace,
            cfg,
            l1,
            l2,
            walks_inflight,
            stats,
            fault.as_mut(),
            who,
            va,
            now,
            mem,
            phys,
            ptw_cache,
        )
    }
}

/// The walk core, written against split borrows of [`Translator`]'s
/// fields so both entry points share it without moving the PTW cache
/// in and out of an `Option`.
#[allow(clippy::too_many_arguments)]
fn translate_core(
    aspace: &AddressSpace,
    cfg: &TlbConfig,
    l1: &mut [Tlb],
    l2: &mut Tlb,
    walks_inflight: &mut Vec<Cycle>,
    stats: &mut TranslatorStats,
    fault: Option<&mut FaultInjector>,
    who: Requester,
    va: u64,
    now: Cycle,
    mem: &mut MemSystem,
    phys: &PhysMem,
    ptw_cache: &mut Cache,
) -> Result<(u64, Cycle), TranslateFault> {
    if let Some(pa) = l1[who.index()].lookup(va) {
        stats.l1_hits += 1;
        return Ok((pa, now));
    }
    if let Some(pa) = l2.lookup(va) {
        stats.l2_hits += 1;
        l1[who.index()].insert(va, pa);
        return Ok((pa, now + cfg.l2_hit_latency));
    }

    // Walk. The walker has a bounded number of concurrent walks; the
    // paper's prototype has exactly one, serializing misses.
    let mut start = now + cfg.l2_hit_latency;
    walks_inflight.retain(|&t| t > start);
    if walks_inflight.len() >= cfg.concurrent_walks {
        let earliest = *walks_inflight
            .iter()
            .min()
            .expect("inflight walks non-empty");
        stats.walker_wait_cycles += earliest.saturating_sub(start);
        start = earliest;
        walks_inflight.retain(|&t| t > start);
    }

    // Injected invalid PTE: the walk runs but ends in a fault, exactly
    // as a corrupted page table would surface architecturally.
    let injected_fault = fault.is_some_and(|inj| inj.pte_fault());

    let path = aspace.walk_path(phys, va);
    let mut t = start;
    for &pte_pa in &path {
        let mut backing = MemBacking {
            mem,
            source: Source::Ptw,
        };
        t = ptw_cache.access(pte_pa, false, t, Source::Ptw, &mut backing);
    }
    stats.walks += 1;
    stats.walk_cycles += t.saturating_sub(start);
    walks_inflight.push(t);

    if injected_fault {
        return Err(TranslateFault { va });
    }
    let (pa, page_bytes) = aspace
        .translate_entry(phys, va)
        .ok_or(TranslateFault { va })?;
    // Superpage mappings install reach-appropriate TLB entries.
    l2.insert_sized(va, pa, page_bytes);
    l1[who.index()].insert_sized(va, pa, page_bytes);
    Ok((pa, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::{FrameAlloc, PAGE_SIZE};

    fn setup(pages: u64) -> (PhysMem, AddressSpace, MemSystem, u64) {
        let mut phys = PhysMem::new(64 * 1024 * 1024);
        let mut falloc = FrameAlloc::new(0, 64 * 1024 * 1024);
        let aspace = AddressSpace::new(&mut phys, &mut falloc);
        let base_va = 0x4000_0000;
        aspace.map_range(&mut phys, &mut falloc, base_va, pages * PAGE_SIZE);
        let mem = MemSystem::pipe(Default::default());
        (phys, aspace, mem, base_va)
    }

    #[test]
    fn translation_matches_oracle() {
        let (phys, aspace, mut mem, base) = setup(16);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        for i in 0..16 {
            let va = base + i * PAGE_SIZE + 0x18;
            let (pa, _) = tr
                .translate(Requester::Marker, va, 0, &mut mem, &phys)
                .unwrap();
            assert_eq!(Some(pa), aspace.translate(&phys, va));
        }
    }

    #[test]
    fn l1_hit_is_free_after_first_walk() {
        let (phys, aspace, mut mem, base) = setup(1);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        let (_, t1) = tr
            .translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        assert!(t1 > 0, "first access walks");
        let (_, t2) = tr
            .translate(Requester::Marker, base + 8, t1, &mut mem, &phys)
            .unwrap();
        assert_eq!(t2, t1, "L1 hit adds no latency");
        assert_eq!(tr.stats().walks, 1);
        assert_eq!(tr.stats().l1_hits, 1);
    }

    #[test]
    fn l2_serves_cross_requester_sharing() {
        let (phys, aspace, mut mem, base) = setup(1);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        tr.translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        let (_, t) = tr
            .translate(Requester::Tracer, base, 1000, &mut mem, &phys)
            .unwrap();
        assert_eq!(t, 1000 + tr.config().l2_hit_latency);
        assert_eq!(tr.stats().walks, 1);
        assert_eq!(tr.stats().l2_hits, 1);
    }

    #[test]
    fn blocking_walker_serializes_misses() {
        let (phys, aspace, mut mem, base) = setup(64);
        let blocking = TlbConfig::default();
        let mut tr = Translator::new(aspace, blocking);
        // Two misses presented at the same cycle: second waits.
        let (_, t0) = tr
            .translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        let (_, t1) = tr
            .translate(Requester::Tracer, base + PAGE_SIZE, 0, &mut mem, &phys)
            .unwrap();
        assert!(t1 >= t0, "second walk must wait for the first");
        assert!(tr.stats().walker_wait_cycles > 0);
    }

    #[test]
    fn nonblocking_walker_overlaps_misses() {
        let (phys, aspace, mut mem, base) = setup(64);
        let cfg = TlbConfig {
            concurrent_walks: 4,
            ..TlbConfig::default()
        };
        let mut tr = Translator::new(aspace, cfg);
        let (_, t0) = tr
            .translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        let (_, t1) = tr
            .translate(Requester::Tracer, base + PAGE_SIZE, 0, &mut mem, &phys)
            .unwrap();
        // With PTW-cache hits on the upper levels, the second walk's
        // completion should be well before a fully serialized walk.
        assert!(t1 < t0 * 2, "walks should overlap: {t0} {t1}");
        assert_eq!(tr.stats().walker_wait_cycles, 0);
    }

    #[test]
    fn fault_on_unmapped() {
        let (phys, aspace, mut mem, _) = setup(1);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        let err = tr
            .translate(Requester::Marker, 0xdead_0000, 0, &mut mem, &phys)
            .unwrap_err();
        assert_eq!(err.va, 0xdead_0000);
    }

    #[test]
    fn flush_forces_rewalk() {
        let (phys, aspace, mut mem, base) = setup(1);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        tr.translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        tr.flush();
        tr.translate(Requester::Marker, base, 100, &mut mem, &phys)
            .unwrap();
        assert_eq!(tr.stats().walks, 2);
    }

    #[test]
    fn injected_pte_fault_surfaces_as_page_fault() {
        use tracegc_sim::fault::{FaultConfig, FaultPlan, FaultSite};
        let (phys, aspace, mut mem, base) = setup(4);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        tr.set_fault_injector(
            FaultPlan::new(FaultConfig {
                pte_fault_rate: 1.0,
                ..FaultConfig::default()
            })
            .injector(FaultSite::Ptw),
        );
        let err = tr
            .translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap_err();
        assert_eq!(err.va, base);
        assert_eq!(tr.fault_stats().unwrap().pte_faults, 1);
        // The faulting translation is not cached: nothing was installed.
        let err2 = tr
            .translate(Requester::Marker, base, 100, &mut mem, &phys)
            .unwrap_err();
        assert_eq!(err2.va, base);
    }

    #[test]
    fn zero_rate_injector_leaves_translation_timing_unchanged() {
        use tracegc_sim::fault::{FaultConfig, FaultPlan, FaultSite};
        let (phys_a, aspace_a, mut mem_a, base) = setup(16);
        let (phys_b, aspace_b, mut mem_b, _) = setup(16);
        let mut clean = Translator::new(aspace_a, TlbConfig::default());
        let mut faulted = Translator::new(aspace_b, TlbConfig::default());
        faulted.set_fault_injector(
            FaultPlan::new(FaultConfig::zero_rates(1)).injector(FaultSite::Ptw),
        );
        for i in 0..16 {
            let va = base + i * PAGE_SIZE;
            let a = clean
                .translate(Requester::Tracer, va, i * 3, &mut mem_a, &phys_a)
                .unwrap();
            let b = faulted
                .translate(Requester::Tracer, va, i * 3, &mut mem_b, &phys_b)
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(faulted.fault_stats().unwrap().pte_faults, 0);
    }

    #[test]
    fn ptw_cache_absorbs_upper_levels() {
        let (phys, aspace, mut mem, base) = setup(64);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        let mut t = 0;
        for i in 0..64 {
            let (_, done) = tr
                .translate(Requester::Marker, base + i * PAGE_SIZE, t, &mut mem, &phys)
                .unwrap();
            t = done;
        }
        // 64 walks * 3 levels = 192 PTE reads, but the root/interior PTEs
        // are cached: far fewer than 192 memory requests.
        let ptw_fills = mem.stats().requests(Source::Ptw);
        assert!(ptw_fills < 64, "PTW cache ineffective: {ptw_fills} fills");
    }
}
