//! The translation pipeline: per-requester L1 TLBs, a shared L2 TLB, and
//! the (by default blocking) page-table walker with its 8 KiB cache.
//!
//! §VI-A: "as the TLB and page table walker are blocking, TLB misses can
//! serialize execution. Future work should therefore introduce a
//! non-blocking TLB that can perform multiple page-table walks
//! concurrently while still serving requests that hit in the TLB." Both
//! behaviours are implemented: [`TlbConfig::concurrent_walks`] = 1 is the
//! paper's prototype; larger values are the proposed extension measured
//! by the `ablC` ablation.

use tracegc_mem::cache::MemBacking;
use tracegc_mem::{Cache, CacheConfig, MemSystem, PhysMem, Source};
use tracegc_sim::Cycle;

use crate::pagetable::AddressSpace;
use crate::tlb::Tlb;

/// Which unit is asking for a translation. Each requester owns a private
/// L1 TLB, mirroring the marker/tracer split in the paper's Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requester {
    /// The traversal unit's marker.
    Marker,
    /// The traversal unit's tracer.
    Tracer,
    /// A reclamation-unit block sweeper.
    Sweeper,
    /// The CPU core's data accesses.
    Cpu,
}

impl Requester {
    fn index(self) -> usize {
        match self {
            Requester::Marker => 0,
            Requester::Tracer => 1,
            Requester::Sweeper => 2,
            Requester::Cpu => 3,
        }
    }

    /// Number of distinct requesters.
    pub const COUNT: usize = 4;
}

/// TLB/PTW sizing (defaults = the paper's prototype).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Entries in each requester's private L1 TLB (paper: 32).
    pub l1_entries: usize,
    /// Entries in the shared L2 TLB (paper: 128).
    pub l2_entries: usize,
    /// Added latency of an L2 TLB hit.
    pub l2_hit_latency: Cycle,
    /// Concurrent page-table walks (1 = the paper's blocking PTW).
    pub concurrent_walks: usize,
    /// Whether a requester's pipeline freezes during its own walk (the
    /// paper's prototype; §VI-A). `false` models the proposed
    /// non-blocking TLB "that can perform multiple page-table walks
    /// concurrently while still serving requests that hit in the TLB".
    pub blocking_requesters: bool,
    /// Geometry of the PTW's dedicated cache (paper: 8 KiB).
    pub ptw_cache: CacheConfig,
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self {
            l1_entries: 32,
            l2_entries: 128,
            l2_hit_latency: 4,
            concurrent_walks: 1,
            blocking_requesters: true,
            ptw_cache: CacheConfig::ptw_cache(),
        }
    }
}

/// A translation attempt on an unmapped address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslateFault {
    /// The faulting virtual address.
    pub va: u64,
}

impl std::fmt::Display for TranslateFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page fault at virtual address {:#x}", self.va)
    }
}

impl std::error::Error for TranslateFault {}

/// Translation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslatorStats {
    /// L1 TLB hits across all requesters.
    pub l1_hits: u64,
    /// Shared L2 TLB hits.
    pub l2_hits: u64,
    /// Full page-table walks performed.
    pub walks: u64,
    /// Cycles some requester spent waiting for a busy walker (the
    /// serialization the paper calls out).
    pub walker_wait_cycles: u64,
    /// Cycles spent inside page-table walks themselves (PTE fetches
    /// through the PTW cache), excluding walker-queue waits.
    pub walk_cycles: u64,
}

/// The shared translation machinery of the traversal unit (and, reused,
/// of the CPU model).
#[derive(Debug)]
pub struct Translator {
    aspace: AddressSpace,
    cfg: TlbConfig,
    l1: Vec<Tlb>,
    l2: Tlb,
    /// `Some` between calls; taken while a walk borrows it.
    ptw_cache: Option<Cache>,
    /// Completion times of in-flight walks (bounded by
    /// `concurrent_walks`).
    walks_inflight: Vec<Cycle>,
    stats: TranslatorStats,
}

impl Translator {
    /// Creates the translator for `aspace`.
    pub fn new(aspace: AddressSpace, cfg: TlbConfig) -> Self {
        Self {
            aspace,
            l1: (0..Requester::COUNT)
                .map(|_| Tlb::new(cfg.l1_entries))
                .collect(),
            l2: Tlb::new(cfg.l2_entries),
            ptw_cache: Some(Cache::new(cfg.ptw_cache)),
            walks_inflight: Vec::new(),
            cfg,
            stats: TranslatorStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TranslatorStats {
        self.stats
    }

    /// Statistics of the PTW cache (Fig. 18a's dominant requester).
    pub fn ptw_cache_stats(&self) -> &tracegc_mem::CacheStats {
        self.ptw_cache
            .as_ref()
            .expect("PTW cache present between calls")
            .stats()
    }

    /// Drops all TLB contents (address-space switch / new GC pass).
    pub fn flush(&mut self) {
        for tlb in &mut self.l1 {
            tlb.flush();
        }
        self.l2.flush();
        self.walks_inflight.clear();
    }

    /// Translates `va` for `who` starting at `now`.
    ///
    /// Returns the physical address and the cycle at which it is
    /// available. TLB hits cost nothing (L1) or `l2_hit_latency`; misses
    /// walk the real page table in `phys` through the PTW cache, issuing
    /// PTE fills into `mem`.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateFault`] when `va` is unmapped.
    pub fn translate(
        &mut self,
        who: Requester,
        va: u64,
        now: Cycle,
        mem: &mut MemSystem,
        phys: &PhysMem,
    ) -> Result<(u64, Cycle), TranslateFault> {
        let mut cache = self.ptw_cache.take().expect("PTW cache present");
        let result = self.translate_with_cache(who, va, now, mem, phys, &mut cache);
        self.ptw_cache = Some(cache);
        result
    }

    /// Like [`Translator::translate`], but PTE reads go through a
    /// caller-supplied cache — the traversal unit's *shared* cache in the
    /// unpartitioned configuration of Fig. 18a.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateFault`] when `va` is unmapped.
    pub fn translate_with_cache(
        &mut self,
        who: Requester,
        va: u64,
        now: Cycle,
        mem: &mut MemSystem,
        phys: &PhysMem,
        ptw_cache: &mut Cache,
    ) -> Result<(u64, Cycle), TranslateFault> {
        if let Some(pa) = self.l1[who.index()].lookup(va) {
            self.stats.l1_hits += 1;
            return Ok((pa, now));
        }
        if let Some(pa) = self.l2.lookup(va) {
            self.stats.l2_hits += 1;
            self.l1[who.index()].insert(va, pa);
            return Ok((pa, now + self.cfg.l2_hit_latency));
        }

        // Walk. The walker has a bounded number of concurrent walks; the
        // paper's prototype has exactly one, serializing misses.
        let mut start = now + self.cfg.l2_hit_latency;
        self.walks_inflight.retain(|&t| t > start);
        if self.walks_inflight.len() >= self.cfg.concurrent_walks {
            let earliest = *self
                .walks_inflight
                .iter()
                .min()
                .expect("inflight walks non-empty");
            self.stats.walker_wait_cycles += earliest.saturating_sub(start);
            start = earliest;
            self.walks_inflight.retain(|&t| t > start);
        }

        let path = self.aspace.walk_path(phys, va);
        let mut t = start;
        for &pte_pa in &path {
            let mut backing = MemBacking {
                mem,
                source: Source::Ptw,
            };
            t = ptw_cache.access(pte_pa, false, t, Source::Ptw, &mut backing);
        }
        self.stats.walks += 1;
        self.stats.walk_cycles += t.saturating_sub(start);
        self.walks_inflight.push(t);

        let (pa, page_bytes) = self
            .aspace
            .translate_entry(phys, va)
            .ok_or(TranslateFault { va })?;
        // Superpage mappings install reach-appropriate TLB entries.
        self.l2.insert_sized(va, pa, page_bytes);
        self.l1[who.index()].insert_sized(va, pa, page_bytes);
        Ok((pa, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::{FrameAlloc, PAGE_SIZE};

    fn setup(pages: u64) -> (PhysMem, AddressSpace, MemSystem, u64) {
        let mut phys = PhysMem::new(64 * 1024 * 1024);
        let mut falloc = FrameAlloc::new(0, 64 * 1024 * 1024);
        let aspace = AddressSpace::new(&mut phys, &mut falloc);
        let base_va = 0x4000_0000;
        aspace.map_range(&mut phys, &mut falloc, base_va, pages * PAGE_SIZE);
        let mem = MemSystem::pipe(Default::default());
        (phys, aspace, mem, base_va)
    }

    #[test]
    fn translation_matches_oracle() {
        let (phys, aspace, mut mem, base) = setup(16);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        for i in 0..16 {
            let va = base + i * PAGE_SIZE + 0x18;
            let (pa, _) = tr
                .translate(Requester::Marker, va, 0, &mut mem, &phys)
                .unwrap();
            assert_eq!(Some(pa), aspace.translate(&phys, va));
        }
    }

    #[test]
    fn l1_hit_is_free_after_first_walk() {
        let (phys, aspace, mut mem, base) = setup(1);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        let (_, t1) = tr
            .translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        assert!(t1 > 0, "first access walks");
        let (_, t2) = tr
            .translate(Requester::Marker, base + 8, t1, &mut mem, &phys)
            .unwrap();
        assert_eq!(t2, t1, "L1 hit adds no latency");
        assert_eq!(tr.stats().walks, 1);
        assert_eq!(tr.stats().l1_hits, 1);
    }

    #[test]
    fn l2_serves_cross_requester_sharing() {
        let (phys, aspace, mut mem, base) = setup(1);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        tr.translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        let (_, t) = tr
            .translate(Requester::Tracer, base, 1000, &mut mem, &phys)
            .unwrap();
        assert_eq!(t, 1000 + tr.config().l2_hit_latency);
        assert_eq!(tr.stats().walks, 1);
        assert_eq!(tr.stats().l2_hits, 1);
    }

    #[test]
    fn blocking_walker_serializes_misses() {
        let (phys, aspace, mut mem, base) = setup(64);
        let blocking = TlbConfig::default();
        let mut tr = Translator::new(aspace, blocking);
        // Two misses presented at the same cycle: second waits.
        let (_, t0) = tr
            .translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        let (_, t1) = tr
            .translate(Requester::Tracer, base + PAGE_SIZE, 0, &mut mem, &phys)
            .unwrap();
        assert!(t1 >= t0, "second walk must wait for the first");
        assert!(tr.stats().walker_wait_cycles > 0);
    }

    #[test]
    fn nonblocking_walker_overlaps_misses() {
        let (phys, aspace, mut mem, base) = setup(64);
        let cfg = TlbConfig {
            concurrent_walks: 4,
            ..TlbConfig::default()
        };
        let mut tr = Translator::new(aspace, cfg);
        let (_, t0) = tr
            .translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        let (_, t1) = tr
            .translate(Requester::Tracer, base + PAGE_SIZE, 0, &mut mem, &phys)
            .unwrap();
        // With PTW-cache hits on the upper levels, the second walk's
        // completion should be well before a fully serialized walk.
        assert!(t1 < t0 * 2, "walks should overlap: {t0} {t1}");
        assert_eq!(tr.stats().walker_wait_cycles, 0);
    }

    #[test]
    fn fault_on_unmapped() {
        let (phys, aspace, mut mem, _) = setup(1);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        let err = tr
            .translate(Requester::Marker, 0xdead_0000, 0, &mut mem, &phys)
            .unwrap_err();
        assert_eq!(err.va, 0xdead_0000);
    }

    #[test]
    fn flush_forces_rewalk() {
        let (phys, aspace, mut mem, base) = setup(1);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        tr.translate(Requester::Marker, base, 0, &mut mem, &phys)
            .unwrap();
        tr.flush();
        tr.translate(Requester::Marker, base, 100, &mut mem, &phys)
            .unwrap();
        assert_eq!(tr.stats().walks, 2);
    }

    #[test]
    fn ptw_cache_absorbs_upper_levels() {
        let (phys, aspace, mut mem, base) = setup(64);
        let mut tr = Translator::new(aspace, TlbConfig::default());
        let mut t = 0;
        for i in 0..64 {
            let (_, done) = tr
                .translate(Requester::Marker, base + i * PAGE_SIZE, t, &mut mem, &phys)
                .unwrap();
            t = done;
        }
        // 64 walks * 3 levels = 192 PTE reads, but the root/interior PTEs
        // are cached: far fewer than 192 memory requests.
        let ptw_fills = mem.stats().requests(Source::Ptw);
        assert!(ptw_fills < 64, "PTW cache ineffective: {ptw_fills} fills");
    }
}
