//! Virtual memory for the tracegc SoC: Sv39-style page tables, TLBs and
//! the page-table walker.
//!
//! The accelerator "operates on virtual addresses" (§V-C), so the paper
//! adds a page-table walker and TLBs to the traversal unit: 32-entry L1
//! TLBs for the marker and tracer, a 128-entry shared L2 TLB, and a
//! *blocking* PTW backed by an 8 KiB cache holding the top levels of the
//! page table. The evaluation finds exactly this blocking PTW to be the
//! main obstacle between the 4.2× DDR3 speedup and the 9× bandwidth-bound
//! ceiling (§VI-A) — so the walker here is blocking by default, with the
//! paper's proposed non-blocking variant available as a config knob
//! (exercised by the `ablC` experiment).
//!
//! Page tables are real data structures built inside the simulated
//! [`PhysMem`](tracegc_mem::PhysMem): the walker issues actual PTE reads
//! through its cache into the memory system, and translation results are
//! checked against the [`AddressSpace::translate`] oracle in tests.

pub mod pagetable;
pub mod ptw;
pub mod tlb;

pub use pagetable::{AddressSpace, FrameAlloc, PAGE_SIZE};
pub use ptw::{Requester, TlbConfig, TranslateFault, Translator, TranslatorStats};
pub use tlb::Tlb;
