//! The shared experiment runner: paired CPU/unit GC runs over identical
//! heap states.
//!
//! Methodology: the CPU collector and the GC unit must be measured on
//! *identical* heap snapshots. [`DualRun`] therefore maintains two
//! deterministically identical copies of the workload (same seed, same
//! churn sequence — possible because both sweeps provably rebuild
//! identical free lists), runs the software collector on one and the
//! accelerator on the other with fresh memory systems, and
//! cross-checks that both marked the same number of objects and freed
//! the same number of cells.

use tracegc_cpu::{Cpu, CpuConfig};
use tracegc_heap::verify::check_marks_match_reachability;
use tracegc_heap::LayoutKind;
use tracegc_hwgc::{GcUnit, GcUnitConfig, Trap, TraversalUnit};
use tracegc_mem::ddr3::Ddr3Config;
use tracegc_mem::pipe::PipeConfig;
use tracegc_mem::{MemSystem, Source};
use tracegc_sim::{
    Cycle, FaultConfig, FaultPlan, FaultSite, FaultStats, SimError, StallAccounting, TraceEvent,
};
use tracegc_workloads::generate::{churn, generate_heap, WorkloadHeap};
use tracegc_workloads::spec::BenchSpec;

/// Which memory system backs a measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemKind {
    /// DDR3 with an explicit configuration.
    Ddr3(Ddr3Config),
    /// The latency–bandwidth pipe of Fig. 17.
    Pipe(PipeConfig),
}

impl MemKind {
    /// Table I's DDR3-2000 with FR-FCFS and 16/8 outstanding.
    pub fn ddr3_default() -> Self {
        MemKind::Ddr3(Ddr3Config::default())
    }

    /// The 1-cycle / 8 GB/s pipe of Fig. 17.
    pub fn pipe_8gbps() -> Self {
        MemKind::Pipe(PipeConfig::default())
    }

    /// Builds a fresh memory system.
    pub fn fresh(self) -> MemSystem {
        match self {
            MemKind::Ddr3(cfg) => MemSystem::ddr3(cfg),
            MemKind::Pipe(cfg) => MemSystem::pipe(cfg),
        }
    }
}

/// A snapshot of memory-controller statistics after one phase.
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Total requests.
    pub total_requests: u64,
    /// Requests per source, indexed by [`Source::index`].
    pub requests_by_source: [u64; Source::ALL.len()],
    /// Mean cycles between request presentations (Fig. 17b).
    pub mean_issue_interval: f64,
    /// DRAM activates (None for the pipe model).
    pub activates: Option<u64>,
    /// Bandwidth time series in GB/s per 50 µs window (Fig. 16).
    pub series_gbps: Vec<f64>,
}

impl MemSnapshot {
    /// Captures the state of a memory system.
    pub fn capture(mem: &MemSystem) -> Self {
        let stats = mem.stats();
        Self {
            total_bytes: stats.total_bytes,
            total_requests: stats.total_requests,
            requests_by_source: stats.requests_by_source,
            mean_issue_interval: stats.mean_issue_interval(),
            activates: mem.ddr3_stats().map(|d| d.activates),
            series_gbps: mem.meter().series_gbps(),
        }
    }

    /// Requests issued by `source`.
    pub fn requests(&self, source: Source) -> u64 {
        self.requests_by_source[source.index()]
    }

    /// Average bandwidth over `cycles`, in GB/s at 1 GHz.
    pub fn avg_gbps(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total_bytes as f64 / cycles as f64
        }
    }
}

/// One paired GC pause: the same heap state collected by both agents.
#[derive(Debug, Clone)]
pub struct PauseResult {
    /// CPU mark-phase cycles.
    pub cpu_mark_cycles: Cycle,
    /// CPU sweep-phase cycles.
    pub cpu_sweep_cycles: Cycle,
    /// Unit mark-phase cycles.
    pub unit_mark_cycles: Cycle,
    /// Unit sweep-phase cycles.
    pub unit_sweep_cycles: Cycle,
    /// Objects marked (identical on both sides, checked).
    pub objects_marked: u64,
    /// Cells freed (identical on both sides, checked).
    pub cells_freed: u64,
    /// Memory statistics of the CPU run.
    pub cpu_mem: MemSnapshot,
    /// Memory statistics of the unit run.
    pub unit_mem: MemSnapshot,
    /// Mark-queue/spill statistics of the unit run.
    pub unit_markq: tracegc_hwgc::MarkQueueStats,
    /// Refs the unit's marker filtered via the mark-bit cache.
    pub unit_filtered: u64,
    /// Cycles the unit's TileLink port issued a request during mark.
    pub unit_port_busy: u64,
    /// Mark operations that found the object already marked.
    pub unit_already_marked: u64,
    /// CPU mark-phase cycle attribution (`total() == cpu_mark_cycles`).
    pub cpu_mark_stalls: StallAccounting,
    /// CPU sweep-phase cycle attribution.
    pub cpu_sweep_stalls: StallAccounting,
    /// Unit mark-phase cycle attribution (`total() == unit_mark_cycles`).
    pub unit_mark_stalls: StallAccounting,
    /// Unit sweep-phase cycle attribution, summed over all sweeper lanes
    /// (`total() == unit_sweep_cycles * unit_sweep_lanes`).
    pub unit_sweep_stalls: StallAccounting,
    /// Sweeper lanes the unit's sweep accounting covers.
    pub unit_sweep_lanes: u64,
    /// The unit's drained event ring (empty unless the unit config's
    /// `trace` flag was set).
    pub unit_trace: Vec<TraceEvent>,
}

impl PauseResult {
    /// Mark-phase speedup of the unit over the CPU.
    pub fn mark_speedup(&self) -> f64 {
        self.cpu_mark_cycles as f64 / self.unit_mark_cycles.max(1) as f64
    }

    /// Sweep-phase speedup of the unit over the CPU.
    pub fn sweep_speedup(&self) -> f64 {
        self.cpu_sweep_cycles as f64 / self.unit_sweep_cycles.max(1) as f64
    }

    /// Whole-GC speedup.
    pub fn total_speedup(&self) -> f64 {
        (self.cpu_mark_cycles + self.cpu_sweep_cycles) as f64
            / (self.unit_mark_cycles + self.unit_sweep_cycles).max(1) as f64
    }
}

/// Two deterministically identical copies of a workload, one collected
/// by the CPU model and one by the accelerator.
#[derive(Debug)]
pub struct DualRun {
    spec: BenchSpec,
    layout: LayoutKind,
    unit_cfg: GcUnitConfig,
    cpu_side: WorkloadHeap,
    unit_side: WorkloadHeap,
}

impl DualRun {
    /// Generates both copies of the workload.
    pub fn new(spec: &BenchSpec, layout: LayoutKind, unit_cfg: GcUnitConfig) -> Self {
        Self {
            spec: *spec,
            layout,
            unit_cfg,
            cpu_side: generate_heap(spec, layout),
            unit_side: generate_heap(spec, layout),
        }
    }

    /// The benchmark specification.
    pub fn spec(&self) -> &BenchSpec {
        &self.spec
    }

    /// The object layout both copies were generated with.
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// Access to the unit-side heap (for experiments that need extra
    /// unit-only instrumentation).
    pub fn unit_heap_mut(&mut self) -> &mut WorkloadHeap {
        &mut self.unit_side
    }

    /// Runs one paired GC pause on fresh memory systems and fresh
    /// agents (cold caches/TLBs, as after a context switch to GC).
    ///
    /// # Panics
    ///
    /// Panics if the two agents diverge (different mark counts or freed
    /// cells) — that would be a correctness bug, not a measurement.
    pub fn run_pause(&mut self, mem_kind: MemKind) -> PauseResult {
        // CPU side.
        let mut cpu_mem = mem_kind.fresh();
        let mut cpu = Cpu::new(CpuConfig::default(), &mut self.cpu_side.heap);
        let cpu_mark = cpu.run_mark(&mut self.cpu_side.heap, &mut cpu_mem);
        let cpu_sweep = cpu.run_sweep(&mut self.cpu_side.heap, &mut cpu_mem);
        let cpu_snapshot = MemSnapshot::capture(&cpu_mem);

        // Unit side.
        let mut unit_mem = mem_kind.fresh();
        let mut unit = GcUnit::new(self.unit_cfg, &mut self.unit_side.heap);
        let report = unit.run_gc(&mut self.unit_side.heap, &mut unit_mem);
        let unit_snapshot = MemSnapshot::capture(&unit_mem);
        let unit_trace = unit.take_trace();

        assert_eq!(
            cpu_mark.work_items, report.mark.objects_marked,
            "CPU and unit marked different object counts"
        );
        assert_eq!(
            cpu_sweep.work_items, report.sweep.cells_freed,
            "CPU and unit freed different cell counts"
        );

        PauseResult {
            cpu_mark_cycles: cpu_mark.cycles,
            cpu_sweep_cycles: cpu_sweep.cycles,
            unit_mark_cycles: report.mark.cycles(),
            unit_sweep_cycles: report.sweep.cycles(),
            objects_marked: report.mark.objects_marked,
            cells_freed: report.sweep.cells_freed,
            cpu_mem: cpu_snapshot,
            unit_mem: unit_snapshot,
            unit_markq: report.mark.markq,
            unit_filtered: report.mark.filtered,
            unit_port_busy: report.mark.port_busy_cycles,
            unit_already_marked: report.mark.already_marked,
            cpu_mark_stalls: cpu_mark.stalls,
            cpu_sweep_stalls: cpu_sweep.stalls,
            unit_mark_stalls: report.mark.stalls,
            unit_sweep_stalls: report.sweep.stalls,
            unit_sweep_lanes: report.sweep.lanes,
            unit_trace,
        }
    }

    /// Applies identical mutator churn to both copies (call between
    /// pauses).
    pub fn churn(&mut self, fraction: f64) {
        let a = churn(&mut self.cpu_side, fraction);
        let b = churn(&mut self.unit_side, fraction);
        assert_eq!(a, b, "churn diverged between the two copies");
    }

    /// Runs `pauses` GC pauses with `churn_fraction` mutation between
    /// them, returning every pause's measurements.
    pub fn run_pauses(
        &mut self,
        mem_kind: MemKind,
        pauses: usize,
        churn_fraction: f64,
    ) -> Vec<PauseResult> {
        let mut out = Vec::with_capacity(pauses);
        for i in 0..pauses {
            out.push(self.run_pause(mem_kind));
            if i + 1 < pauses {
                self.churn(churn_fraction);
            }
        }
        out
    }
}

/// How the driver recovered from a trapped mark: the architected state
/// drained from the frozen traversal unit and the cost of finishing the
/// mark in software.
#[derive(Debug, Clone, Copy)]
pub struct FallbackInfo {
    /// The trap that froze the unit.
    pub trap: Trap,
    /// Pending reference words drained from the unit's queues.
    pub drained: usize,
    /// Cycles the CPU's software-fallback mark took.
    pub cycles: Cycle,
}

/// Result of a unit-only collection (for experiments that need access
/// to the unit's internal statistics).
#[derive(Debug)]
pub struct UnitRun {
    /// The collection report.
    pub report: tracegc_hwgc::GcReport,
    /// Memory statistics.
    pub snapshot: MemSnapshot,
    /// The unit itself (access counts, cache stats).
    pub unit: GcUnit,
    /// The workload after collection.
    pub workload: WorkloadHeap,
    /// Merged fault-injector counters over all sites (all-zero for
    /// clean runs).
    pub fault_stats: FaultStats,
    /// `Some` when the mark trapped and the CPU finished it in software
    /// before the unit swept.
    pub fallback: Option<FallbackInfo>,
}

/// Runs a single accelerator-only collection on a fresh workload.
pub fn run_unit_gc(
    spec: &BenchSpec,
    layout: LayoutKind,
    cfg: GcUnitConfig,
    mem_kind: MemKind,
) -> UnitRun {
    run_unit_gc_opts(spec, layout, cfg, mem_kind, false)
}

/// Like [`run_unit_gc`], optionally mapping the heap with 2 MiB
/// superpages (the §VII `ablE` ablation).
pub fn run_unit_gc_opts(
    spec: &BenchSpec,
    layout: LayoutKind,
    cfg: GcUnitConfig,
    mem_kind: MemKind,
    superpages: bool,
) -> UnitRun {
    run_unit_gc_faulted(spec, layout, cfg, mem_kind, superpages, None)
}

/// Like [`run_unit_gc_opts`], optionally injecting faults from `fault`.
///
/// The degradation protocol mirrors what the driver would do: a trapped
/// mark leaves the unit frozen; the driver drains its architected state
/// (mark bitmap is already in the heap, pending reference words come
/// out of the queues), detaches the memory-system injector (recovery
/// runs on recovered memory), finishes the mark with the software
/// collector, and only then lets the unit sweep.
///
/// # Panics
///
/// Panics if the mark errors *without* latching a trap — injected
/// faults always trap, so that would be a simulator bug, not an
/// injected fault.
pub fn run_unit_gc_faulted(
    spec: &BenchSpec,
    layout: LayoutKind,
    cfg: GcUnitConfig,
    mem_kind: MemKind,
    superpages: bool,
    fault: Option<FaultConfig>,
) -> UnitRun {
    let mut workload = tracegc_workloads::generate::generate_heap_opts(spec, layout, superpages);
    let mut mem = mem_kind.fresh();
    let mut unit = GcUnit::new(cfg, &mut workload.heap);

    let plan = fault.filter(|f| f.is_active()).map(FaultPlan::new);
    if let Some(plan) = &plan {
        mem.set_fault_injector(plan.injector(FaultSite::Mem));
        unit.install_fault_plan(plan);
    }

    let mut fault_stats = FaultStats::default();
    let mut fallback = None;
    let report = match unit.try_run_gc_at(&mut workload.heap, &mut mem, 0) {
        Ok(report) => report,
        Err(e) => {
            let trap = unit
                .traversal()
                .trap()
                .unwrap_or_else(|| panic!("mark failed without a trap: {e}"));
            let mark = unit.traversal().result_at(0, trap.at);
            let pending = unit.traversal_mut().drain_architected_state(&workload.heap);
            // The trap may have left a latched unrecoverable fault in
            // the memory system; clear it and detach the injector so
            // the fallback runs on recovered memory.
            let _ = mem.take_fault();
            if let Some(inj) = mem.take_fault_injector() {
                fault_stats.merge(inj.stats());
            }
            let mut cpu = Cpu::new(CpuConfig::default(), &mut workload.heap);
            cpu.advance_to(trap.at);
            let fb = cpu.resume_mark_from(&mut workload.heap, &mut mem, &pending);
            check_marks_match_reachability(&workload.heap)
                .expect("software fallback must complete the mark exactly");
            let marked_total = workload.heap.marked_set().len() as u64;
            let sweep = unit.sweep_after_fallback(
                &mut workload.heap,
                &mut mem,
                trap.at + fb.cycles,
                marked_total,
            );
            fallback = Some(FallbackInfo {
                trap,
                drained: pending.len(),
                cycles: fb.cycles,
            });
            tracegc_hwgc::GcReport { mark, sweep }
        }
    };

    if let Some(inj) = mem.take_fault_injector() {
        fault_stats.merge(inj.stats());
    }
    if let Some(s) = unit.traversal().fault_stats() {
        fault_stats.merge(s);
    }
    if let Some(s) = unit.traversal().ptw_fault_stats() {
        fault_stats.merge(s);
    }

    UnitRun {
        report,
        snapshot: MemSnapshot::capture(&mem),
        unit,
        workload,
        fault_stats,
        fallback,
    }
}

/// How one fault-injected mark-only run ended.
#[derive(Debug, Clone)]
pub enum MarkOutcome {
    /// The unit completed the mark despite (or without) injected
    /// faults — retries and ECC correction absorbed everything.
    Clean,
    /// The unit trapped and the software fallback completed the mark.
    Fallback(FallbackInfo),
    /// The mark errored without a recoverable trap.
    Failed(SimError),
}

/// Result of [`run_faulted_mark`]: one mark pass under fault injection,
/// degraded to software where necessary.
#[derive(Debug)]
pub struct FaultedMarkRun {
    /// How the run ended.
    pub outcome: MarkOutcome,
    /// Cycles the hardware spent (full mark when clean, up to the trap
    /// otherwise).
    pub unit_cycles: Cycle,
    /// Cycles the software fallback spent (0 when clean).
    pub fallback_cycles: Cycle,
    /// Objects carrying a mark when the pass finished.
    pub objects_marked: u64,
    /// Merged fault-injector counters over all sites.
    pub stats: FaultStats,
    /// Unit-side cycle attribution (the full mark when clean, up to the
    /// freeze when trapped).
    pub unit_stalls: StallAccounting,
    /// Software-fallback cycle attribution (all-zero when clean).
    pub fallback_stalls: StallAccounting,
}

impl FaultedMarkRun {
    /// Total mark cycles, hardware plus fallback.
    pub fn total_cycles(&self) -> Cycle {
        self.unit_cycles + self.fallback_cycles
    }
}

/// Runs one traversal-only pass under fault injection and, if the unit
/// traps, completes the mark with the software fallback. Every run
/// that does not fail is differentially checked: the final mark set
/// must match reachability exactly, whichever path produced it.
pub fn run_faulted_mark(
    spec: &BenchSpec,
    layout: LayoutKind,
    cfg: GcUnitConfig,
    mem_kind: MemKind,
    fault: FaultConfig,
) -> FaultedMarkRun {
    let mut workload = generate_heap(spec, layout);
    let mut mem = mem_kind.fresh();
    let mut unit = TraversalUnit::new(cfg, &mut workload.heap);

    let plan = fault.is_active().then(|| FaultPlan::new(fault));
    if let Some(plan) = &plan {
        mem.set_fault_injector(plan.injector(FaultSite::Mem));
        unit.install_fault_plan(plan);
    }

    let mut stats = FaultStats::default();
    let mut fallback_stalls = StallAccounting::default();
    let (outcome, unit_cycles, fallback_cycles) =
        match unit.try_run_mark(&mut workload.heap, &mut mem, 0) {
            Ok(res) => (MarkOutcome::Clean, res.cycles(), 0),
            Err(e) => match unit.trap() {
                Some(trap) => {
                    let pending = unit.drain_architected_state(&workload.heap);
                    let _ = mem.take_fault();
                    if let Some(inj) = mem.take_fault_injector() {
                        stats.merge(inj.stats());
                    }
                    let mut cpu = Cpu::new(CpuConfig::default(), &mut workload.heap);
                    cpu.advance_to(trap.at);
                    let fb = cpu.resume_mark_from(&mut workload.heap, &mut mem, &pending);
                    fallback_stalls = fb.stalls;
                    let info = FallbackInfo {
                        trap,
                        drained: pending.len(),
                        cycles: fb.cycles,
                    };
                    (MarkOutcome::Fallback(info), trap.at, fb.cycles)
                }
                None => (MarkOutcome::Failed(e), 0, 0),
            },
        };

    if let Some(inj) = mem.take_fault_injector() {
        stats.merge(inj.stats());
    }
    if let Some(s) = unit.fault_stats() {
        stats.merge(s);
    }
    if let Some(s) = unit.ptw_fault_stats() {
        stats.merge(s);
    }

    if !matches!(outcome, MarkOutcome::Failed(_)) {
        check_marks_match_reachability(&workload.heap)
            .expect("fault-injected mark must agree with reachability");
    }

    FaultedMarkRun {
        outcome,
        unit_cycles,
        fallback_cycles,
        objects_marked: workload.heap.marked_set().len() as u64,
        stats,
        unit_stalls: *unit.stalls(),
        fallback_stalls,
    }
}

/// Like [`run_faulted_mark`], over a *streamed* workload (the fleet's
/// tenant heaps): one traversal-only pass under optional fault
/// injection and the configured per-request budget
/// (`cfg.mark_budget`) / throttle (`cfg.min_issue_interval`), degraded
/// to the software fallback on any trap — including
/// [`TrapKind::RequestTimeout`](tracegc_hwgc::TrapKind::RequestTimeout).
/// Every non-failed run is differentially checked against the
/// reachability oracle, whichever path completed the mark.
pub fn run_faulted_mark_stream(
    spec: &tracegc_workloads::StreamSpec,
    layout: LayoutKind,
    cfg: GcUnitConfig,
    mem_kind: MemKind,
    fault: Option<FaultConfig>,
) -> FaultedMarkRun {
    let mut streamed = tracegc_workloads::generate_streamed(spec, layout);
    let mut mem = mem_kind.fresh();
    let mut unit = TraversalUnit::new(cfg, &mut streamed.heap);

    let plan = fault.filter(|f| f.is_active()).map(FaultPlan::new);
    if let Some(plan) = &plan {
        mem.set_fault_injector(plan.injector(FaultSite::Mem));
        unit.install_fault_plan(plan);
    }

    let mut stats = FaultStats::default();
    let mut fallback_stalls = StallAccounting::default();
    let (outcome, unit_cycles, fallback_cycles) =
        match unit.try_run_mark(&mut streamed.heap, &mut mem, 0) {
            Ok(res) => (MarkOutcome::Clean, res.cycles(), 0),
            Err(e) => match unit.trap() {
                Some(trap) => {
                    let pending = unit.drain_architected_state(&streamed.heap);
                    let _ = mem.take_fault();
                    if let Some(inj) = mem.take_fault_injector() {
                        stats.merge(inj.stats());
                    }
                    let mut cpu = Cpu::new(CpuConfig::default(), &mut streamed.heap);
                    cpu.advance_to(trap.at);
                    let fb = cpu.resume_mark_from(&mut streamed.heap, &mut mem, &pending);
                    fallback_stalls = fb.stalls;
                    let info = FallbackInfo {
                        trap,
                        drained: pending.len(),
                        cycles: fb.cycles,
                    };
                    (MarkOutcome::Fallback(info), trap.at, fb.cycles)
                }
                None => (MarkOutcome::Failed(e), 0, 0),
            },
        };

    if let Some(inj) = mem.take_fault_injector() {
        stats.merge(inj.stats());
    }
    if let Some(s) = unit.fault_stats() {
        stats.merge(s);
    }
    if let Some(s) = unit.ptw_fault_stats() {
        stats.merge(s);
    }

    if !matches!(outcome, MarkOutcome::Failed(_)) {
        check_marks_match_reachability(&streamed.heap)
            .expect("fault-injected streamed mark must agree with reachability");
    }

    FaultedMarkRun {
        outcome,
        unit_cycles,
        fallback_cycles,
        objects_marked: streamed.heap.marked_set().len() as u64,
        stats,
        unit_stalls: *unit.stalls(),
        fallback_stalls,
    }
}

/// Result of a CPU-only collection.
#[derive(Debug)]
pub struct CpuRun {
    /// Mark-phase result.
    pub mark: tracegc_cpu::PhaseResult,
    /// Sweep-phase result.
    pub sweep: tracegc_cpu::PhaseResult,
    /// Memory statistics.
    pub snapshot: MemSnapshot,
    /// The workload after collection.
    pub workload: WorkloadHeap,
}

/// Runs a single software-collector-only collection on a fresh workload.
pub fn run_cpu_gc(spec: &BenchSpec, layout: LayoutKind, mem_kind: MemKind) -> CpuRun {
    let mut workload = generate_heap(spec, layout);
    let mut mem = mem_kind.fresh();
    let mut cpu = Cpu::new(CpuConfig::default(), &mut workload.heap);
    let mark = cpu.run_mark(&mut workload.heap, &mut mem);
    let sweep = cpu.run_sweep(&mut workload.heap, &mut mem);
    CpuRun {
        mark,
        sweep,
        snapshot: MemSnapshot::capture(&mem),
        workload,
    }
}

/// Result of a unit collection over a *streamed* workload — heaps too
/// large to keep an all-objects vector for, so the run carries the
/// generator's bookkeeping instead of the workload itself.
#[derive(Debug)]
pub struct StreamRun {
    /// The collection report.
    pub report: tracegc_hwgc::GcReport,
    /// Memory statistics.
    pub snapshot: MemSnapshot,
    /// Objects reachable from the roots at generation time.
    pub live_objects: u64,
    /// Generation bookkeeping (allocations, recycling sweeps, peak
    /// generator footprint).
    pub gen_stats: tracegc_workloads::GenStats,
    /// Host bytes actually backing the simulated physical memory after
    /// the collection (sparse chunks that were ever written).
    pub resident_bytes: u64,
    /// Simulated physical memory size in bytes.
    pub phys_bytes: u64,
}

/// Runs a single accelerator-only collection on a freshly streamed
/// workload, asserting the unit marks exactly the generation-time live
/// set (every streamed shape keeps all LOS objects reachable, so the
/// LOS-always-live sweep convention cannot skew the count).
pub fn run_unit_gc_stream(
    spec: &tracegc_workloads::StreamSpec,
    layout: LayoutKind,
    cfg: GcUnitConfig,
    mem_kind: MemKind,
) -> StreamRun {
    let mut streamed = tracegc_workloads::generate_streamed(spec, layout);
    let mut mem = mem_kind.fresh();
    let mut unit = GcUnit::new(cfg, &mut streamed.heap);
    let report = unit.run_gc(&mut streamed.heap, &mut mem);
    assert_eq!(
        report.mark.objects_marked, streamed.live_objects as u64,
        "unit marked a different live set than the streamed generator built ({})",
        spec.name
    );
    StreamRun {
        report,
        snapshot: MemSnapshot::capture(&mem),
        live_objects: streamed.live_objects as u64,
        gen_stats: streamed.stats,
        resident_bytes: streamed.heap.phys.resident_bytes(),
        phys_bytes: streamed.heap.phys.size_bytes(),
    }
}

/// Geometric mean of a slice (1.0 when empty).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegc_workloads::spec::by_name;

    fn quick_spec() -> BenchSpec {
        by_name("avrora").unwrap().scaled(0.01)
    }

    #[test]
    fn paired_pause_agrees_and_unit_wins_mark() {
        let mut run = DualRun::new(
            &quick_spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
        );
        let p = run.run_pause(MemKind::ddr3_default());
        assert!(p.objects_marked > 0);
        assert!(p.mark_speedup() > 1.0, "speedup {}", p.mark_speedup());
    }

    #[test]
    fn multi_pause_with_churn_stays_consistent() {
        let mut run = DualRun::new(
            &quick_spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
        );
        let pauses = run.run_pauses(MemKind::ddr3_default(), 3, 0.15);
        assert_eq!(pauses.len(), 3);
        // Later pauses should find garbage created by churn.
        assert!(pauses[1].cells_freed > 0 || pauses[2].cells_freed > 0);
    }

    #[test]
    fn pipe_memory_works_too() {
        let mut run = DualRun::new(
            &quick_spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
        );
        let p = run.run_pause(MemKind::pipe_8gbps());
        assert!(p.unit_mem.activates.is_none());
        assert!(p.mark_speedup() > 1.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn faulted_unit_gc_degrades_to_software_and_still_sweeps() {
        let fault = FaultConfig {
            seed: 7,
            corrupt_ref_rate: 0.05,
            ..Default::default()
        };
        let run = run_unit_gc_faulted(
            &quick_spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
            false,
            Some(fault),
        );
        let fb = run.fallback.expect("a 5% corruption rate must trap");
        assert!(fb.cycles > 0, "fallback must cost cycles");
        assert!(run.fault_stats.corrupted_refs > 0);
        // The clean reference run frees the same cells: degradation
        // changes timing, never the collected set.
        let clean = run_unit_gc(
            &quick_spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
        );
        assert_eq!(run.report.sweep.cells_freed, clean.report.sweep.cells_freed);
        assert!(
            run.workload.heap.marked_set().is_empty(),
            "sweep clears marks"
        );
        tracegc_heap::verify::check_free_lists(&run.workload.heap).unwrap();
    }

    #[test]
    fn clean_unit_gc_reports_zero_fault_stats() {
        let run = run_unit_gc(
            &quick_spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
        );
        assert_eq!(run.fault_stats, FaultStats::default());
        assert!(run.fallback.is_none());
    }

    #[test]
    fn faulted_mark_outcomes_are_differentially_checked() {
        // Zero rates: clean, no injector attached.
        let clean = run_faulted_mark(
            &quick_spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
            FaultConfig::zero_rates(1),
        );
        assert!(matches!(clean.outcome, MarkOutcome::Clean));
        assert_eq!(clean.fallback_cycles, 0);
        assert_eq!(clean.stats, FaultStats::default());

        // An aggressive rate: must trap and fall back; the oracle
        // inside run_faulted_mark already pinned mark == reachability.
        let faulted = run_faulted_mark(
            &quick_spec(),
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
            FaultConfig {
                seed: 13,
                corrupt_ref_rate: 0.05,
                ..Default::default()
            },
        );
        assert!(matches!(faulted.outcome, MarkOutcome::Fallback(_)));
        assert!(faulted.fallback_cycles > 0);
        assert_eq!(faulted.objects_marked, clean.objects_marked);
        assert!(faulted.total_cycles() >= faulted.unit_cycles);
    }
}
