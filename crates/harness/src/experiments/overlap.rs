//! `overlap`: mark and sweep overlapped on one shared memory system.
//!
//! The scheduler layer makes phase overlap a configuration rather than
//! new hardware: the traversal unit marks heap A while the reclamation
//! unit sweeps heap B (two processes, as in §VII), both issuing into
//! the same DDR3 model. The `throttled` row caps the pair's issue
//! bandwidth to one service cycle in four — the paper's observation
//! that the unit "can be throttled to limit its memory bandwidth
//! usage" (§VII) — which mostly prices the mark engine, since the
//! sweepers run on their own lane clocks.

use tracegc_heap::verify::software_mark;
use tracegc_heap::{LayoutKind, SocCtx};
use tracegc_hwgc::{GcUnitConfig, MarkEngine, ReclamationUnit, SweepEngine, TraversalUnit};
use tracegc_sim::sched::{Engine, Policy, Scheduler};
use tracegc_workloads::generate::generate_heap;
use tracegc_workloads::spec::by_name;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::MemKind;
use crate::table::{ms, Table};

/// How the two engines share the clock in one grid point.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Mark fully, then sweep — the stop-the-world phase order.
    Serial,
    /// Both engines every cycle on one shared memory system.
    Lockstep,
    /// Both engines serviced one cycle in `period`.
    Throttled { period: u64 },
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Serial => "serial",
            Mode::Lockstep => "overlapped",
            Mode::Throttled { .. } => "overlapped/throttled-4",
        }
    }
}

/// Marks one heap while sweeping another, serial vs overlapped.
pub fn run(opts: &Options) -> ExperimentOutput {
    let mark_spec = by_name("lusearch")
        .expect("lusearch exists")
        .scaled(opts.scale);
    let mut sweep_spec = by_name("avrora").expect("avrora exists").scaled(opts.scale);
    // A distinct process: same generator, different object graph.
    sweep_spec.seed ^= 0x5eed;

    let mut table = Table::new(
        "overlap: mark (lusearch) + sweep (avrora) on one DDR3",
        &["mode", "wall-ms", "mark-ms", "sweep-ms", "vs-serial"],
    );
    let modes = vec![Mode::Serial, Mode::Lockstep, Mode::Throttled { period: 4 }];
    let results = super::par_grid(opts, modes, |mode| {
        let mut a = generate_heap(&mark_spec, LayoutKind::Bidirectional);
        let mut b = generate_heap(&sweep_spec, LayoutKind::Bidirectional);
        software_mark(&mut b.heap);
        let mut mem = MemKind::ddr3_default().fresh();
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut a.heap);
        let mut rec = ReclamationUnit::new(GcUnitConfig::default(), &b.heap);
        match mode {
            Mode::Serial => {
                let mark = unit.run_mark(&mut a.heap, &mut mem, 0);
                let sweep = rec.run_sweep(&mut b.heap, &mut mem, mark.end);
                (mode, sweep.end, mark, sweep)
            }
            Mode::Lockstep | Mode::Throttled { .. } => {
                let policy = match mode {
                    Mode::Throttled { period } => Policy::Throttled { period },
                    _ => Policy::Lockstep,
                };
                unit.begin(&a.heap, 0);
                let mut sweep_eng = SweepEngine::new(&mut rec, 1, 0);
                let report = {
                    let mut mark_eng = MarkEngine::new(&mut unit, 0);
                    let mut ctx = SocCtx::new(&mut mem, vec![&mut a.heap, &mut b.heap]);
                    let mut engines: [&mut dyn Engine<SocCtx>; 2] = [&mut mark_eng, &mut sweep_eng];
                    Scheduler::new(policy).run(&mut engines, &mut ctx, 0)
                };
                let mark = unit.result_at(0, report.ends[0]);
                (mode, report.end, mark, sweep_eng.into_result())
            }
        }
    });
    let serial_wall = results[0].1;
    let mut metrics = MetricsDoc::new("overlap");
    for (mode, wall, mark, sweep) in results {
        let label = mode.label();
        table.row(vec![
            label.into(),
            ms(wall),
            ms(mark.cycles()),
            ms(sweep.cycles()),
            format!("{:.2}x", serial_wall as f64 / wall.max(1) as f64),
        ]);
        // Both engines keep exact ledgers under every policy: the mark
        // engine is charged by the scheduler cycle-for-cycle, the sweep
        // engine self-accounts across its lanes.
        let key = label.replace('/', "_");
        metrics.phase(&format!("{key}.mark"), mark.cycles(), 1, mark.stalls);
        metrics.phase(
            &format!("{key}.sweep"),
            sweep.cycles(),
            sweep.lanes,
            sweep.stalls,
        );
        metrics.gauge(&format!("{key}.wall_ms"), wall as f64 / 1e6);
        metrics.gauge(
            &format!("{key}.vs_serial"),
            serial_wall as f64 / wall.max(1) as f64,
        );
    }
    ExperimentOutput {
        id: "overlap",
        title: "Overlapped mark + sweep on a shared memory system",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Overlapping the two phases hides part of each unit's memory \
             latency behind the other's work, so the overlapped wall time \
             beats mark+sweep run back to back; throttling the pair to one \
             service cycle in four prices the traversal unit (which issues \
             on the shared clock) while the lane-clocked sweepers barely \
             notice — the bandwidth cap of paper SVII."
                .into(),
        ],
    }
}
