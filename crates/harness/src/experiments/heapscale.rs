//! `heapscale`: the unit at production heap sizes (ROADMAP item 2).
//!
//! The paper evaluates a 200 MB heap cap (§VI-A) but every other
//! experiment here runs the ~10× scaled-down suite of DESIGN.md. This
//! sweep asks the question a deployment would: how do the traversal
//! unit's fixed-size SRAM structures — the 1,024-entry mark queue, the
//! spill engine behind it (§V-C) and the mark-bit cache (Fig. 21) —
//! hold up as the live set grows from DaCapo-small through the paper's
//! exact 200 MB to multi-GB server heaps with millions of objects?
//!
//! Heaps come from the streamed generators (`tracegc_workloads::stream`),
//! so neither the generator nor the sparse physical memory materializes
//! anything proportional to total allocations: a row's host cost tracks
//! its *live* set. Shapes cover the production-traffic patterns the
//! DaCapo mix does not: LRU cache churn, request/session allocation
//! storms, social-graph supernodes and actor-mesh message passing.
//!
//! All reported columns are deterministic (simulated counters only);
//! host RSS is checked by the CLI's `--rss-ceiling-mb` gate, not
//! recorded here.

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_workloads::stream::objects_for_mb;
use tracegc_workloads::{StreamShape, StreamSpec};

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{run_unit_gc_stream, MemKind, StreamRun};
use crate::table::{ms, Table};

/// The DaCapo-like spanning-forest shape (cross-edge skew as Fig. 21a).
const FOREST: StreamShape = StreamShape::Forest {
    mean_refs: 2.2,
    array_fraction: 0.1,
    popularity_s: 1.1,
    hot_fraction: 0.1,
    garbage_factor: 0.5,
};

/// The sweep grid: (target live MB at scale 1.0, scale exponent,
/// spec). Ordered by heap size; `paper200` is the paper's exact 200 MB
/// configuration and `server-lru` is the ≥1 GB server-shape row CI's
/// RSS gate watches. The server row's live target follows
/// `scale^1.5` — full-size at `--scale 1.0` but super-linearly smaller
/// at the smoke/golden tiers, so the debug-mode test wall doesn't pay
/// for a 135k-object heap on every registry sweep.
fn grid() -> Vec<(u64, f64, StreamSpec)> {
    let spec = |name, mb, expo, shape| {
        (
            mb,
            expo,
            StreamSpec {
                name,
                shape,
                live_objects: objects_for_mb(mb),
                window: 4096,
                hot_set: 56,
                roots: 64,
                seed: 0x9EA5_CA1E,
            },
        )
    };
    vec![
        spec("dacapo-mix", 32, 1.0, FOREST),
        spec(
            "lru-churn",
            64,
            1.0,
            StreamShape::LruCache { churn_factor: 3.0 },
        ),
        spec(
            "sessions",
            64,
            1.0,
            StreamShape::RequestSession {
                session_objects: 24,
                survivor_fraction: 0.12,
            },
        ),
        spec(
            "social-graph",
            64,
            1.0,
            StreamShape::SocialGraph {
                supernodes: 12,
                supernode_degree: 2048,
            },
        ),
        spec(
            "actor-mesh",
            64,
            1.0,
            StreamShape::ActorMesh {
                peers: 3,
                mailbox_depth: 4,
                churn_messages: 6.0,
            },
        ),
        spec("paper200", 200, 1.0, FOREST),
        // 1536 MB target: LRU entries average ~82 bytes against the
        // 120 B/object sizing estimate, so this is what actually
        // yields a ≥1 GB measured live set (est_live_bytes) at
        // --scale 1.0.
        spec(
            "server-lru",
            1536,
            1.5,
            StreamShape::LruCache { churn_factor: 2.0 },
        ),
    ]
}

/// Unit configuration for a given live-set size: the paper's baseline
/// plus the Fig. 21 mark-bit cache at its largest evaluated size, and a
/// spill region provisioned for the worst case (every live object
/// pending at once) so no row can hit `Trap::SpillExhausted` — the
/// sparse physical memory makes the generous reservation free.
fn unit_cfg(live_objects: usize) -> GcUnitConfig {
    GcUnitConfig {
        markbit_cache: 256,
        spill_bytes: (live_objects as u64 * 16)
            .next_multiple_of(1 << 20)
            .max(4 << 20),
        ..GcUnitConfig::default()
    }
}

/// Mark-queue pressure, spill traffic and mark-bit cache filtering
/// versus live-set size.
pub fn run(opts: &Options) -> ExperimentOutput {
    let mut table = Table::new(
        "heapscale: SRAM-bounded structures vs live-set size",
        &[
            "workload",
            "target-mb",
            "live-objects",
            "allocated",
            "live-mb",
            "resident-mb",
            "markq-peak",
            "spill-peak",
            "spill-mb",
            "filtered-%",
            "mark-ms",
            "sweep-ms",
        ],
    );
    let rows = super::par_grid(opts, grid(), |(mb, expo, spec)| {
        let spec = spec.scaled(opts.scale.powf(expo));
        let run = run_unit_gc_stream(
            &spec,
            LayoutKind::Bidirectional,
            unit_cfg(spec.live_objects),
            MemKind::ddr3_default(),
        );
        let mark = &run.report.mark;
        let attempts = mark.objects_marked + mark.already_marked + mark.filtered;
        let q = &mark.markq;
        let row = vec![
            spec.name.into(),
            format!("{mb}"),
            format!("{}", run.live_objects),
            format!("{}", run.gen_stats.allocated),
            format!(
                "{:.1}",
                run.gen_stats.est_live_bytes as f64 / (1 << 20) as f64
            ),
            format!("{:.1}", run.resident_bytes as f64 / (1 << 20) as f64),
            format!("{}", q.peak_occupancy),
            format!("{}", q.peak_spilled),
            format!("{:.2}", q.spill_bytes_written as f64 / (1 << 20) as f64),
            format!(
                "{:.1}%",
                100.0 * mark.filtered as f64 / attempts.max(1) as f64
            ),
            ms(mark.cycles()),
            ms(run.report.sweep.cycles()),
        ];
        (row, run)
    });
    let mut metrics = MetricsDoc::new("heapscale");
    let mut live_total = 0u64;
    let mut spill_total = 0u64;
    let mut resident_total = 0u64;
    for ((_, _, spec), (row, run)) in grid().iter().zip(rows) {
        table.row(row);
        record_row(&mut metrics, spec.name, &run);
        live_total += run.live_objects;
        spill_total += run.report.mark.markq.spill_bytes_written;
        resident_total += run.resident_bytes;
    }
    metrics.counter("live_objects", live_total);
    metrics.counter("spill_bytes_written", spill_total);
    metrics.counter("resident_bytes", resident_total);
    ExperimentOutput {
        id: "heapscale",
        title: "heapscale: paper-scale and server-scale heaps",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "paper200 at --scale 1.0 is the paper's exact 200 MB heap configuration \
             (§VI-A); server-lru at --scale 1.0 holds a ≥1 GB live set."
                .into(),
            "resident-mb counts sparse physical chunks actually written — the \
             simulated footprint the CI host-RSS ceiling is a multiple of."
                .into(),
            "Columns are simulated counters only, byte-identical across --jobs and \
             --par-engines; host RSS is gated separately via --rss-ceiling-mb."
                .into(),
        ],
    }
}

fn record_row(metrics: &mut MetricsDoc, name: &str, run: &StreamRun) {
    metrics.phase(
        &format!("{name}.unit_mark"),
        run.report.mark.cycles(),
        1,
        run.report.mark.stalls,
    );
    metrics.phase(
        &format!("{name}.unit_sweep"),
        run.report.sweep.cycles(),
        run.report.sweep.lanes,
        run.report.sweep.stalls,
    );
    metrics.counter(
        &format!("{name}.markq_peak"),
        run.report.mark.markq.peak_occupancy,
    );
    metrics.counter(
        &format!("{name}.spill_peak"),
        run.report.mark.markq.peak_spilled,
    );
    metrics.counter(&format!("{name}.resident_bytes"), run.resident_bytes);
}
