//! Fig. 20: scaling the number of block sweepers.
//!
//! "We scale linearly to 2 sweepers but beyond this point, speed-ups
//! start to reduce. At 8 sweepers, the contention on the memory system
//! starts to outweigh the benefits from parallelism. 4 sweepers
//! outperform the CPU by 2–3×."

use tracegc_cpu::{Cpu, CpuConfig};
use tracegc_heap::verify::software_mark;
use tracegc_heap::LayoutKind;
use tracegc_hwgc::{GcUnitConfig, ReclamationUnit};
use tracegc_workloads::generate::generate_heap;
use tracegc_workloads::spec::DACAPO;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::MemKind;
use crate::table::Table;

const SWEEPERS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Sweep speedup over the software sweep for 1–8 sweepers, per
/// benchmark.
pub fn run(opts: &Options) -> ExperimentOutput {
    let mut table = Table::new(
        "Fig 20: sweep speedup vs software for N block sweepers",
        &["bench", "sw-ms", "1", "2", "3", "4", "5", "6", "7", "8"],
    );
    // Grid points: per benchmark, the software baseline (None) plus one
    // hardware sweep per sweeper count (Some(n)) — 6 x 9 independent
    // simulations, each building its own heap from the spec's seed.
    let grid: Vec<(tracegc_workloads::spec::BenchSpec, Option<usize>)> = DACAPO
        .iter()
        .flat_map(|&spec| {
            std::iter::once((spec, None)).chain(SWEEPERS.iter().map(move |&n| (spec, Some(n))))
        })
        .collect();
    let results = super::par_grid(opts, grid, |(spec, sweepers)| {
        let spec = spec.scaled(opts.scale);
        let mut w = generate_heap(&spec, LayoutKind::Bidirectional);
        software_mark(&mut w.heap);
        let mut mem = MemKind::ddr3_default().fresh();
        match sweepers {
            // Software baseline: the CPU collector sweeping a marked heap.
            None => {
                let mut cpu = Cpu::new(CpuConfig::default(), &mut w.heap);
                let sweep = cpu.run_sweep(&mut w.heap, &mut mem);
                (sweep.cycles, 1, sweep.stalls)
            }
            Some(n) => {
                let cfg = GcUnitConfig {
                    sweepers: n,
                    ..GcUnitConfig::default()
                };
                let mut unit = ReclamationUnit::new(cfg, &w.heap);
                let sweep = unit.run_sweep(&mut w.heap, &mut mem, 0);
                (sweep.cycles(), sweep.lanes, sweep.stalls)
            }
        }
    });
    let mut metrics = MetricsDoc::new("fig20");
    for (spec, per_bench) in DACAPO.iter().zip(results.chunks(1 + SWEEPERS.len())) {
        let (sw_cycles, sw_lanes, sw_stalls) = per_bench[0];
        metrics.phase(
            &format!("{}.sw_sweep", spec.name),
            sw_cycles,
            sw_lanes,
            sw_stalls,
        );
        let mut row = vec![
            spec.name.to_string(),
            format!("{:.2}", sw_cycles as f64 / 1e6),
        ];
        for (&n, &(hw_cycles, lanes, stalls)) in SWEEPERS.iter().zip(&per_bench[1..]) {
            metrics.phase(
                &format!("{}.hw{n}_sweep", spec.name),
                hw_cycles,
                lanes,
                stalls,
            );
            row.push(format!("{:.2}", sw_cycles as f64 / hw_cycles.max(1) as f64));
        }
        table.row(row);
    }
    ExperimentOutput {
        id: "fig20",
        title: "Fig 20: block-sweeper scaling",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper: near-linear to 2 sweepers, diminishing beyond, slower again at 8 \
             (memory contention); 4 sweepers beat the CPU 2-3x."
                .into(),
        ],
    }
}
