//! Fig. 15: GC performance — the headline result.
//!
//! "On average, the GC Unit outperforms the CPU by a factor of 4.2× for
//! mark and 1.9× for sweep", averaged across all GC pauses of each
//! DaCapo benchmark, on the Table I DDR3 memory system.

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_workloads::spec::DACAPO;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{geomean, DualRun, MemKind};
use crate::table::{ms, ratio, Table};

/// Runs paired CPU/unit collections for every benchmark.
pub fn run(opts: &Options) -> ExperimentOutput {
    let mut table = Table::new(
        "Fig 15: mark & sweep time, Rocket CPU vs GC unit (avg across pauses)",
        &[
            "bench",
            "cpu-mark-ms",
            "unit-mark-ms",
            "mark-speedup",
            "cpu-sweep-ms",
            "unit-sweep-ms",
            "sweep-speedup",
            "total-speedup",
        ],
    );
    let mut mark_speedups = Vec::new();
    let mut sweep_speedups = Vec::new();
    let mut total_speedups = Vec::new();
    let results = super::par_grid(opts, DACAPO.to_vec(), |spec| {
        let spec = spec.scaled(opts.scale);
        let pauses = spec.pauses.min(opts.pauses);
        let mut run = DualRun::new(&spec, LayoutKind::Bidirectional, GcUnitConfig::default());
        (
            spec.name,
            run.run_pauses(MemKind::ddr3_default(), pauses, 0.15),
        )
    });
    let mut metrics = MetricsDoc::new("fig15");
    for (name, pauses) in results {
        let avg = |f: &dyn Fn(&crate::runner::PauseResult) -> u64| {
            pauses.iter().map(f).sum::<u64>() / pauses.len() as u64
        };
        let cpu_mark = avg(&|r| r.cpu_mark_cycles);
        let unit_mark = avg(&|r| r.unit_mark_cycles);
        let cpu_sweep = avg(&|r| r.cpu_sweep_cycles);
        let unit_sweep = avg(&|r| r.unit_sweep_cycles);
        for (i, p) in pauses.iter().enumerate() {
            metrics.pause_phases(&format!("{name}.pause{i}"), p);
            metrics.counter("objects_marked", p.objects_marked);
            metrics.counter("cells_freed", p.cells_freed);
        }
        let mark_sp = cpu_mark as f64 / unit_mark.max(1) as f64;
        let sweep_sp = cpu_sweep as f64 / unit_sweep.max(1) as f64;
        let total_sp = (cpu_mark + cpu_sweep) as f64 / (unit_mark + unit_sweep).max(1) as f64;
        mark_speedups.push(mark_sp);
        sweep_speedups.push(sweep_sp);
        total_speedups.push(total_sp);
        table.row(vec![
            name.into(),
            ms(cpu_mark),
            ms(unit_mark),
            ratio(mark_sp),
            ms(cpu_sweep),
            ms(unit_sweep),
            ratio(sweep_sp),
            ratio(total_sp),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        "-".into(),
        "-".into(),
        ratio(geomean(&mark_speedups)),
        "-".into(),
        "-".into(),
        ratio(geomean(&sweep_speedups)),
        ratio(geomean(&total_speedups)),
    ]);
    metrics.gauge("mark_speedup_geomean", geomean(&mark_speedups));
    metrics.gauge("sweep_speedup_geomean", geomean(&sweep_speedups));
    metrics.gauge("total_speedup_geomean", geomean(&total_speedups));
    ExperimentOutput {
        id: "fig15",
        title: "Fig 15: GC performance (DDR3)",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper: 4.2x mark, 1.9x sweep, 3.3x overall (2 sweepers, 1,024-entry \
             mark queue, 16 marker slots, 32-entry TLBs, 128-entry L2 TLB)."
                .into(),
            "Mark results are cross-checked: CPU and unit always mark identical sets.".into(),
        ],
    }
}
