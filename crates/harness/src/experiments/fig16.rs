//! Fig. 16: memory bandwidth over time during the last avrora GC pause.
//!
//! "Our unit is more effective at exploiting memory bandwidth,
//! particularly during the mark phase."

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_workloads::spec::by_name;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{DualRun, MemKind};
use crate::table::Table;

/// Captures the bandwidth time series of the last avrora pause.
///
/// This experiment has no independent grid points to hand to the worker
/// pool: successive pauses share the churned heap, so they must run in
/// order. `--jobs` still overlaps fig16 with other experiment ids.
pub fn run(opts: &Options) -> ExperimentOutput {
    let spec = by_name("avrora").expect("avrora exists").scaled(opts.scale);
    let pauses = spec.pauses.min(opts.pauses);
    let cfg = GcUnitConfig {
        trace: opts.trace,
        ..GcUnitConfig::default()
    };
    let mut run = DualRun::new(&spec, LayoutKind::Bidirectional, cfg);
    let results = run.run_pauses(MemKind::ddr3_default(), pauses, 0.15);
    let last = results.last().expect("at least one pause");

    let mut series = Table::new(
        "Fig 16: bandwidth (GB/s) per 50us window, last avrora pause",
        &["window", "cpu-gbps", "unit-gbps"],
    );
    let n = last
        .cpu_mem
        .series_gbps
        .len()
        .max(last.unit_mem.series_gbps.len());
    for i in 0..n {
        series.row(vec![
            format!("{i}"),
            format!(
                "{:.3}",
                last.cpu_mem.series_gbps.get(i).copied().unwrap_or(0.0)
            ),
            format!(
                "{:.3}",
                last.unit_mem.series_gbps.get(i).copied().unwrap_or(0.0)
            ),
        ]);
    }

    let cpu_cycles = last.cpu_mark_cycles + last.cpu_sweep_cycles;
    let unit_cycles = last.unit_mark_cycles + last.unit_sweep_cycles;
    let cpu_avg = last.cpu_mem.avg_gbps(cpu_cycles);
    let unit_avg = last.unit_mem.avg_gbps(unit_cycles);
    let cpu_peak = last.cpu_mem.series_gbps.iter().copied().fold(0.0, f64::max);
    let unit_peak = last
        .unit_mem
        .series_gbps
        .iter()
        .copied()
        .fold(0.0, f64::max);

    let mut summary = Table::new(
        "Fig 16 summary",
        &["agent", "pause-ms", "avg-gbps", "peak-gbps"],
    );
    summary.row(vec![
        "rocket-cpu".into(),
        format!("{:.2}", cpu_cycles as f64 / 1e6),
        format!("{cpu_avg:.3}"),
        format!("{cpu_peak:.3}"),
    ]);
    summary.row(vec![
        "gc-unit".into(),
        format!("{:.2}", unit_cycles as f64 / 1e6),
        format!("{unit_avg:.3}"),
        format!("{unit_peak:.3}"),
    ]);

    let mut metrics = MetricsDoc::new("fig16");
    for (i, p) in results.iter().enumerate() {
        metrics.pause_phases(&format!("avrora.pause{i}"), p);
    }
    metrics.counter("cpu_bytes", last.cpu_mem.total_bytes);
    metrics.counter("unit_bytes", last.unit_mem.total_bytes);
    metrics.gauge("cpu_avg_gbps", cpu_avg);
    metrics.gauge("unit_avg_gbps", unit_avg);
    metrics.gauge("cpu_peak_gbps", cpu_peak);
    metrics.gauge("unit_peak_gbps", unit_peak);

    ExperimentOutput {
        id: "fig16",
        title: "Fig 16: memory bandwidth over time",
        tables: vec![summary, series],
        metrics,
        trace: last.unit_trace.clone(),
        notes: vec![format!(
            "Unit sustains {:.1}x the CPU's average bandwidth over the pause \
             (paper shows the unit's mark phase saturating far more of the DDR3 \
             bandwidth than the CPU's).",
            unit_avg / cpu_avg.max(1e-9)
        )],
    }
}
