//! `multiunit`: N traversal units marking N heaps over one DDR3.
//!
//! Where `multi` time-multiplexes one datapath across processes (§VII),
//! this experiment instantiates N *full* units — the paper's "the area
//! costs of our design are small enough that it could be replicated"
//! direction — and lets the scheduler tick them in lockstep against a
//! single shared memory system. Speedup over one unit is bounded by
//! DRAM bandwidth, not by the units.

use tracegc_heap::{Heap, LayoutKind, SocCtx};
use tracegc_hwgc::{GcUnitConfig, MarkEngine, TraversalUnit};
use tracegc_sim::sched::{Engine, Policy, Scheduler};
use tracegc_workloads::generate::generate_heap;
use tracegc_workloads::spec::by_name;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::MemKind;
use crate::table::{ms, Table};

const UNITS: [usize; 4] = [1, 2, 4, 8];

/// Marks N same-sized heaps with N units sharing one memory system.
pub fn run(opts: &Options) -> ExperimentOutput {
    let spec = by_name("xalan").expect("xalan exists").scaled(opts.scale);

    let mut table = Table::new(
        "multiunit: N traversal units sharing one DDR3 (xalan-sized heaps)",
        &["units", "wall-ms", "vs-1-unit-serial", "mean-unit-ms"],
    );
    let results = super::par_grid(opts, UNITS.to_vec(), |n| {
        // N independent processes: same generator, distinct seeds.
        let mut workloads: Vec<_> = (0..n as u64)
            .map(|i| {
                let mut s = spec;
                s.seed ^= i.wrapping_mul(0x9e37_79b9);
                generate_heap(&s, LayoutKind::Bidirectional)
            })
            .collect();
        let mut units: Vec<TraversalUnit> = workloads
            .iter_mut()
            .map(|w| TraversalUnit::new(GcUnitConfig::default(), &mut w.heap))
            .collect();
        for (u, w) in units.iter_mut().zip(&workloads) {
            u.begin(&w.heap, 0);
        }
        let mut mem = MemKind::ddr3_default().fresh();
        let report = {
            let heaps: Vec<&mut Heap> = workloads.iter_mut().map(|w| &mut w.heap).collect();
            let mut engines: Vec<MarkEngine> = units
                .iter_mut()
                .enumerate()
                .map(|(i, u)| MarkEngine::new(u, i))
                .collect();
            let mut ctx = SocCtx::new(&mut mem, heaps);
            let mut dyns: Vec<&mut dyn Engine<SocCtx>> = engines
                .iter_mut()
                .map(|e| e as &mut dyn Engine<SocCtx>)
                .collect();
            Scheduler::new(Policy::Lockstep).run(&mut dyns, &mut ctx, 0)
        };
        let per_unit: Vec<_> = units
            .iter()
            .zip(&report.ends)
            .map(|(u, &end)| u.result_at(0, end))
            .collect();
        (report.end, per_unit)
    });
    let solo_wall = results[0].0;
    let mut metrics = MetricsDoc::new("multiunit");
    for (n, (wall, per_unit)) in UNITS.into_iter().zip(results) {
        let mean: u64 =
            per_unit.iter().map(|r| r.cycles()).sum::<u64>() / per_unit.len().max(1) as u64;
        table.row(vec![
            format!("{n}"),
            ms(wall),
            format!("{:.2}x", (solo_wall * n as u64) as f64 / wall.max(1) as f64),
            ms(mean),
        ]);
        // Lockstep charges every unit's ledger cycle-for-cycle until
        // that unit finishes, so each per-unit phase is exact.
        for (i, r) in per_unit.iter().enumerate() {
            metrics.phase(&format!("units{n}.u{i}.mark"), r.cycles(), 1, r.stalls);
        }
        metrics.gauge(&format!("units{n}.wall_ms"), wall as f64 / 1e6);
        metrics.gauge(
            &format!("units{n}.vs_serial"),
            (solo_wall * n as u64) as f64 / wall.max(1) as f64,
        );
    }
    ExperimentOutput {
        id: "multiunit",
        title: "N traversal units on one shared memory system",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec!["A single traversal unit already extracts most of the DDR3 \
             channel's service capacity (the Fig. 16 observation), so \
             replicated units time-multiplex a saturated resource: wall time \
             scales ~N while aggregate vs-serial throughput stays near 1x. \
             The headroom is in the memory system (Fig. 17), not more units."
            .into()],
    }
}
