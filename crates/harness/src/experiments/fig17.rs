//! Fig. 17: potential performance with an idealized memory system.
//!
//! Replacing DDR3 with a 1-cycle / 8 GB/s latency–bandwidth pipe, the
//! paper's unit outperforms the CPU by 9.0× on mark (Fig. 17a) and
//! issues a request into the memory system every 8.66 cycles (Fig. 17b),
//! consuming at most 3.3 GB/s of data because many requests are smaller
//! than a cache line.

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_workloads::spec::DACAPO;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{geomean, DualRun, MemKind};
use crate::table::{ms, ratio, Table};

/// Paired runs on the 8 GB/s pipe.
pub fn run(opts: &Options) -> ExperimentOutput {
    let mut table = Table::new(
        "Fig 17a: mark/sweep with 1-cycle, 8 GB/s memory",
        &[
            "bench",
            "cpu-mark-ms",
            "unit-mark-ms",
            "mark-speedup",
            "sweep-speedup",
        ],
    );
    let mut issue = Table::new(
        "Fig 17b: unit request issue interval & data bandwidth (mark phase)",
        &[
            "bench",
            "cycles-between-reqs",
            "port-busy-%",
            "unit-avg-gbps",
        ],
    );
    let mut mark_speedups = Vec::new();
    let results = super::par_grid(opts, DACAPO.to_vec(), |spec| {
        let spec = spec.scaled(opts.scale);
        let mut run = DualRun::new(&spec, LayoutKind::Bidirectional, GcUnitConfig::default());
        (spec.name, run.run_pause(MemKind::pipe_8gbps()))
    });
    let mut metrics = MetricsDoc::new("fig17");
    for (name, p) in results {
        metrics.pause_phases(name, &p);
        mark_speedups.push(p.mark_speedup());
        table.row(vec![
            name.into(),
            ms(p.cpu_mark_cycles),
            ms(p.unit_mark_cycles),
            ratio(p.mark_speedup()),
            ratio(p.sweep_speedup()),
        ]);
        issue.row(vec![
            name.into(),
            format!("{:.2}", p.unit_mem.mean_issue_interval),
            format!(
                "{:.0}%",
                100.0 * p.unit_port_busy as f64 / p.unit_mark_cycles.max(1) as f64
            ),
            format!(
                "{:.2}",
                p.unit_mem
                    .avg_gbps(p.unit_mark_cycles + p.unit_sweep_cycles)
            ),
        ]);
    }
    table.row(vec![
        "geomean".into(),
        "-".into(),
        "-".into(),
        ratio(geomean(&mark_speedups)),
        "-".into(),
    ]);
    metrics.gauge("mark_speedup_geomean", geomean(&mark_speedups));
    ExperimentOutput {
        id: "fig17",
        title: "Fig 17: potential performance (latency-bandwidth pipe)",
        tables: vec![table, issue],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper: 9.0x average mark speedup; a request every 8.66 cycles (88% port \
             busy); data consumption peaks at 3.3 GB/s of the 8 GB/s because requests \
             are smaller than cache lines."
                .into(),
            "Paper: limited sweep speedup here is due to using only two sweepers \
             (see fig20)."
                .into(),
        ],
    }
}
