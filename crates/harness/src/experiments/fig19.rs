//! Fig. 19: mark-queue size trade-offs.
//!
//! "The mark queue is the largest SRAM of our unit and we assumed that
//! its size has a major impact on performance. [...] We were surprised
//! to find that the mark queue's impact on overall performance is
//! small" — spilling accounts for only ≈2% of memory requests at the
//! 1,024-entry baseline, and compression halves spill traffic.

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_workloads::spec::by_name;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{run_unit_gc_faulted, MemKind};
use crate::table::{ms, Table};

/// Mark-queue capacities matching the paper's x-axis (total KB
/// including `inQ`/`outQ`).
const SIZES_KB: [u64; 4] = [2, 4, 18, 130];

#[derive(Clone, Copy)]
struct Variant {
    label: &'static str,
    tracer_queue: usize,
    compress: bool,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        label: "TQ=128",
        tracer_queue: 128,
        compress: false,
    },
    Variant {
        label: "TQ=8",
        tracer_queue: 8,
        compress: false,
    },
    Variant {
        label: "compressed",
        tracer_queue: 128,
        compress: true,
    },
];

/// Sweeps the mark-queue size for each variant on avrora.
pub fn run(opts: &Options) -> ExperimentOutput {
    let spec = by_name("avrora").expect("avrora exists").scaled(opts.scale);
    let mut table = Table::new(
        "Fig 19: mark-queue size sweep (avrora)",
        &[
            "size-kb",
            "variant",
            "spill-writes",
            "spill-reads",
            "spill-%-of-reqs",
            "peak-spilled",
            "mark-ms",
        ],
    );
    // The 4x3 size-by-variant grid is embarrassingly parallel.
    let grid: Vec<(u64, Variant)> = SIZES_KB
        .iter()
        .flat_map(|&kb| VARIANTS.map(|v| (kb, v)))
        .collect();
    let rows = super::par_grid(opts, grid, |(kb, v)| {
        let side = 32usize;
        let entry = if v.compress { 4 } else { 8 };
        let total_entries = (kb * 1024 / entry) as usize;
        let main = total_entries.saturating_sub(2 * side).max(16);
        let cfg = GcUnitConfig {
            markq_entries: main,
            markq_side: side,
            tracer_queue: v.tracer_queue,
            compress: v.compress,
            ..GcUnitConfig::default()
        };
        let run = run_unit_gc_faulted(
            &spec,
            LayoutKind::Bidirectional,
            cfg,
            MemKind::ddr3_default(),
            false,
            opts.fault,
        );
        let q = run.report.mark.markq;
        let spill_reqs = q.spill_writes + q.spill_reads;
        let total_reqs = run.snapshot.total_requests;
        let row = vec![
            format!("{kb}"),
            v.label.into(),
            format!("{}", q.spill_writes),
            format!("{}", q.spill_reads),
            format!(
                "{:.1}%",
                100.0 * spill_reqs as f64 / total_reqs.max(1) as f64
            ),
            format!("{}", q.peak_spilled),
            ms(run.report.mark.cycles()),
        ];
        let phase = (
            format!("avrora.{kb}kb.{}.unit_mark", v.label),
            run.report.mark.cycles(),
            run.report.mark.stalls,
        );
        (
            row,
            phase,
            q.peak_occupancy,
            run.fault_stats,
            run.fallback.is_some(),
        )
    });
    let mut metrics = MetricsDoc::new("fig19");
    let mut peak_occupancy = 0u64;
    for (row, (name, cycles, stalls), peak, stats, fell_back) in rows {
        table.row(row);
        metrics.phase(&name, cycles, 1, stalls);
        peak_occupancy = peak_occupancy.max(peak);
        super::note_unit_faults(&mut metrics, &stats, fell_back);
    }
    metrics.counter("peak_markq_occupancy", peak_occupancy);
    ExperimentOutput {
        id: "fig19",
        title: "Fig 19: mark-queue size trade-offs",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper: spilling shrinks with queue size but accounts for only ~2% of \
             memory requests; compression reduces spilling by 2x; overall mark time \
             is almost flat (most traversal parallelism exists at the beginning; in \
             steady state enqueue and dequeue rates match)."
                .into(),
        ],
    }
}
