//! Fig. 1: the motivation experiments.
//!
//! * Fig. 1a — fraction of CPU time spent in GC pauses per benchmark
//!   (paper: up to 35%).
//! * Fig. 1b — CDF of lusearch query latencies at 10 QPS with
//!   coordinated omission: GC pauses create stragglers two orders of
//!   magnitude above the median.

use tracegc_heap::LayoutKind;
use tracegc_workloads::queries::{QueryLatencySim, QueryLatencySpec};
use tracegc_workloads::spec::{by_name, DACAPO};

use super::par_grid;
use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{run_cpu_gc, MemKind};
use crate::table::Table;

/// Fig. 1a: % CPU time in GC pauses.
pub fn run_1a(opts: &Options) -> ExperimentOutput {
    let mut table = Table::new(
        "Fig 1a: CPU time spent in GC pauses",
        &["bench", "gc-ms/pause", "mutator-ms/pause", "gc-%"],
    );
    let results = par_grid(opts, DACAPO.to_vec(), |spec| {
        let spec = spec.scaled(opts.scale);
        let run = run_cpu_gc(&spec, LayoutKind::Bidirectional, MemKind::ddr3_default());
        (
            spec.name,
            run.mark,
            run.sweep,
            spec.mutator_cycles_per_pause,
        )
    });
    let mut metrics = MetricsDoc::new("fig1a");
    for (name, mark, sweep, mutator_cycles) in results {
        let gc = (mark.cycles + sweep.cycles) as f64;
        let mutator = mutator_cycles as f64;
        let pct = 100.0 * gc / (gc + mutator);
        metrics.phase(&format!("{name}.cpu_mark"), mark.cycles, 1, mark.stalls);
        metrics.phase(&format!("{name}.cpu_sweep"), sweep.cycles, 1, sweep.stalls);
        table.row(vec![
            name.into(),
            format!("{:.2}", gc / 1e6),
            format!("{:.2}", mutator / 1e6),
            format!("{pct:.1}%"),
        ]);
    }
    ExperimentOutput {
        id: "fig1a",
        title: "Fig 1a: GC pause time fraction",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper: applications spend up to 35% of CPU time in GC pauses; lusearch \
             and xalan are the heaviest, avrora/luindex the lightest."
                .into(),
            "Mutator cycles per pause are a workload-model input (application work \
             is not simulated); GC cycles are measured on the CPU collector model."
                .into(),
        ],
    }
}

/// Fig. 1b: lusearch query-latency CDF with and without GC.
pub fn run_1b(opts: &Options) -> ExperimentOutput {
    // Measure real pause lengths for lusearch on the CPU collector.
    let spec = by_name("lusearch")
        .expect("lusearch exists")
        .scaled(opts.scale);
    let run = run_cpu_gc(&spec, LayoutKind::Bidirectional, MemKind::ddr3_default());
    let pause_us = (run.mark.cycles + run.sweep.cycles) / 1000; // 1 GHz: cycles->ns->us

    let sim = QueryLatencySim::new(QueryLatencySpec::default());
    let (mut with_gc, near) = sim.run(&[pause_us]);
    let (mut no_gc, _) = sim.run(&[]);

    let mut table = Table::new(
        "Fig 1b: lusearch query latency percentiles (ms, 10 QPS, coordinated omission)",
        &["percentile", "no-gc", "with-gc"],
    );
    for p in [50.0, 90.0, 99.0, 99.9, 100.0] {
        table.row(vec![
            format!("p{p}"),
            format!("{:.2}", no_gc.percentile(p).unwrap_or(0) as f64 / 1000.0),
            format!("{:.2}", with_gc.percentile(p).unwrap_or(0) as f64 / 1000.0),
        ]);
    }

    let mut cdf = Table::new(
        "Fig 1b CDF: latency-ms vs fraction (with GC)",
        &["latency-ms", "cdf"],
    );
    for (v, f) in with_gc.cdf().into_iter().step_by(25) {
        cdf.row(vec![format!("{:.2}", v as f64 / 1000.0), format!("{f:.4}")]);
    }

    let affected = near.iter().filter(|&&b| b).count();
    let mut metrics = MetricsDoc::new("fig1b");
    metrics.phase("lusearch.cpu_mark", run.mark.cycles, 1, run.mark.stalls);
    metrics.phase("lusearch.cpu_sweep", run.sweep.cycles, 1, run.sweep.stalls);
    metrics.counter("queries_affected", affected as u64);
    metrics.counter("queries_recorded", near.len() as u64);
    metrics.gauge("pause_ms", pause_us as f64 / 1000.0);
    ExperimentOutput {
        id: "fig1b",
        title: "Fig 1b: query latency CDF under GC",
        tables: vec![table, cdf],
        metrics,
        trace: Vec::new(),
        notes: vec![
            format!(
                "Measured lusearch pause: {:.2} ms; {} of {} recorded queries were \
                 delayed by or queued behind a pause.",
                pause_us as f64 / 1000.0,
                affected,
                near.len()
            ),
            "Paper: the long tail (log scale) is the result of GC; stragglers are two \
             orders of magnitude longer than the average request."
                .into(),
        ],
    }
}
