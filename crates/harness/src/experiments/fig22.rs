//! Fig. 22: area estimates.
//!
//! "Our GC unit is 18.5% the size of the CPU, most of which is taken by
//! the mark queue. This is comparable to the area of 64 KB of SRAM."

use tracegc_hwgc::GcUnitConfig;
use tracegc_model::area::{gc_unit_area, l2_area, rocket_core_area, SRAM_MM2_PER_KB};

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::table::Table;

/// Area breakdown tables for the core, the L2 and the unit.
pub fn run(_opts: &Options) -> ExperimentOutput {
    let core = rocket_core_area();
    let unit = gc_unit_area(&GcUnitConfig::default());

    let mut totals = Table::new("Fig 22a: total area (mm^2)", &["block", "mm2"]);
    totals.row(vec!["rocket-core".into(), format!("{:.3}", core.total())]);
    totals.row(vec!["l2-cache".into(), format!("{:.3}", l2_area())]);
    totals.row(vec!["gc-unit".into(), format!("{:.3}", unit.total())]);

    let mut core_t = Table::new(
        "Fig 22b: Rocket CPU breakdown (mm^2)",
        &["component", "mm2"],
    );
    for (name, mm2) in &core.components {
        core_t.row(vec![name.clone(), format!("{mm2:.3}")]);
    }

    let mut unit_t = Table::new("Fig 22c: GC unit breakdown (mm^2)", &["component", "mm2"]);
    for (name, mm2) in &unit.components {
        unit_t.row(vec![name.clone(), format!("{mm2:.3}")]);
    }

    let ratio = unit.total() / core.total();
    let sram_equiv_kb = unit.total() / SRAM_MM2_PER_KB;
    let mut metrics = MetricsDoc::new("fig22");
    metrics.gauge("core_mm2", core.total());
    metrics.gauge("unit_mm2", unit.total());
    metrics.gauge("unit_core_ratio", ratio);
    metrics.gauge("sram_equiv_kb", sram_equiv_kb);
    ExperimentOutput {
        id: "fig22",
        title: "Fig 22: area",
        tables: vec![totals, core_t, unit_t],
        metrics,
        trace: Vec::new(),
        notes: vec![
            format!(
                "Unit / core = {:.1}% (paper: 18.5%); unit is equivalent to {:.0} KB \
                 of SRAM (paper: 64 KB); largest unit block: {}.",
                100.0 * ratio,
                sram_equiv_kb,
                unit.largest()
            ),
            "Estimated with SAED EDK 32/28-style constants, as in the paper's \
             Design Compiler flow."
                .into(),
        ],
    }
}
