//! Table I: the RocketChip/memory configuration the experiments model.

use tracegc_cpu::CpuConfig;
use tracegc_mem::ddr3::Ddr3Config;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::table::Table;

/// Prints the modelled SoC configuration (paper Table I).
pub fn run(_opts: &Options) -> ExperimentOutput {
    let cpu = CpuConfig::default();
    let ddr = Ddr3Config::default();

    let mut proc = Table::new(
        "Processor Design (Rocket In-Order CPU @ 1 GHz)",
        &["parameter", "value"],
    );
    proc.row(vec![
        "ITLB/DTLB reach".into(),
        format!(
            "{} KiB ({} entries each)",
            cpu.tlb.l1_entries * 4,
            cpu.tlb.l1_entries
        ),
    ]);
    proc.row(vec![
        "L1 caches".into(),
        format!(
            "{} KiB DCache ({}-way), {}-cycle hits",
            cpu.l1d.size_bytes / 1024,
            cpu.l1d.ways,
            cpu.l1d.hit_latency
        ),
    ]);
    proc.row(vec![
        "L2 cache".into(),
        format!(
            "{} KiB ({}-way set-associative)",
            cpu.l2.size_bytes / 1024,
            cpu.l2.ways
        ),
    ]);

    let mut mem = Table::new("Memory Model (DDR3-2000)", &["parameter", "value"]);
    mem.row(vec![
        "Memory access scheduler".into(),
        format!(
            "{:?} ({}/{} req. in flight)",
            ddr.scheduler, ddr.max_reads, ddr.max_writes
        ),
    ]);
    mem.row(vec!["Page policy".into(), format!("{:?}", ddr.page_policy)]);
    mem.row(vec![
        "DRAM latencies (ns)".into(),
        format!("{}-{}-{}-{}", ddr.t_cas, ddr.t_rcd, ddr.t_rp, ddr.t_ras),
    ]);
    mem.row(vec!["Banks".into(), format!("{}", ddr.banks)]);

    let mut metrics = MetricsDoc::new("table1");
    metrics.gauge("l1d_kib", cpu.l1d.size_bytes as f64 / 1024.0);
    metrics.gauge("l2_kib", cpu.l2.size_bytes as f64 / 1024.0);
    metrics.counter("ddr_banks", ddr.banks as u64);

    ExperimentOutput {
        id: "table1",
        title: "Table I: RocketChip configuration",
        tables: vec![proc, mem],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Matches the paper's Table I: 16 KiB L1s, 256 KiB 8-way L2, FR-FCFS \
             MAS with 16/8 outstanding requests, open-page policy, 14-14-14-47."
                .into(),
        ],
    }
}
