//! Fig. 21: the mark-bit cache.
//!
//! * Fig. 21a — a small number of objects account for ~10% of all mark
//!   accesses (≈56 objects in the paper's luindex run).
//! * Fig. 21b — a small LRU cache of recently marked references filters
//!   those duplicates before they reach memory.

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_workloads::spec::by_name;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{run_unit_gc_faulted, MemKind};
use crate::table::Table;

const CACHE_SIZES: [usize; 5] = [0, 64, 105, 128, 256];

/// Access-frequency histogram and cache-size sweep on luindex.
pub fn run(opts: &Options) -> ExperimentOutput {
    let spec = by_name("luindex")
        .expect("luindex exists")
        .scaled(opts.scale);

    // Fig. 21a: object-access-frequency distribution from one mark pass.
    let mut run = run_unit_gc_faulted(
        &spec,
        LayoutKind::Bidirectional,
        GcUnitConfig {
            trace: opts.trace,
            ..GcUnitConfig::default()
        },
        MemKind::ddr3_default(),
        false,
        opts.fault,
    );
    let counts = run.unit.traversal().access_counts();
    let mut freq: Vec<u32> = counts.values().copied().collect();
    freq.sort_unstable_by(|a, b| b.cmp(a));
    let total_accesses: u64 = freq.iter().map(|&c| c as u64).sum();
    let top56: u64 = freq.iter().take(56).map(|&c| c as u64).sum();

    let mut hist = Table::new(
        "Fig 21a: number of objects per mark-access count (log2 bins)",
        &["accesses", "objects"],
    );
    let mut bins = std::collections::BTreeMap::new();
    for &c in &freq {
        let bin = 1u32 << (31 - c.max(1).leading_zeros());
        *bins.entry(bin).or_insert(0u64) += 1;
    }
    for (bin, n) in bins {
        hist.row(vec![format!(">={bin}"), format!("{n}")]);
    }

    // Fig. 21b: cache-size sweep.
    let mut sweep = Table::new(
        "Fig 21b: mark-bit cache size vs marker memory traffic (luindex)",
        &[
            "cache-entries",
            "filtered-%",
            "mark-reqs-per-ref",
            "mark-ms",
        ],
    );
    let rows = super::par_grid(opts, CACHE_SIZES.to_vec(), |size| {
        let cfg = GcUnitConfig {
            markbit_cache: size,
            ..GcUnitConfig::default()
        };
        let run = run_unit_gc_faulted(
            &spec,
            LayoutKind::Bidirectional,
            cfg,
            MemKind::ddr3_default(),
            false,
            opts.fault,
        );
        let mark = &run.report.mark;
        let attempts = mark.objects_marked + mark.already_marked + mark.filtered;
        let reqs = mark.objects_marked + mark.already_marked; // AMOs that reached memory
        let row = vec![
            format!("{size}"),
            format!(
                "{:.1}%",
                100.0 * mark.filtered as f64 / attempts.max(1) as f64
            ),
            format!("{:.3}", reqs as f64 / attempts.max(1) as f64),
            crate::table::ms(mark.cycles()),
        ];
        (
            row,
            mark.cycles(),
            mark.stalls,
            run.fault_stats,
            run.fallback.is_some(),
        )
    });
    let mut metrics = MetricsDoc::new("fig21");
    metrics.phase(
        "luindex.hist_run.unit_mark",
        run.report.mark.cycles(),
        1,
        run.report.mark.stalls,
    );
    super::note_unit_faults(&mut metrics, &run.fault_stats, run.fallback.is_some());
    metrics.counter("mark_accesses", total_accesses);
    for (&size, (row, cycles, stalls, stats, fell_back)) in CACHE_SIZES.iter().zip(rows) {
        sweep.row(row);
        metrics.phase(&format!("luindex.cache{size}.unit_mark"), cycles, 1, stalls);
        super::note_unit_faults(&mut metrics, &stats, fell_back);
    }

    ExperimentOutput {
        id: "fig21",
        title: "Fig 21: mark-bit cache",
        tables: vec![hist, sweep],
        metrics,
        trace: run.unit.take_trace(),
        notes: vec![
            format!(
                "Top-56 objects receive {:.1}% of all {} mark accesses (paper: ~10%).",
                100.0 * top56 as f64 / total_accesses.max(1) as f64,
                total_accesses
            ),
            "Paper: the largest gain per area comes from a small cache (<64 \
             entries); overall mark time is not substantially affected at DDR3 \
             bandwidth."
                .into(),
        ],
    }
}
