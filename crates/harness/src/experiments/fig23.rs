//! Fig. 23: power and energy.
//!
//! "Due to its higher bandwidth, the GC Unit's DRAM power is much
//! higher, but the overall energy is still lower" — by ~14.5% in the
//! paper's runs.

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_model::{Agent, EnergyModel};
use tracegc_workloads::spec::DACAPO;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{DualRun, MemKind};
use crate::table::Table;

/// Energy/power comparison per benchmark.
pub fn run(opts: &Options) -> ExperimentOutput {
    let model = EnergyModel::default();
    let mut power = Table::new(
        "Fig 23 (top): average power during GC (mW)",
        &["agent", "compute-mw", "dram-mw (xalan)", "total-mw (xalan)"],
    );
    let mut energy = Table::new(
        "Fig 23 (bottom): GC energy per pause (mJ)",
        &[
            "bench",
            "cpu-mj",
            "unit-mj",
            "unit-dram-mw",
            "cpu-dram-mw",
            "savings",
        ],
    );
    let mut savings = Vec::new();
    let mut xalan_power: Option<(f64, f64, f64, f64)> = None;
    let pauses = super::par_grid(opts, DACAPO.to_vec(), |spec| {
        let spec = spec.scaled(opts.scale);
        let mut run = DualRun::new(&spec, LayoutKind::Bidirectional, GcUnitConfig::default());
        (spec.name, run.run_pause(MemKind::ddr3_default()))
    });
    let mut metrics = MetricsDoc::new("fig23");
    for (name, p) in pauses {
        metrics.pause_phases(name, &p);
        let cpu_cycles = p.cpu_mark_cycles + p.cpu_sweep_cycles;
        let unit_cycles = p.unit_mark_cycles + p.unit_sweep_cycles;
        let cpu_e = model.pause_energy(
            Agent::RocketCore,
            cpu_cycles,
            p.cpu_mem.total_bytes,
            p.cpu_mem.total_requests,
            p.cpu_mem.activates.unwrap_or(0),
        );
        let unit_e = model.pause_energy(
            Agent::GcUnit,
            unit_cycles,
            p.unit_mem.total_bytes,
            p.unit_mem.total_requests,
            p.unit_mem.activates.unwrap_or(0),
        );
        let saving = 100.0 * (1.0 - unit_e.total_mj() / cpu_e.total_mj().max(1e-12));
        savings.push(saving);
        if name == "xalan" {
            xalan_power = Some((
                cpu_e.dram_power_mw,
                cpu_e.total_power_mw(),
                unit_e.dram_power_mw,
                unit_e.total_power_mw(),
            ));
        }
        energy.row(vec![
            name.into(),
            format!("{:.3}", cpu_e.total_mj()),
            format!("{:.3}", unit_e.total_mj()),
            format!("{:.0}", unit_e.dram_power_mw),
            format!("{:.0}", cpu_e.dram_power_mw),
            format!("{saving:.1}%"),
        ]);
    }
    let (cpu_dram, cpu_total, unit_dram, unit_total) = xalan_power.expect("xalan is in the suite");
    power.row(vec![
        "rocket-cpu".into(),
        format!("{:.0}", EnergyModel::default().core_active_mw),
        format!("{cpu_dram:.0}"),
        format!("{cpu_total:.0}"),
    ]);
    power.row(vec![
        "gc-unit".into(),
        format!("{:.0}", EnergyModel::default().unit_active_mw),
        format!("{unit_dram:.0}"),
        format!("{unit_total:.0}"),
    ]);
    let mean_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    metrics.gauge("mean_energy_saving_pct", mean_saving);
    ExperimentOutput {
        id: "fig23",
        title: "Fig 23: power and energy",
        tables: vec![power, energy],
        metrics,
        trace: Vec::new(),
        notes: vec![
            format!(
                "Mean energy saving: {mean_saving:.1}% (paper: 14.5%). The unit's \
                 DRAM power exceeds the CPU's because it sustains more bandwidth."
            ),
            "Methodology: measured cycles/bytes/activates through a Micron-style \
             DDR3 power model + DC-style compute power constants (as in §VI-C)."
                .into(),
        ],
    }
}
