//! `fleet`: multi-tenant GC serving at fleet scale (ROADMAP item 4).
//!
//! Not a paper figure — the production version of §VII's multi-process
//! story. N tenant heaps (streamed shapes: forest, lru-churn, sessions,
//! social-graph, actor-mesh) issue GC requests through a seeded
//! open-loop arrival process into a bounded admission queue served by K
//! traversal units over shared DDR3 channels.
//!
//! Two phases:
//!
//! 1. **Measure** (parallel over tenants via the partition pool): each
//!    tenant's mark is run cycle-exactly three times — clean at full
//!    bandwidth (the SLO baseline), with the per-tenant seeded fault
//!    injection plus a request timeout (`mark_budget` = 4× the clean
//!    service, tripping [`TrapKind::RequestTimeout`] through the
//!    trap/fallback path), and under the §VII issue throttle (the
//!    bandwidth-partitioning policy's service time). Every degraded
//!    tenant is differentially checked against the reachability oracle
//!    inside `run_faulted_mark_stream`.
//! 2. **Replay** ([`tracegc_sim::fleet`]): the measured service times
//!    drive a deterministic queueing simulation per (policy, offered
//!    load) grid point, sweeping load past saturation.
//!
//! Everything is byte-identical across `--jobs`, `--par-engines` and
//! both pacings; `tests/fleet_determinism.rs` pins that cross.
//!
//! [`TrapKind::RequestTimeout`]: tracegc_hwgc::TrapKind::RequestTimeout

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_sim::fleet::{run_fleet, FleetConfig, FleetPolicy, FleetStats, TenantProfile};
use tracegc_sim::{Cycle, FaultConfig, StallAccounting};
use tracegc_workloads::{StreamShape, StreamSpec};

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{run_faulted_mark_stream, FaultedMarkRun, MarkOutcome, MemKind};
use crate::table::Table;

/// Traversal units serving the fleet queue.
const UNITS: usize = 4;
/// Shared DDR3 channels the units are spread over.
const CHANNELS: usize = 2;
/// §VII issue-throttle period for the partitioned policy: with
/// `UNITS / CHANNELS` units per channel, each unit issues at most every
/// that many cycles, leaving the channel's residual bandwidth free.
const THROTTLE: u64 = (UNITS / CHANNELS) as u64;
/// Offered loads swept (aggregate arrival rate / aggregate service
/// rate); past 1.0 the queue saturates and admission control engages.
pub const LOADS: [f64; 4] = [0.25, 0.6, 1.0, 1.5];
/// The admission/scheduling policies compared at every load.
pub const POLICIES: [FleetPolicy; 3] = [
    FleetPolicy::Fifo,
    FleetPolicy::SmallestFirst,
    FleetPolicy::Partitioned,
];
/// A tenant's mark-latency SLO (and its request-timeout budget): this
/// multiple of its own clean full-bandwidth service time.
const SLO_FACTOR: u64 = 4;

/// The tenant population: shapes cycle through every streamed
/// generator, live-set targets vary so smallest-heap-first has real
/// choices to make.
fn tenant_specs(opts: &Options) -> Vec<StreamSpec> {
    let shapes: [(&'static str, StreamShape); 5] = [
        (
            "dacapo-mix",
            StreamShape::Forest {
                mean_refs: 2.2,
                array_fraction: 0.1,
                popularity_s: 1.1,
                hot_fraction: 0.1,
                garbage_factor: 0.5,
            },
        ),
        ("lru-churn", StreamShape::LruCache { churn_factor: 2.0 }),
        (
            "sessions",
            StreamShape::RequestSession {
                session_objects: 24,
                survivor_fraction: 0.12,
            },
        ),
        (
            "social-graph",
            StreamShape::SocialGraph {
                supernodes: 4,
                supernode_degree: 512,
            },
        ),
        (
            "actor-mesh",
            StreamShape::ActorMesh {
                peers: 3,
                mailbox_depth: 4,
                churn_messages: 6.0,
            },
        ),
    ];
    let n_tenants = ((64.0 * opts.scale) as usize).max(8);
    (0..n_tenants)
        .map(|i| {
            let (name, shape) = shapes[i % shapes.len()];
            StreamSpec {
                name,
                shape,
                live_objects: 1200 + (i % 4) * 600,
                window: 512,
                hot_set: 16,
                roots: 32,
                seed: 0xF1EE_0000 + i as u64,
            }
            .scaled(opts.scale)
        })
        .collect()
}

/// The unit configuration for a tenant's measured marks: the paper
/// baseline plus a mark-bit cache and a spill region provisioned so
/// only *injected* faults (never sizing) can trap.
fn unit_cfg(live_objects: usize) -> GcUnitConfig {
    GcUnitConfig {
        markbit_cache: 256,
        spill_bytes: (live_objects as u64 * 16)
            .next_multiple_of(1 << 20)
            .max(4 << 20),
        ..GcUnitConfig::default()
    }
}

/// Derives tenant `i`'s fault stream from the sweep-wide config: same
/// rates, decorrelated seed. `None`/inactive stays inactive, keeping
/// the whole experiment byte-identical to a fault-free run.
fn tenant_fault(base: Option<FaultConfig>, tenant: usize) -> Option<FaultConfig> {
    base.map(|f| FaultConfig {
        seed: f
            .seed
            .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ..f
    })
}

/// One tenant's three measured marks.
struct TenantMeasure {
    clean: FaultedMarkRun,
    faulted: FaultedMarkRun,
    throttled: FaultedMarkRun,
}

fn measure_tenant(spec: &StreamSpec, fault: Option<FaultConfig>) -> TenantMeasure {
    let cfg = unit_cfg(spec.live_objects);
    let layout = LayoutKind::Bidirectional;
    let mem = MemKind::ddr3_default();
    let clean = run_faulted_mark_stream(spec, layout, cfg, mem, None);
    let budget = clean.total_cycles() * SLO_FACTOR;
    let faulted = run_faulted_mark_stream(
        spec,
        layout,
        GcUnitConfig {
            mark_budget: budget,
            ..cfg
        },
        mem,
        fault,
    );
    let throttled = run_faulted_mark_stream(
        spec,
        layout,
        GcUnitConfig {
            min_issue_interval: THROTTLE,
            ..cfg
        },
        mem,
        None,
    );
    TenantMeasure {
        clean,
        faulted,
        throttled,
    }
}

/// Percentile over queueing observations (nearest-rank on the sorted
/// sample; 0 for an empty set).
fn percentile(sorted: &[Cycle], p: f64) -> Cycle {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Offered-load sweep over admission policies on measured tenants.
pub fn run(opts: &Options) -> ExperimentOutput {
    let specs = tenant_specs(opts);
    let n_tenants = specs.len();
    let requests_per_tenant = opts.pauses.max(1);

    // Phase 1: measure every tenant (independent grid points on the
    // partition pool; the per-tenant seed never depends on worker
    // order).
    let measured = super::par_grid(opts, (0..n_tenants).collect(), |i| {
        measure_tenant(&specs[i], tenant_fault(opts.fault, i))
    });

    let mut tenant_table = Table::new(
        "fleet tenants: measured per-tenant mark service",
        &[
            "tenant",
            "shape",
            "live-objects",
            "clean-cycles",
            "throttled-cycles",
            "slo-budget",
            "outcome",
        ],
    );
    let mut metrics = MetricsDoc::new("fleet");
    let (mut degraded, mut failed) = (0u64, 0u64);
    let mut profiles = Vec::with_capacity(n_tenants);
    let (mut unit_stalls, mut fb_stalls) = (StallAccounting::default(), StallAccounting::default());
    for (i, (spec, m)) in specs.iter().zip(&measured).enumerate() {
        let outcome = match &m.faulted.outcome {
            MarkOutcome::Clean => "clean".to_string(),
            MarkOutcome::Fallback(fb) => {
                degraded += 1;
                format!("fallback:{:?}", fb.trap.kind)
            }
            MarkOutcome::Failed(e) => {
                failed += 1;
                format!("failed:{e}")
            }
        };
        // The replayed service: what the tenant's mark actually cost,
        // fallback included when it degraded. A (never-observed)
        // failed measurement falls back to the clean timing so the
        // replay still covers the tenant.
        let service = match &m.faulted.outcome {
            MarkOutcome::Failed(_) => m.clean.total_cycles(),
            _ => m.faulted.total_cycles(),
        };
        profiles.push(TenantProfile {
            shape: spec.name,
            live_objects: m.clean.objects_marked,
            service_cycles: service,
            throttled_cycles: m.throttled.total_cycles(),
            degraded: matches!(m.faulted.outcome, MarkOutcome::Fallback(_)),
        });
        tenant_table.row(vec![
            format!("{i}"),
            spec.name.into(),
            format!("{}", m.clean.objects_marked),
            format!("{}", m.clean.total_cycles()),
            format!("{}", m.throttled.total_cycles()),
            format!("{}", m.clean.total_cycles() * SLO_FACTOR),
            outcome,
        ]);
        for r in [&m.clean, &m.faulted, &m.throttled] {
            metrics.note_faults(&r.stats);
            unit_stalls.merge(&r.unit_stalls);
            fb_stalls.merge(&r.fallback_stalls);
        }
    }
    metrics.phase("tenant_mark", unit_stalls.total(), 1, unit_stalls);
    if fb_stalls.total() > 0 {
        metrics.phase("sw_fallback", fb_stalls.total(), 1, fb_stalls);
    }

    // Phase 2: replay the measured fleet over the (policy, load) grid.
    // The per-tenant arrival period is set so the aggregate offered
    // load (arrival rate x mean service / units) hits each target rho;
    // the same seed per load keeps arrivals identical across policies.
    let mean_service = profiles
        .iter()
        .map(|p| p.service_cycles as f64)
        .sum::<f64>()
        / n_tenants.max(1) as f64;
    let grid: Vec<(FleetPolicy, f64)> = POLICIES
        .iter()
        .flat_map(|&p| LOADS.map(move |rho| (p, rho)))
        .collect();
    let sweeps: Vec<FleetStats> = super::par_grid(opts, grid.clone(), |(policy, rho)| {
        let cfg = FleetConfig {
            units: UNITS,
            channels: CHANNELS,
            policy,
            requests_per_tenant,
            mean_period: ((n_tenants as f64 * mean_service) / (rho * UNITS as f64)).max(1.0)
                as Cycle,
            queue_cap: n_tenants,
            seed: 0xF1EE_70AD,
        };
        run_fleet(&cfg, &profiles).expect("fleet replay cannot deadlock")
    });

    let mut sweep_table = Table::new(
        "fleet sweep: policy x offered load (queueing delay and sojourn in cycles)",
        &[
            "policy",
            "load",
            "requests",
            "completed",
            "rejected",
            "util",
            "qdelay-p50",
            "qdelay-p99",
            "sojourn-p50",
            "sojourn-p99",
            "sojourn-max",
            "slo-viol-%",
            "degraded-%",
            "failed-%",
        ],
    );
    let total_requests = (n_tenants * requests_per_tenant) as u64;
    let tenant_pct =
        |n: u64| -> String { format!("{:.1}%", 100.0 * n as f64 / n_tenants.max(1) as f64) };
    let (mut completed_total, mut rejected_total) = (0u64, 0u64);
    for ((policy, rho), stats) in grid.iter().zip(&sweeps) {
        let mut qdelay: Vec<Cycle> = stats.completions.iter().map(|c| c.queue_delay()).collect();
        let mut sojourn: Vec<Cycle> = stats.completions.iter().map(|c| c.sojourn()).collect();
        qdelay.sort_unstable();
        sojourn.sort_unstable();
        let violations = stats
            .completions
            .iter()
            .filter(|c| c.sojourn() > profiles[c.tenant].service_cycles.max(1) * SLO_FACTOR)
            .count();
        let util = stats.utilization(UNITS);
        sweep_table.row(vec![
            policy.name().into(),
            format!("{rho:.2}"),
            format!("{total_requests}"),
            format!("{}", stats.completions.len()),
            format!("{}", stats.rejected),
            format!("{util:.3}"),
            format!("{}", percentile(&qdelay, 50.0)),
            format!("{}", percentile(&qdelay, 99.0)),
            format!("{}", percentile(&sojourn, 50.0)),
            format!("{}", percentile(&sojourn, 99.0)),
            sojourn.last().map_or("0".into(), |m| format!("{m}")),
            format!(
                "{:.1}%",
                100.0 * violations as f64 / stats.completions.len().max(1) as f64
            ),
            tenant_pct(degraded),
            tenant_pct(failed),
        ]);
        let key = format!("{}_rho{}", policy.name(), (rho * 100.0) as u64);
        metrics.gauge(&format!("{key}.utilization"), util);
        metrics.gauge(
            &format!("{key}.qdelay_p99"),
            percentile(&qdelay, 99.0) as f64,
        );
        metrics.gauge(
            &format!("{key}.slo_violation_rate"),
            violations as f64 / stats.completions.len().max(1) as f64,
        );
        completed_total += stats.completions.len() as u64;
        rejected_total += stats.rejected;
    }
    metrics.gauge(
        "degraded_tenant_fraction",
        degraded as f64 / n_tenants.max(1) as f64,
    );
    metrics.gauge(
        "failed_tenant_fraction",
        failed as f64 / n_tenants.max(1) as f64,
    );
    metrics.counter("tenants", n_tenants as u64);
    metrics.counter("grid_points", grid.len() as u64);
    metrics.counter("requests_completed", completed_total);
    metrics.counter("requests_rejected", rejected_total);
    // Run-outcome counters drive the CLI exit code: one tick per
    // degraded/failed *tenant* (only nonzero values are emitted, so a
    // clean fleet keeps an empty faults section).
    for (name, v) in [("fallback_runs", degraded), ("failed_runs", failed)] {
        if v > 0 {
            metrics.fault(name, v);
        }
    }

    ExperimentOutput {
        id: "fleet",
        title: "Fleet: multi-tenant GC serving with SLOs and admission control",
        tables: vec![tenant_table, sweep_table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            format!(
                "{n_tenants} tenants x {requests_per_tenant} requests on {UNITS} units / \
                 {CHANNELS} DDR3 channels; {degraded} tenant(s) degraded to the software \
                 fallback, {failed} failed.",
            ),
            "Service times are measured cycle-exact per tenant (fallback included when \
             degraded) and replayed through the deterministic queueing layer; every \
             degraded tenant's mark was differentially checked against reachability."
                .into(),
            format!(
                "SLO and request-timeout budget are {SLO_FACTOR}x each tenant's clean \
                 full-bandwidth mark; 'partitioned' replays the section-VII throttled \
                 service (period {THROTTLE}) with no cross-tenant contention factor."
            ),
        ],
    }
}
