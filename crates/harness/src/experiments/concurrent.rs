//! `conc`: concurrent collection (§IV-D) — the traversal unit marks
//! while the mutator keeps running, with write barriers feeding the
//! mark queue.

use tracegc_heap::LayoutKind;
use tracegc_hwgc::concurrent::{run_concurrent_mark, MutatorConfig};
use tracegc_hwgc::{GcUnitConfig, TraversalUnit};
use tracegc_workloads::generate::generate_heap;
use tracegc_workloads::spec::by_name;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::MemKind;
use crate::table::{ms, Table};

/// Compares stop-the-world marking against SATB concurrent marking at
/// several mutator intensities.
pub fn run(opts: &Options) -> ExperimentOutput {
    let spec = by_name("lusearch")
        .expect("lusearch exists")
        .scaled(opts.scale);

    let mut table = Table::new(
        "conc: SATB concurrent marking vs stop-the-world (lusearch)",
        &[
            "mode",
            "mark-ms",
            "mutator-ops",
            "write-barriers",
            "allocated-black",
            "barrier-kcycles",
        ],
    );
    // Grid points: the stop-the-world baseline (None) and each mutator
    // intensity (Some(..)); every one rebuilds the heap from the seed.
    let modes: Vec<Option<(&str, u64, f64)>> = vec![
        None,
        Some(("concurrent/light", 200, 0.1)),
        Some(("concurrent/medium", 60, 0.2)),
        Some(("concurrent/heavy", 25, 0.4)),
    ];
    let rows = super::par_grid(opts, modes, |mode| {
        let mut workload = generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem = MemKind::ddr3_default().fresh();
        let mut unit = TraversalUnit::new(GcUnitConfig::default(), &mut workload.heap);
        match mode {
            // Stop-the-world baseline.
            None => {
                let stw = unit.run_mark(&mut workload.heap, &mut mem, 0);
                let row = vec![
                    "stop-the-world".into(),
                    ms(stw.cycles()),
                    "0".into(),
                    "0".into(),
                    "0".into(),
                    "0".into(),
                ];
                (row, ("stw".to_string(), stw.cycles(), stw.stalls), 0, 0)
            }
            Some((label, cycles_per_op, write_fraction)) => {
                let report = run_concurrent_mark(
                    &mut unit,
                    &mut workload.heap,
                    &mut mem,
                    MutatorConfig {
                        cycles_per_op,
                        write_fraction,
                        ..MutatorConfig::default()
                    },
                    0,
                );
                let row = vec![
                    label.into(),
                    ms(report.traversal.cycles()),
                    format!("{}", report.mutator_ops),
                    format!("{}", report.write_barriers),
                    format!("{}", report.allocated_during_gc),
                    format!("{}", report.mutator_barrier_cycles / 1000),
                ];
                let key = label.replace("concurrent/", "conc_");
                (
                    row,
                    (key, report.traversal.cycles(), report.traversal.stalls),
                    report.mutator_ops,
                    report.write_barriers,
                )
            }
        }
    });
    // Every row — STW and concurrent alike — now runs the unit under the
    // scheduler, which charges the per-pass ledger cycle-for-cycle, so
    // each mode gets an exact phase entry.
    let mut metrics = MetricsDoc::new("conc");
    for (row, (key, cycles, stalls), mutator_ops, write_barriers) in rows {
        table.row(row);
        metrics.phase(&format!("lusearch.{key}.unit_mark"), cycles, 1, stalls);
        metrics.counter("mutator_ops", mutator_ops);
        metrics.counter("write_barriers", write_barriers);
    }
    ExperimentOutput {
        id: "conc",
        title: "Concurrent collection (paper SIV-D)",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "The mark phase lengthens with mutator intensity (barrier-injected \
             references add work), but the application never pauses; the SATB \
             invariant (nothing live at the snapshot is lost, new objects are \
             allocated black) is asserted by the integration tests."
                .into(),
        ],
    }
}

/// `multi`: one unit collecting several processes simultaneously
/// (§VII "Supporting multiple applications").
pub fn run_multi(opts: &Options) -> ExperimentOutput {
    use tracegc_hwgc::multiproc::{run_multiprocess_mark, ProcessContext};

    let spec = by_name("avrora").expect("avrora exists").scaled(opts.scale);
    let make_context = |seed_offset: u64| {
        let mut s = spec;
        s.seed ^= seed_offset;
        let mut workload = generate_heap(&s, LayoutKind::Bidirectional);
        let unit = TraversalUnit::new(GcUnitConfig::default(), &mut workload.heap);
        ProcessContext {
            unit,
            heap: workload.heap,
        }
    };

    let mut table = Table::new(
        "multi: one unit collecting N processes (avrora-sized heaps)",
        &["processes", "wall-ms", "vs-serial", "mean-per-process-ms"],
    );
    let counts = vec![1usize, 2, 4];
    let results = super::par_grid(opts, counts.clone(), |n| {
        let mut procs: Vec<ProcessContext> = (0..n as u64).map(make_context).collect();
        let mut mem = MemKind::ddr3_default().fresh();
        let report = run_multiprocess_mark(&mut procs, &mut mem, 0);
        let mean: u64 = report.per_process.iter().map(|r| r.cycles()).sum::<u64>() / n as u64;
        (report.total_cycles(0), mean, report.per_process)
    });
    let solo_wall = results[0].0;
    // The round-robin scheduler charges each process's ledger on every
    // cycle it is live (its own bottleneck when served, PortBusy when
    // the datapath serves a sibling), so per-process phases are exact.
    let mut metrics = MetricsDoc::new("multi");
    for (n, (wall, mean, per_process)) in counts.into_iter().zip(results) {
        for (i, r) in per_process.iter().enumerate() {
            metrics.phase(&format!("{n}proc.p{i}.mark"), r.cycles(), 1, r.stalls);
        }
        metrics.gauge(&format!("wall_ms_{n}proc"), wall as f64 / 1e6);
        metrics.gauge(&format!("mean_per_process_ms_{n}proc"), mean as f64 / 1e6);
        table.row(vec![
            format!("{n}"),
            ms(wall),
            format!("{:.2}x", (solo_wall * n as u64) as f64 / wall.max(1) as f64),
            ms(mean),
        ]);
    }
    ExperimentOutput {
        id: "multi",
        title: "Multi-process collection (paper SVII)",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Tagged contexts share the unit's datapath and the memory system; \
             overlapping memory latencies make N concurrent collections cheaper \
             than N serial ones (the vs-serial column), at the cost of each \
             individual collection running longer."
                .into(),
        ],
    }
}
