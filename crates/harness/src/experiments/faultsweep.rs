//! `faultsweep`: mark-time overhead and degradation behaviour under
//! injected faults.
//!
//! Not a paper figure — a robustness experiment for this reproduction.
//! One mark pass per (fault rate, repeat) grid point, all fault classes
//! driven by a single per-access rate knob. Reports how often the unit
//! absorbed the faults (retries + ECC), how often it trapped into the
//! software-fallback mark, and what each outcome cost relative to the
//! clean baseline. Every non-failed run is differentially checked
//! inside [`run_faulted_mark`]: the final mark set must equal the
//! reachable set regardless of which path produced it.

use tracegc_heap::LayoutKind;
use tracegc_hwgc::GcUnitConfig;
use tracegc_sim::{FaultConfig, StallAccounting};
use tracegc_workloads::spec::by_name;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{run_faulted_mark, MarkOutcome, MemKind};
use crate::table::Table;

/// Per-access fault rates swept, one column per rate. Rate 0 is the
/// clean baseline the overhead column is computed against.
pub const RATES: [f64; 4] = [0.0, 1e-5, 1e-4, 1e-3];

/// The fault configuration for one grid point: every fault class driven
/// by the same `rate`, seeded from the grid index so the sweep is
/// byte-identical under any `--jobs` value (worker order never touches
/// the seed).
fn fault_config(rate: f64, grid_index: usize) -> FaultConfig {
    FaultConfig {
        seed: 0x5EED_0000 + grid_index as u64,
        bit_flip_rate: rate,
        drop_rate: rate,
        delay_rate: rate,
        corrupt_ref_rate: rate,
        corrupt_header_rate: rate,
        pte_fault_rate: rate,
        ..FaultConfig::default()
    }
}

/// Fault-rate sweep on avrora.
pub fn run(opts: &Options) -> ExperimentOutput {
    let spec = by_name("avrora").expect("avrora exists").scaled(opts.scale);
    let repeats = opts.pauses.max(1);

    // The full (rate, repeat) grid, flattened so the seed and the
    // output order both derive from the grid index alone.
    let grid: Vec<(usize, usize)> = (0..RATES.len())
        .flat_map(|ri| (0..repeats).map(move |rep| (ri, rep)))
        .collect();

    let runs = super::par_grid(opts, grid.clone(), |(ri, rep)| {
        let rate = RATES[ri];
        run_faulted_mark(
            &spec,
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
            fault_config(rate, ri * repeats + rep),
        )
    });

    // Clean baseline: mean total mark cycles at rate 0 (all its runs
    // are identical — zero rates inject nothing).
    let baseline: f64 = {
        let zero: Vec<&_> = grid
            .iter()
            .zip(&runs)
            .filter(|((ri, _), _)| *ri == 0)
            .map(|(_, r)| r)
            .collect();
        zero.iter().map(|r| r.total_cycles() as f64).sum::<f64>() / zero.len().max(1) as f64
    };

    let mut table = Table::new(
        "faultsweep: mark outcome and overhead vs per-access fault rate (avrora)",
        &[
            "rate",
            "run",
            "outcome",
            "unit-cycles",
            "fallback-cycles",
            "overhead",
            "retries",
            "faults",
        ],
    );
    let mut metrics = MetricsDoc::new("faultsweep");
    let (mut clean, mut fell_back, mut failed) = (0u64, 0u64, 0u64);
    for ((ri, rep), r) in grid.iter().zip(&runs) {
        let outcome = match &r.outcome {
            MarkOutcome::Clean => {
                clean += 1;
                "clean".to_string()
            }
            MarkOutcome::Fallback(fb) => {
                fell_back += 1;
                format!("fallback:{:?}", fb.trap.kind)
            }
            MarkOutcome::Failed(e) => {
                failed += 1;
                format!("failed:{e}")
            }
        };
        table.row(vec![
            format!("{:e}", RATES[*ri]),
            format!("{rep}"),
            outcome,
            format!("{}", r.unit_cycles),
            format!("{}", r.fallback_cycles),
            format!("{:.2}x", r.total_cycles() as f64 / baseline.max(1.0)),
            format!("{}", r.stats.retries),
            format!("{}", r.stats.total()),
        ]);
        metrics.note_faults(&r.stats);
    }
    // One attributed phase per execution path, aggregated over the whole
    // grid: the ledgers sum to exactly the cycles each path consumed, so
    // the busy+stalls == cycles invariant holds by construction.
    let (mut unit_stalls, mut fb_stalls) = (StallAccounting::default(), StallAccounting::default());
    for r in &runs {
        unit_stalls.merge(&r.unit_stalls);
        fb_stalls.merge(&r.fallback_stalls);
    }
    metrics.phase("unit_mark", unit_stalls.total(), 1, unit_stalls);
    if fb_stalls.total() > 0 {
        metrics.phase("sw_fallback", fb_stalls.total(), 1, fb_stalls);
    }
    // Run-outcome counters drive the CLI exit code (see
    // `exit_code_for`); only nonzero ones are emitted so clean sweeps
    // keep an empty faults section.
    for (name, v) in [
        ("clean_runs", clean),
        ("fallback_runs", fell_back),
        ("failed_runs", failed),
    ] {
        if v > 0 {
            metrics.fault(name, v);
        }
    }
    metrics.counter("grid_points", grid.len() as u64);

    ExperimentOutput {
        id: "faultsweep",
        title: "Fault sweep: graceful degradation under injected faults",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            format!(
                "{} grid points: {clean} clean, {fell_back} fell back to the \
                 software mark, {failed} failed.",
                grid.len()
            ),
            "Every completed run's mark set was differentially checked against \
             reachability; overhead is relative to the rate-0 baseline."
                .into(),
        ],
    }
}
