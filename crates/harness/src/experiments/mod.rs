//! One module per paper table/figure, each returning printable tables.
//!
//! The experiment index lives in DESIGN.md; paper-vs-measured values are
//! recorded in EXPERIMENTS.md. Run everything with
//! `cargo run -p tracegc --release --bin experiments -- all`.

pub mod ablations;
pub mod concurrent;
pub mod faultsweep;
pub mod fig01;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fleet;
pub mod heapscale;
pub mod multiunit;
pub mod overlap;
pub mod table1;

use tracegc_sim::TraceEvent;

use crate::metrics::MetricsDoc;
use crate::table::Table;

/// Options controlling experiment cost.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Scale factor applied to every benchmark spec (1.0 = the full
    /// scaled-down suite of DESIGN.md; 0.1 = quick smoke runs).
    pub scale: f64,
    /// Maximum GC pauses measured per benchmark.
    pub pauses: usize,
    /// Worker threads used to run *experiments* concurrently (the outer
    /// level of parallelism). Results are byte-identical for any value
    /// (see `crate::parallel`).
    pub jobs: usize,
    /// Worker threads used to run the independent grid points *inside*
    /// one sweep-style experiment (the inner, partition level —
    /// `--par-engines` on the CLI). Each grid point owns its whole
    /// simulated context, so outputs are byte-identical for any value;
    /// see [`tracegc_sim::run_partitions`] and DESIGN.md §10.
    pub par_engines: usize,
    /// Turns on event-ring tracing in the experiments that support it
    /// (those that run a single instrumented unit); the drained events
    /// land in [`ExperimentOutput::trace`].
    pub trace: bool,
    /// Fault-injection configuration threaded into every unit-only
    /// collection (`None`, the default, runs everything clean). An
    /// inactive config (all rates zero) is equivalent to `None`.
    pub fault: Option<tracegc_sim::FaultConfig>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: 0.25,
            pauses: 3,
            jobs: 1,
            // Seeded from TRACEGC_PAR_ENGINES (or any enclosing
            // `with_exec` scope) so library entry points honor the same
            // knob as the CLI flag.
            par_engines: tracegc_sim::default_exec().workers(),
            trace: false,
            fault: None,
        }
    }
}

/// Runs a sweep experiment's independent grid points under the
/// partition budget (`Options::par_engines`), returning results in grid
/// order.
///
/// Every grid point builds and ticks its own simulated context (heap,
/// memory system, unit), so the points form trivially disjoint
/// partitions and the bulk-synchronous runner keeps the outputs
/// byte-identical to a serial sweep for any worker count.
pub(crate) fn par_grid<T, U, F>(opts: &Options, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    tracegc_sim::run_partitions(
        tracegc_sim::Exec::from_workers(opts.par_engines),
        items,
        |_, item| f(item),
    )
}

/// The output of one experiment: tables plus free-form notes.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. `fig15`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Commentary (paper values, caveats).
    pub notes: Vec<String>,
    /// Machine-readable metrics (phases, counters, gauges) written to
    /// the `<id>.metrics.json` sidecar.
    pub metrics: MetricsDoc,
    /// Drained event-ring events (empty unless `Options::trace` and the
    /// experiment supports tracing).
    pub trace: Vec<TraceEvent>,
}

/// Every experiment id, in paper order (scheduler-layer experiments
/// `overlap` and `multiunit` last).
pub const ALL: [&str; 27] = [
    "table1",
    "fig1a",
    "fig1b",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "ablA",
    "ablB",
    "ablC",
    "ablD",
    "ablE",
    "ablF",
    "ablG",
    "ablH",
    "conc",
    "multi",
    "overlap",
    "multiunit",
    "faultsweep",
    "heapscale",
    "fleet",
];

/// Runs one experiment by id. Returns `None` for unknown ids.
///
/// Every returned output carries a metrics doc stamped with the common
/// `scale` / `pauses` gauges on top of whatever the experiment recorded.
pub fn run(id: &str, opts: &Options) -> Option<ExperimentOutput> {
    let mut out = run_inner(id, opts)?;
    out.metrics.gauge("scale", opts.scale);
    out.metrics.gauge("pauses", opts.pauses as f64);
    debug_assert_eq!(out.metrics.id, out.id, "metrics doc id must match");
    Some(out)
}

fn run_inner(id: &str, opts: &Options) -> Option<ExperimentOutput> {
    Some(match id {
        "table1" => table1::run(opts),
        "fig1a" => fig01::run_1a(opts),
        "fig1b" => fig01::run_1b(opts),
        "fig15" => fig15::run(opts),
        "fig16" => fig16::run(opts),
        "fig17" => fig17::run(opts),
        "fig18" => fig18::run(opts),
        "fig19" => fig19::run(opts),
        "fig20" => fig20::run(opts),
        "fig21" => fig21::run(opts),
        "fig22" => fig22::run(opts),
        "fig23" => fig23::run(opts),
        "ablA" => ablations::run_memsched(opts),
        "ablB" => ablations::run_layout(opts),
        "ablC" => ablations::run_tlb(opts),
        "ablD" => ablations::run_barriers(opts),
        "ablE" => ablations::run_superpages(opts),
        "ablF" => ablations::run_throttle(opts),
        "ablG" => ablations::run_ooo(opts),
        "ablH" => ablations::run_refload(opts),
        "conc" => concurrent::run(opts),
        "multi" => concurrent::run_multi(opts),
        "overlap" => overlap::run(opts),
        "multiunit" => multiunit::run(opts),
        "faultsweep" => faultsweep::run(opts),
        "heapscale" => heapscale::run(opts),
        "fleet" => fleet::run(opts),
        _ => return None,
    })
}

/// One finished experiment plus how long it took on the wall clock.
#[derive(Debug, Clone)]
pub struct CompletedExperiment {
    /// The experiment's tables and notes.
    pub output: ExperimentOutput,
    /// Wall-clock time this experiment took (inside the pool, so
    /// concurrent experiments overlap).
    pub wall: std::time::Duration,
}

/// Runs a batch of experiments on `opts.jobs` workers, returning the
/// outputs in the order the ids were given.
///
/// This is the library entry point behind the CLI's `--jobs` flag; the
/// determinism tests call it directly to assert that `jobs = 1` and
/// `jobs = 8` produce identical tables. Unknown ids are rejected up
/// front (before anything runs) with an error naming the offender.
pub fn run_ids(ids: &[&str], opts: &Options) -> Result<Vec<CompletedExperiment>, String> {
    if let Some(bad) = ids.iter().find(|id| !ALL.contains(id)) {
        return Err(format!("unknown experiment '{bad}'"));
    }
    Ok(crate::parallel::par_map(opts.jobs, ids.to_vec(), |id| {
        let started = std::time::Instant::now();
        let output = run(id, opts).expect("ids were validated against ALL");
        CompletedExperiment {
            output,
            wall: started.elapsed(),
        }
    }))
}

/// Folds one unit run's fault outcome into an experiment's metrics doc:
/// nonzero injector counters plus a `fallback_runs` tick when the mark
/// degraded to software. Clean runs contribute nothing, keeping the
/// faults section empty (and sidecars byte-identical to fault-free
/// runs).
pub(crate) fn note_unit_faults(
    metrics: &mut MetricsDoc,
    stats: &tracegc_sim::FaultStats,
    fell_back: bool,
) {
    metrics.note_faults(stats);
    if fell_back {
        metrics.fault("fallback_runs", 1);
    }
}

/// Maps a finished batch to the CLI's exit code: `0` when every run was
/// clean, `2` when at least one collection degraded to the software
/// fallback (results are still correct), `3` when any run failed
/// outright. The codes are part of the CLI contract (see
/// EXPERIMENTS.md) so CI can distinguish "degraded as designed" from
/// "broken".
pub fn exit_code_for(completed: &[CompletedExperiment]) -> u8 {
    let sum = |key: &str| {
        completed
            .iter()
            .filter_map(|c| c.output.metrics.fault_value(key))
            .sum::<u64>()
    };
    if sum("failed_runs") > 0 {
        3
    } else if sum("fallback_runs") > 0 {
        2
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99", &Options::default()).is_none());
    }

    #[test]
    fn exit_codes_rank_failure_over_fallback_over_clean() {
        let mk = |faults: &[(&str, u64)]| {
            let mut metrics = MetricsDoc::new("x");
            for (k, v) in faults {
                metrics.fault(k, *v);
            }
            CompletedExperiment {
                output: ExperimentOutput {
                    id: "x",
                    title: "x",
                    tables: Vec::new(),
                    notes: Vec::new(),
                    metrics,
                    trace: Vec::new(),
                },
                wall: std::time::Duration::ZERO,
            }
        };
        assert_eq!(exit_code_for(&[]), 0);
        assert_eq!(exit_code_for(&[mk(&[])]), 0);
        assert_eq!(exit_code_for(&[mk(&[("retries", 4)])]), 0);
        assert_eq!(exit_code_for(&[mk(&[("fallback_runs", 1)])]), 2);
        assert_eq!(
            exit_code_for(&[mk(&[("fallback_runs", 2)]), mk(&[("failed_runs", 1)])]),
            3
        );
    }

    #[test]
    fn all_ids_are_known() {
        // Cheap structural check: the registry accepts every listed id.
        // (Execution of each experiment is covered by integration tests.)
        for id in ALL {
            // table1 and fig22 are cheap enough to actually run here.
            if id == "table1" || id == "fig22" {
                let out = run(id, &Options::default()).unwrap();
                assert!(!out.tables.is_empty());
            }
        }
    }
}
