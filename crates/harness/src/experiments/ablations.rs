//! Ablations for the design choices the paper discusses in prose.
//!
//! * `ablA` — memory scheduling: "our performance was significantly
//!   improved changing from FIFO MAS to FR-FCFS and increasing the
//!   maximum number of outstanding reads from 8 to 16. [The CPU] was
//!   insensitive to the configuration" (§VI-A).
//! * `ablB` — the bidirectional layout vs the conventional TIB layout on
//!   the cacheless unit (§IV-A.I).
//! * `ablC` — the blocking PTW vs the proposed non-blocking walker
//!   (§VI-A future work).
//! * `ablD` — the §IV-D barrier cost model vs a trap-based read barrier.

use tracegc_heap::{LayoutKind, ObjRef};
use tracegc_hwgc::barrier::{BarrierCosts, BarrierModel, ForwardingState};
use tracegc_hwgc::GcUnitConfig;
use tracegc_mem::ddr3::{Ddr3Config, Scheduler};
use tracegc_vmem::TlbConfig;
use tracegc_workloads::spec::by_name;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{run_cpu_gc, run_unit_gc_faulted, MemKind};
use crate::table::{ms, ratio, Table};

/// `ablA`: FR-FCFS vs FIFO, 16 vs 8 outstanding reads.
pub fn run_memsched(opts: &Options) -> ExperimentOutput {
    let spec = by_name("avrora").expect("avrora exists").scaled(opts.scale);
    let variants: [(&str, Ddr3Config); 4] = [
        ("frfcfs-16", Ddr3Config::default()),
        (
            "frfcfs-8",
            Ddr3Config {
                max_reads: 8,
                ..Ddr3Config::default()
            },
        ),
        (
            "fifo-16",
            Ddr3Config {
                scheduler: Scheduler::Fifo,
                row_window: 1,
                ..Ddr3Config::default()
            },
        ),
        ("fifo-8", Ddr3Config::fifo_8_reads()),
    ];
    let mut table = Table::new(
        "ablA: memory scheduler sensitivity (avrora mark phase)",
        &["config", "unit-mark-ms", "cpu-mark-ms"],
    );
    let rows = super::par_grid(opts, variants.to_vec(), |(name, cfg)| {
        let unit = run_unit_gc_faulted(
            &spec,
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::Ddr3(cfg),
            false,
            opts.fault,
        );
        let cpu = run_cpu_gc(&spec, LayoutKind::Bidirectional, MemKind::Ddr3(cfg));
        let row = vec![
            name.into(),
            ms(unit.report.mark.cycles()),
            ms(cpu.mark.cycles),
        ];
        (
            row,
            (name, unit.report.mark.cycles(), unit.report.mark.stalls),
            (name, cpu.mark.cycles, cpu.mark.stalls),
            (unit.fault_stats, unit.fallback.is_some()),
        )
    });
    let mut metrics = MetricsDoc::new("ablA");
    for (row, (name, ucycles, ustalls), (_, ccycles, cstalls), (stats, fell_back)) in rows {
        table.row(row);
        metrics.phase(&format!("{name}.unit_mark"), ucycles, 1, ustalls);
        metrics.phase(&format!("{name}.cpu_mark"), ccycles, 1, cstalls);
        super::note_unit_faults(&mut metrics, &stats, fell_back);
    }
    ExperimentOutput {
        id: "ablA",
        title: "Ablation A: memory access scheduler",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper: the unit improved significantly moving FIFO->FR-FCFS and 8->16 \
             outstanding reads, while Rocket was insensitive."
                .into(),
        ],
    }
}

/// `ablB`: bidirectional vs conventional layout.
pub fn run_layout(opts: &Options) -> ExperimentOutput {
    let spec = by_name("pmd").expect("pmd exists").scaled(opts.scale);
    let mut table = Table::new(
        "ablB: object layout on the cacheless unit (pmd mark phase)",
        &["layout", "unit-mark-ms", "unit-mem-reqs", "cpu-mark-ms"],
    );
    let mut unit_times = Vec::new();
    let layouts = vec![
        ("bidirectional", LayoutKind::Bidirectional),
        ("conventional-tib", LayoutKind::Conventional),
    ];
    let results = super::par_grid(opts, layouts, |(name, layout)| {
        let unit = run_unit_gc_faulted(
            &spec,
            layout,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
            false,
            opts.fault,
        );
        let cpu = run_cpu_gc(&spec, layout, MemKind::ddr3_default());
        (
            name,
            unit.report.mark.cycles(),
            unit.snapshot.total_requests,
            cpu.mark.cycles,
            unit.report.mark.stalls,
            cpu.mark.stalls,
            (unit.fault_stats, unit.fallback.is_some()),
        )
    });
    let mut metrics = MetricsDoc::new("ablB");
    for (name, unit_mark, unit_reqs, cpu_mark, unit_stalls, cpu_stalls, (stats, fell_back)) in
        results
    {
        unit_times.push(unit_mark);
        metrics.phase(&format!("{name}.unit_mark"), unit_mark, 1, unit_stalls);
        metrics.phase(&format!("{name}.cpu_mark"), cpu_mark, 1, cpu_stalls);
        super::note_unit_faults(&mut metrics, &stats, fell_back);
        table.row(vec![
            name.into(),
            ms(unit_mark),
            format!("{unit_reqs}"),
            ms(cpu_mark),
        ]);
    }
    let slowdown = unit_times[1] as f64 / unit_times[0] as f64;
    metrics.gauge("conventional_slowdown", slowdown);
    ExperimentOutput {
        id: "ablB",
        title: "Ablation B: bidirectional object layout",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![format!(
            "Conventional TIB layout costs the cacheless unit {slowdown:.2}x on mark \
             (paper §IV-A: two extra memory accesses per object, scattered field \
             reads instead of a unit-stride copy)."
        )],
    }
}

/// `ablC`: the blocking TLB/PTW of the prototype vs the proposed
/// non-blocking walker (hit-under-miss + concurrent walks).
pub fn run_tlb(opts: &Options) -> ExperimentOutput {
    // TLB pressure needs a large heap, as in fig18/ablE.
    let spec = by_name("xalan")
        .expect("xalan exists")
        .scaled(opts.scale.max(0.5));
    let mut table = Table::new(
        "ablC: TLB/PTW blocking behaviour (xalan mark phase, 8 GB/s pipe)",
        &["walker", "unit-mark-ms", "walks", "walker-wait-kcycles"],
    );
    let mut times = Vec::new();
    let variants: [(&str, bool, usize); 3] = [
        ("blocking (paper prototype)", true, 1),
        ("hit-under-miss, 1 walk", false, 1),
        ("hit-under-miss, 4 walks", false, 4),
    ];
    let results = super::par_grid(opts, variants.to_vec(), |(name, blocking, walks)| {
        let cfg = GcUnitConfig {
            tlb: TlbConfig {
                blocking_requesters: blocking,
                concurrent_walks: walks,
                ..TlbConfig::default()
            },
            ..GcUnitConfig::default()
        };
        let unit = run_unit_gc_faulted(
            &spec,
            LayoutKind::Bidirectional,
            cfg,
            MemKind::pipe_8gbps(),
            false,
            opts.fault,
        );
        (
            name,
            unit.report.mark.cycles(),
            unit.report.mark.translator,
            unit.report.mark.stalls,
            (unit.fault_stats, unit.fallback.is_some()),
        )
    });
    let mut metrics = MetricsDoc::new("ablC");
    for (name, cycles, translator, stalls, (stats, fell_back)) in results {
        times.push(cycles);
        metrics.phase(&format!("{name}.unit_mark"), cycles, 1, stalls);
        super::note_unit_faults(&mut metrics, &stats, fell_back);
        table.row(vec![
            name.into(),
            ms(cycles),
            format!("{}", translator.walks),
            format!("{}", translator.walker_wait_cycles / 1000),
        ]);
    }
    ExperimentOutput {
        id: "ablC",
        title: "Ablation C: non-blocking TLB/PTW (paper's future work)",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![format!(
            "The non-blocking walker recovers {} on the mark phase — paper SVI-A \
             identifies the blocking TLB/PTW as the main gap between the DDR3 \
             speedup and the 9x bandwidth-bound ceiling.",
            ratio(times[0] as f64 / times[2].max(1) as f64)
        )],
    }
}

/// `ablD`: the coherence-based barriers of §IV-D vs trap-based barriers.
pub fn run_barriers(opts: &Options) -> ExperimentOutput {
    let spec = by_name("lusearch")
        .expect("lusearch exists")
        .scaled(opts.scale);
    let workload = tracegc_workloads::generate::generate_heap(&spec, LayoutKind::Bidirectional);
    let live: Vec<ObjRef> = workload.heap.reachable_from_roots().into_iter().collect();

    // A mutator trace: every live object's references are read once
    // while 5% of pages relocate.
    let mut fwd = ForwardingState::new();
    let pages: std::collections::BTreeSet<u64> = live
        .iter()
        .map(|o| o.addr() / tracegc_vmem::PAGE_SIZE)
        .collect();
    for (i, page) in pages.iter().enumerate() {
        if i % 20 == 0 {
            fwd.relocate_page(page * tracegc_vmem::PAGE_SIZE, &[]);
        }
    }
    let mut model = BarrierModel::new(BarrierCosts::default());
    let mut reads = 0u64;
    for &obj in &live {
        for r in workload.heap.refs_of(obj) {
            model.read_barrier(&mut fwd, r);
            reads += 1;
        }
    }
    let stats = model.stats();
    let mut table = Table::new(
        "ablD: read-barrier cost (lusearch mutator trace, 5% of pages relocating)",
        &["scheme", "total-kcycles", "per-read-cycles"],
    );
    table.row(vec![
        "coherence (Fig 9)".into(),
        format!("{}", stats.cycles / 1000),
        format!("{:.2}", stats.cycles as f64 / reads.max(1) as f64),
    ]);
    let trap = model.trap_equivalent_cycles();
    table.row(vec![
        "trap-based".into(),
        format!("{}", trap / 1000),
        format!("{:.2}", trap as f64 / reads.max(1) as f64),
    ]);
    let mut metrics = MetricsDoc::new("ablD");
    metrics.counter("reference_reads", reads);
    metrics.counter("coherence_cycles", stats.cycles);
    metrics.counter("trap_cycles", trap);
    metrics.gauge(
        "coherence_per_read",
        stats.cycles as f64 / reads.max(1) as f64,
    );
    metrics.gauge("trap_per_read", trap as f64 / reads.max(1) as f64);
    ExperimentOutput {
        id: "ablD",
        title: "Ablation D: concurrent-GC barrier cost",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            format!(
                "{} fast-path reads, {} line acquires, {} acquired-line hits over \
                 {} reference reads.",
                stats.read_fast, stats.read_slow_acquire, stats.read_slow_hit, reads
            ),
            "Paper §IV-D: the coherence trick eliminates traps and pipeline flushes \
             on both fast and slow paths."
                .into(),
        ],
    }
}

/// `ablE`: 4 KiB pages vs 2 MiB superpages (§VII "Heap Size
/// Scalability": "large heaps could use superpages instead of 4KB
/// pages").
pub fn run_superpages(opts: &Options) -> ExperimentOutput {
    // TLB pressure needs a large heap, as in fig18.
    let spec = by_name("xalan")
        .expect("xalan exists")
        .scaled(opts.scale.max(0.5));
    let mut table = Table::new(
        "ablE: page size vs traversal-unit TLB pressure (xalan mark phase)",
        &["pages", "unit-mark-ms", "walks", "walker-wait-kcycles"],
    );
    let mut times = Vec::new();
    let variants = vec![("4KiB", false), ("2MiB-superpages", true)];
    let results = super::par_grid(opts, variants, |(name, superpages)| {
        let run = run_unit_gc_faulted(
            &spec,
            LayoutKind::Bidirectional,
            GcUnitConfig::default(),
            MemKind::ddr3_default(),
            superpages,
            opts.fault,
        );
        (
            name,
            run.report.mark.cycles(),
            run.report.mark.translator,
            run.report.mark.stalls,
            (run.fault_stats, run.fallback.is_some()),
        )
    });
    let mut metrics = MetricsDoc::new("ablE");
    for (name, cycles, translator, stalls, (stats, fell_back)) in results {
        times.push(cycles);
        metrics.phase(&format!("xalan.{name}.unit_mark"), cycles, 1, stalls);
        super::note_unit_faults(&mut metrics, &stats, fell_back);
        table.row(vec![
            name.into(),
            ms(cycles),
            format!("{}", translator.walks),
            format!("{}", translator.walker_wait_cycles / 1000),
        ]);
    }
    ExperimentOutput {
        id: "ablE",
        title: "Ablation E: superpages (paper SVII)",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![format!(
            "Superpages speed the mark phase by {} by collapsing TLB misses \
             (each 2 MiB entry covers 512 pages of reach).",
            ratio(times[0] as f64 / times[1].max(1) as f64)
        )],
    }
}

/// `ablF`: bandwidth throttling under background mutator traffic (§VII
/// "Bandwidth Throttling").
pub fn run_throttle(opts: &Options) -> ExperimentOutput {
    let spec = by_name("avrora").expect("avrora exists").scaled(opts.scale);
    let mut table = Table::new(
        "ablF: unit throttling vs mutator memory interference (avrora mark)",
        &[
            "min-issue-interval",
            "unit-mark-ms",
            "mutator-mean-latency",
            "mutator-p-high-latency",
        ],
    );
    let rows = super::par_grid(opts, vec![0u64, 4, 16], |interval| {
        let mut workload =
            tracegc_workloads::generate::generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem = MemKind::ddr3_default().fresh();
        let cfg = GcUnitConfig {
            min_issue_interval: interval,
            ..GcUnitConfig::default()
        };
        let mut unit = tracegc_hwgc::TraversalUnit::new(cfg, &mut workload.heap);
        // One background 64-byte read every 40 cycles ~ a busy mutator.
        unit.set_background_traffic(40);
        let result = unit.run_mark(&mut workload.heap, &mut mem, 0);
        let lats = unit.background_latencies();
        let mean = lats.iter().sum::<u64>() as f64 / lats.len().max(1) as f64;
        let mut sorted: Vec<u64> = lats.to_vec();
        sorted.sort_unstable();
        let p95 = sorted
            .get(sorted.len().saturating_sub(1).min(sorted.len() * 95 / 100))
            .copied()
            .unwrap_or(0);
        let row = vec![
            if interval == 0 {
                "unthrottled".into()
            } else {
                format!("{interval}")
            },
            ms(result.cycles()),
            format!("{mean:.1}"),
            format!("{p95}"),
        ];
        (row, interval, result.cycles(), result.stalls)
    });
    let mut metrics = MetricsDoc::new("ablF");
    for (row, interval, cycles, stalls) in rows {
        table.row(row);
        metrics.phase(&format!("throttle{interval}.unit_mark"), cycles, 1, stalls);
    }
    ExperimentOutput {
        id: "ablF",
        title: "Ablation F: bandwidth throttling (paper SVII)",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper SVII: the unit maximizes bandwidth and may interfere with the \
             application; throttling to residual bandwidth trades GC time for \
             mutator memory latency."
                .into(),
        ],
    }
}

/// `ablG`: in-order Rocket vs an out-of-order (BOOM-like) baseline.
/// §VI-A: "a preliminary analysis ... showed that it outperformed Rocket
/// by only around 12% on average".
pub fn run_ooo(opts: &Options) -> ExperimentOutput {
    let spec = by_name("avrora").expect("avrora exists").scaled(opts.scale);
    let mut table = Table::new(
        "ablG: CPU baseline out-of-order window (avrora mark phase)",
        &["ooo-window", "cpu-mark-ms", "speedup-vs-inorder"],
    );
    let windows = vec![1usize, 2, 4, 8];
    let cycles = super::par_grid(opts, windows.clone(), |window| {
        let mut workload =
            tracegc_workloads::generate::generate_heap(&spec, LayoutKind::Bidirectional);
        let mut mem = MemKind::ddr3_default().fresh();
        let cfg = tracegc_cpu::CpuConfig {
            ooo_window: window,
            ..tracegc_cpu::CpuConfig::default()
        };
        let mut cpu = tracegc_cpu::Cpu::new(cfg, &mut workload.heap);
        let mark = cpu.run_mark(&mut workload.heap, &mut mem);
        (mark.cycles, mark.stalls)
    });
    let base = cycles[0].0;
    let mut metrics = MetricsDoc::new("ablG");
    for (window, (mark_cycles, stalls)) in windows.into_iter().zip(cycles) {
        metrics.phase(&format!("ooo{window}.cpu_mark"), mark_cycles, 1, stalls);
        table.row(vec![
            format!("{window}"),
            ms(mark_cycles),
            ratio(base as f64 / mark_cycles.max(1) as f64),
        ]);
    }
    ExperimentOutput {
        id: "ablG",
        title: "Ablation G: out-of-order CPU baseline (paper SVI-A)",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper: BOOM outperformed Rocket by only ~12% on GC — confirmed by \
             limited benefits of OoO for graph traversal [3]; the window mostly \
             hides reference-copy latency, not the serializing mark check."
                .into(),
        ],
    }
}

/// `ablH`: read-barrier implementation schemes (§III taxonomy + the
/// §IV-E REFLOAD instruction).
pub fn run_refload(opts: &Options) -> ExperimentOutput {
    use tracegc_cpu::refload::{barrier_overheads, RefloadCosts};
    let _ = opts;
    let costs = RefloadCosts::default();
    // A mutator executing 1M reference loads over 10M cycles (a
    // pointer-heavy managed workload).
    let ref_loads = 1_000_000u64;
    let baseline = 10_000_000u64;
    let mut table = Table::new(
        "ablH: read-barrier scheme overhead vs relocation churn",
        &["churn", "compiled-check", "vm-trap", "refload (SIV-E)"],
    );
    let mut metrics = MetricsDoc::new("ablH");
    for churn in [0.0, 0.001, 0.01, 0.05, 0.2] {
        let o = barrier_overheads(&costs, ref_loads, churn, baseline);
        if churn == 0.05 {
            metrics.gauge("compiled_check_overhead_at_5pct", o[0].relative);
            metrics.gauge("vm_trap_overhead_at_5pct", o[1].relative);
            metrics.gauge("refload_overhead_at_5pct", o[2].relative);
        }
        table.row(vec![
            format!("{:.1}%", churn * 100.0),
            format!("{:.1}%", o[0].relative * 100.0),
            format!("{:.1}%", o[1].relative * 100.0),
            format!("{:.1}%", o[2].relative * 100.0),
        ]);
    }
    ExperimentOutput {
        id: "ablH",
        title: "Ablation H: REFLOAD barrier instruction (paper SIV-E)",
        tables: vec![table],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper SIV-E: VM-trap barriers are free until relocation churn creates \
             trap storms; the fused REFLOAD turns the slow path into a speculable \
             long load, eliminating pipeline flushes at every churn level."
                .into(),
        ],
    }
}
