//! Fig. 18: traversal-unit memory requests and cache partitioning.
//!
//! * Fig. 18a — with one shared cache, 2/3 of cache requests come from
//!   the page-table walker, drowning everyone else in crossbar
//!   contention.
//! * Fig. 18b — after partitioning (dedicated PTW cache, marker/tracer
//!   direct to the interconnect), marker and tracer dominate the
//!   requests that reach actual memory, "which is the intention, as
//!   these are the units that perform the actual work".

use tracegc_heap::LayoutKind;
use tracegc_hwgc::{CacheTopology, GcUnitConfig};
use tracegc_mem::Source;
use tracegc_workloads::spec::DACAPO;

use tracegc_sim::StallAccounting;

use super::{ExperimentOutput, Options};
use crate::metrics::MetricsDoc;
use crate::runner::{run_unit_gc_faulted, MemKind};
use crate::table::Table;

const FIG18_SOURCES: [Source; 4] = [
    Source::MarkQueue,
    Source::Tracer,
    Source::Ptw,
    Source::Marker,
];

/// Per-source request breakdowns under both topologies.
pub fn run(opts: &Options) -> ExperimentOutput {
    let mut shared = Table::new(
        "Fig 18a: L1 (shared) cache requests by source (millions)",
        &[
            "bench",
            "mark-queue",
            "tracer",
            "ptw",
            "marker",
            "ptw-share",
        ],
    );
    let mut partitioned = Table::new(
        "Fig 18b: memory requests by source, partitioned config (millions)",
        &[
            "bench",
            "mark-queue",
            "tracer",
            "ptw",
            "marker",
            "marker+tracer-share",
        ],
    );
    let m = |v: u64| format!("{:.3}", v as f64 / 1e6);
    // Every (benchmark, topology) pair is an independent grid point;
    // flatten them so the pool can run all 12 simulations at once.
    let grid: Vec<(tracegc_workloads::spec::BenchSpec, bool)> = DACAPO
        .iter()
        .flat_map(|&spec| [(spec, true), (spec, false)])
        .collect();
    let rows = super::par_grid(opts, grid, |(spec, shared_topology)| {
        // The TLB-pressure effect needs a heap well beyond the TLB
        // reach, as in the paper's 200 MB configuration, so fig18 always
        // runs at full workload scale.
        let spec = spec.scaled(opts.scale.max(1.0));
        let phase_of = |run: &crate::runner::UnitRun,
                        topo: &str|
         -> Vec<(String, u64, u64, StallAccounting)> {
            vec![
                (
                    format!("{}.{topo}.unit_mark", spec.name),
                    run.report.mark.cycles(),
                    1,
                    run.report.mark.stalls,
                ),
                (
                    format!("{}.{topo}.unit_sweep", spec.name),
                    run.report.sweep.cycles(),
                    run.report.sweep.lanes,
                    run.report.sweep.stalls,
                ),
            ]
        };
        if shared_topology {
            // Shared topology: count accesses at the shared cache.
            let run = run_unit_gc_faulted(
                &spec,
                LayoutKind::Bidirectional,
                GcUnitConfig {
                    topology: CacheTopology::Shared,
                    ..GcUnitConfig::default()
                },
                MemKind::ddr3_default(),
                false,
                opts.fault,
            );
            let stats = run
                .unit
                .traversal()
                .shared_cache_stats()
                .expect("shared topology has a shared cache")
                .clone();
            let total: u64 = FIG18_SOURCES.iter().map(|&s| stats.accesses(s)).sum();
            let row = vec![
                spec.name.into(),
                m(stats.accesses(Source::MarkQueue)),
                m(stats.accesses(Source::Tracer)),
                m(stats.accesses(Source::Ptw)),
                m(stats.accesses(Source::Marker)),
                format!(
                    "{:.0}%",
                    100.0 * stats.accesses(Source::Ptw) as f64 / total.max(1) as f64
                ),
            ];
            (
                row,
                phase_of(&run, "shared"),
                run.fault_stats,
                run.fallback.is_some(),
            )
        } else {
            // Partitioned topology: count requests at the memory
            // controller.
            let run = run_unit_gc_faulted(
                &spec,
                LayoutKind::Bidirectional,
                GcUnitConfig::default(),
                MemKind::ddr3_default(),
                false,
                opts.fault,
            );
            let snap = &run.snapshot;
            let total: u64 = FIG18_SOURCES.iter().map(|&s| snap.requests(s)).sum();
            let work = snap.requests(Source::Marker) + snap.requests(Source::Tracer);
            let row = vec![
                spec.name.into(),
                m(snap.requests(Source::MarkQueue)),
                m(snap.requests(Source::Tracer)),
                m(snap.requests(Source::Ptw)),
                m(snap.requests(Source::Marker)),
                format!("{:.0}%", 100.0 * work as f64 / total.max(1) as f64),
            ];
            (
                row,
                phase_of(&run, "part"),
                run.fault_stats,
                run.fallback.is_some(),
            )
        }
    });
    let mut metrics = MetricsDoc::new("fig18");
    for pair in rows.chunks(2) {
        shared.row(pair[0].0.clone());
        partitioned.row(pair[1].0.clone());
        for (_, phases, stats, fell_back) in pair {
            for (name, cycles, lanes, stalls) in phases {
                metrics.phase(name, *cycles, *lanes, *stalls);
            }
            super::note_unit_faults(&mut metrics, stats, *fell_back);
        }
    }
    ExperimentOutput {
        id: "fig18",
        title: "Fig 18: cache partitioning",
        tables: vec![shared, partitioned],
        metrics,
        trace: Vec::new(),
        notes: vec![
            "Paper 18a: ~2/3 of shared-cache requests come from the PTW (the mark \
             phase has little locality, so TLB misses abound)."
                .into(),
            "Paper 18b: after partitioning, marker and tracer dominate actual memory \
             requests."
                .into(),
        ],
    }
}
