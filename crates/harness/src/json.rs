//! A strict, value-retaining JSON parser and canonical serializer.
//!
//! Every machine-readable artifact this workspace writes — metrics
//! sidecars, `BENCH_<n>.json`, `calibration.json`, Chrome traces — is
//! emitted by a hand-rolled serializer (no external crates), so the
//! reader on the other side must be equally self-contained. This module
//! parses the full JSON grammar into a [`Json`] value while enforcing
//! the rules the old syntax-only checker let slide:
//!
//! * **escapes** — only `\" \\ \/ \b \f \n \r \t \uXXXX` are legal, and
//!   `\u` must be followed by exactly four hex digits;
//! * **control characters** — raw bytes below `0x20` inside a string
//!   are rejected (they must be escaped);
//! * **duplicate keys** — an object may not bind the same key twice
//!   (duplicate keys silently shadow in most readers, which is exactly
//!   how a malformed sidecar would hide a regression);
//! * **numbers** — leading zeros (`01`), lone minus signs and empty
//!   exponents are rejected, per RFC 8259.
//!
//! Numbers are kept as their source text ([`Json::Num`]) so a
//! parse → serialize round trip never perturbs a value that tests
//! compare byte-for-byte.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text so round trips are exact.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order (keys are unique by
    /// construction — the parser rejects duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if it is an array.
    pub fn elements(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(e) => Some(e),
            _ => None,
        }
    }

    /// Serializes compactly (no insignificant whitespace), preserving
    /// member order and number spellings. `parse(x).to_compact()` is a
    /// canonical form: two documents with equal values, orders and
    /// number spellings serialize identically whatever their original
    /// whitespace.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.write_compact(&mut s);
        s
    }

    fn write_compact(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(true) => s.push_str("true"),
            Json::Bool(false) => s.push_str("false"),
            Json::Num(raw) => s.push_str(raw),
            Json::Str(v) => s.push_str(&escape(v)),
            Json::Arr(elems) => {
                s.push('[');
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    e.write_compact(s);
                }
                s.push(']');
            }
            Json::Obj(members) => {
                s.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&escape(k));
                    s.push(':');
                    v.write_compact(s);
                }
                s.push('}');
            }
        }
    }
}

/// Escapes `v` as a JSON string literal (quotes included).
pub fn escape(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

/// Parses `s` as one JSON document (strict grammar, no trailing
/// garbage).
///
/// # Errors
///
/// A human-readable message naming the first offending byte offset.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.b.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                self.object()
            }
            Some(b'[') => {
                self.pos += 1;
                self.array()
            }
            Some(b'"') => {
                self.pos += 1;
                self.string().map(Json::Str)
            }
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected byte {c:#x} at {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.b.get(self.pos) != Some(&b'"') {
                return Err(format!("expected object key at {}", self.pos));
            }
            let key_at = self.pos;
            self.pos += 1;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate object key \"{key}\" at {key_at}"));
            }
            self.skip_ws();
            if self.b.get(self.pos) != Some(&b':') {
                return Err(format!("expected ':' at {}", self.pos));
            }
            self.pos += 1;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        let mut elems = Vec::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(elems));
        }
        loop {
            elems.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(elems));
                }
                _ => return Err(format!("expected ',' or ']' at {}", self.pos)),
            }
        }
    }

    /// Parses a string body (opening quote already consumed).
    fn string(&mut self) -> Result<String, String> {
        let mut out = String::new();
        loop {
            match self.b.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u escape at {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("bad \\u escape at {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at {}", self.pos))?;
                            // Surrogates are tolerated by substituting
                            // U+FFFD; none of our writers emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        Some(c) => {
                            return Err(format!(
                                "illegal escape '\\{}' at {}",
                                *c as char, self.pos
                            ))
                        }
                        None => return Err("unterminated escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!(
                        "raw control byte {c:#x} in string at {} (must be escaped)",
                        self.pos
                    ));
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched;
                    // the input is a &str so they are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.b.get(self.pos).is_some_and(|c| *c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by more.
        match self.b.get(self.pos) {
            Some(b'0') => {
                self.pos += 1;
                if self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    return Err(format!("leading zero in number at {start}"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("expected digits at {}", self.pos)),
        }
        if self.b.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                return Err(format!("expected fraction digits at {}", self.pos));
            }
            while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        if matches!(self.b.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.b.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                return Err(format!("expected exponent digits at {}", self.pos));
            }
            while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        Ok(Json::Num(
            std::str::from_utf8(&self.b[start..self.pos])
                .unwrap()
                .to_string(),
        ))
    }

    fn literal(&mut self, lit: &[u8], v: Json) -> Result<Json, String> {
        if self.b.len() >= self.pos + lit.len() && &self.b[self.pos..self.pos + lit.len()] == lit {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_navigates() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().elements().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().elements().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn compact_round_trip_is_canonical() {
        let pretty = "{\n  \"a\": [ 1 , 2 ],\n  \"b\": 0.5\n}\n";
        let compact = "{\"a\":[1,2],\"b\":0.5}";
        assert_eq!(parse(pretty).unwrap().to_compact(), compact);
        assert_eq!(parse(compact).unwrap().to_compact(), compact);
    }

    #[test]
    fn number_spellings_survive_round_trips() {
        for n in ["0", "-0", "1e9", "1E+9", "123.450", "-0.001"] {
            assert_eq!(parse(n).unwrap().to_compact(), n);
        }
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap_err();
        assert!(err.contains("duplicate object key \"a\""), "{err}");
        // Same key in *different* objects is fine.
        parse(r#"{"x": {"a": 1}, "y": {"a": 2}}"#).unwrap();
    }

    #[test]
    fn rejects_malformed_escapes() {
        for bad in [
            r#""\x""#,     // unknown escape
            r#""\u12""#,   // truncated \u
            r#""\u12zz""#, // non-hex \u
            r#""\"#,       // backslash at end of input
        ] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
        assert_eq!(parse(r#""A\t\/""#).unwrap().as_str(), Some("A\t/"));
    }

    #[test]
    fn rejects_truncated_documents() {
        for bad in [
            "{\"a\": 1",
            "{\"a\"",
            "[1, 2",
            "{",
            "[",
            "\"abc",
            "{\"a\": ",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn rejects_bad_numbers() {
        for bad in ["01", "-", "1.", ".5", "1e", "1e+", "--1"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        for good in ["0", "-0.5", "10", "1e-9", "0.015"] {
            parse(good).unwrap();
        }
    }

    #[test]
    fn rejects_raw_control_chars_in_strings() {
        assert!(parse("\"a\u{1}b\"").is_err());
        // Escaped form of the same character is fine.
        assert_eq!(parse(r#""a\u0001b""#).unwrap().as_str(), Some("a\u{1}b"));
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse("{\"k\": \"héllo ✓\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo ✓"));
        assert_eq!(v.to_compact(), "{\"k\":\"héllo ✓\"}");
    }
}
