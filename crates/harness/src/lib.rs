//! `tracegc` — a full-system reproduction of *"A Hardware Accelerator
//! for Tracing Garbage Collection"* (Maas, Asanović, Kubiatowicz,
//! ISCA 2018) as a cycle-level simulator in Rust.
//!
//! This facade crate re-exports every subsystem and hosts the experiment
//! harness that regenerates each of the paper's tables and figures:
//!
//! | Subsystem | Crate |
//! |---|---|
//! | Simulation primitives | [`tracegc_sim`] |
//! | Memory system (DDR3, pipe, caches) | [`tracegc_mem`] |
//! | Virtual memory (page tables, TLBs, PTW) | [`tracegc_vmem`] |
//! | Mark-sweep heap, bidirectional layout | [`tracegc_heap`] |
//! | In-order CPU collector baseline | [`tracegc_cpu`] |
//! | **The GC accelerator** | [`tracegc_hwgc`] |
//! | Synthetic DaCapo workloads | [`tracegc_workloads`] |
//! | Area / power / energy models | [`tracegc_model`] |
//!
//! # Quickstart
//!
//! ```
//! use tracegc::runner::{DualRun, MemKind};
//! use tracegc_heap::LayoutKind;
//! use tracegc_hwgc::GcUnitConfig;
//! use tracegc_workloads::spec::by_name;
//!
//! let spec = by_name("avrora").unwrap().scaled(0.01);
//! let mut run = DualRun::new(&spec, LayoutKind::Bidirectional, GcUnitConfig::default());
//! let pause = run.run_pause(MemKind::ddr3_default());
//! assert!(pause.unit_mark_cycles < pause.cpu_mark_cycles);
//! ```
//!
//! Regenerate every figure with
//! `cargo run -p tracegc --release --bin experiments -- all`.

pub mod calib;
pub mod experiments;
pub mod json;
pub mod metrics;
pub mod nondet;
pub mod parallel;
pub mod runner;
pub mod table;

pub use metrics::MetricsDoc;
pub use runner::{DualRun, MemKind, MemSnapshot, PauseResult};
pub use table::Table;

// Re-export the subsystem crates under one roof.
pub use tracegc_cpu as cpu;
pub use tracegc_heap as heap;
pub use tracegc_hwgc as hwgc;
pub use tracegc_mem as mem;
pub use tracegc_model as model;
pub use tracegc_sim as sim;
pub use tracegc_vmem as vmem;
pub use tracegc_workloads as workloads;
