//! Machine-readable metrics sidecars and event-trace export.
//!
//! Every experiment emits a [`MetricsDoc`] alongside its CSV tables: a
//! deterministic, hand-rolled JSON document (schema
//! `tracegc-metrics-v1`, no external crates) carrying per-phase cycle
//! attribution ([`StallAccounting`]), named counters and named gauges.
//! [`chrome_trace_json`] renders a drained event ring in the Chrome
//! trace-event format (`chrome://tracing`, Perfetto), treating one
//! simulated cycle as one microsecond tick.

use std::fmt::Write as _;
use std::path::Path;

use tracegc_sim::{StallAccounting, StallReason, TraceEvent};

use crate::runner::PauseResult;

/// Schema tag written into every sidecar.
pub const SCHEMA: &str = "tracegc-metrics-v1";

/// Cycle attribution for one named phase of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Phase name, e.g. `pause0.unit_mark`.
    pub name: String,
    /// Wall cycles the phase took.
    pub cycles: u64,
    /// Parallel lanes accounted (1 for mark/CPU phases, the sweeper
    /// count for the unit's sweep).
    pub lanes: u64,
    /// The phase's cycle ledger: `stalls.total() == cycles * lanes`.
    pub stalls: StallAccounting,
}

/// One experiment's metrics document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDoc {
    /// Experiment id (`fig15`, `ablA`, ...).
    pub id: String,
    /// Cycle-attributed phases, in emission order.
    pub phases: Vec<PhaseMetrics>,
    /// Named integer counters, in emission order.
    pub counters: Vec<(String, u64)>,
    /// Named fault-injection counters, in emission order. Kept apart
    /// from `counters` so tooling can find the fault section without
    /// name conventions; empty for clean (fault-free) runs.
    pub faults: Vec<(String, u64)>,
    /// Named float gauges, in emission order.
    pub gauges: Vec<(String, f64)>,
}

impl MetricsDoc {
    /// Starts an empty document for experiment `id`.
    pub fn new(id: &str) -> Self {
        Self {
            id: id.to_string(),
            ..Self::default()
        }
    }

    /// Appends a cycle-attributed phase.
    pub fn phase(&mut self, name: &str, cycles: u64, lanes: u64, stalls: StallAccounting) {
        self.phases.push(PhaseMetrics {
            name: name.to_string(),
            cycles,
            lanes: lanes.max(1),
            stalls,
        });
    }

    /// Adds `v` to counter `name` (creating it at 0).
    pub fn counter(&mut self, name: &str, v: u64) {
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| n == name) {
            slot.1 += v;
        } else {
            self.counters.push((name.to_string(), v));
        }
    }

    /// Adds `v` to fault counter `name` (creating it at 0).
    pub fn fault(&mut self, name: &str, v: u64) {
        if let Some(slot) = self.faults.iter_mut().find(|(n, _)| n == name) {
            slot.1 += v;
        } else {
            self.faults.push((name.to_string(), v));
        }
    }

    /// The current value of counter `name`, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Folds the nonzero counters of one fault-injector snapshot into
    /// the faults section. Zero entries are skipped, so clean runs keep
    /// an empty section and zero-rate sidecars stay byte-identical to
    /// fault-free ones.
    pub fn note_faults(&mut self, stats: &tracegc_sim::FaultStats) {
        for (name, v) in stats.entries() {
            if v > 0 {
                self.fault(name, v);
            }
        }
    }

    /// The current value of fault counter `name`, if present.
    pub fn fault_value(&self, name: &str) -> Option<u64> {
        self.faults.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Sets gauge `name` to `v` (overwriting).
    pub fn gauge(&mut self, name: &str, v: f64) {
        if let Some(slot) = self.gauges.iter_mut().find(|(n, _)| n == name) {
            slot.1 = v;
        } else {
            self.gauges.push((name.to_string(), v));
        }
    }

    /// Records the four attributed phases of one paired pause under
    /// `<prefix>.{cpu,unit}_{mark,sweep}` names.
    pub fn pause_phases(&mut self, prefix: &str, p: &PauseResult) {
        self.phase(
            &format!("{prefix}.cpu_mark"),
            p.cpu_mark_cycles,
            1,
            p.cpu_mark_stalls,
        );
        self.phase(
            &format!("{prefix}.cpu_sweep"),
            p.cpu_sweep_cycles,
            1,
            p.cpu_sweep_stalls,
        );
        self.phase(
            &format!("{prefix}.unit_mark"),
            p.unit_mark_cycles,
            1,
            p.unit_mark_stalls,
        );
        self.phase(
            &format!("{prefix}.unit_sweep"),
            p.unit_sweep_cycles,
            p.unit_sweep_lanes,
            p.unit_sweep_stalls,
        );
    }

    /// Checks the accounting invariant on every phase: attributed busy +
    /// stall cycles must equal `cycles * lanes` exactly.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.id.is_empty() {
            return Err("metrics doc has an empty id".into());
        }
        for p in &self.phases {
            let want = p.cycles * p.lanes;
            let got = p.stalls.total();
            if got != want {
                return Err(format!(
                    "{}: phase {} attributes {got} cycles, expected {} x {} = {want}",
                    self.id, p.name, p.cycles, p.lanes
                ));
            }
        }
        Ok(())
    }

    /// Fraction of phase cycles spent stalled, over all phases whose
    /// name ends in `suffix` (e.g. `unit_mark`). `None` with no match.
    pub fn stall_fraction(&self, suffix: &str) -> Option<f64> {
        let mut total = 0u64;
        let mut stalled = 0u64;
        for p in self.phases.iter().filter(|p| p.name.ends_with(suffix)) {
            total += p.stalls.total();
            stalled += p.stalls.total_stalled();
        }
        (total > 0).then(|| stalled as f64 / total as f64)
    }

    /// Renders the document as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(s, "  \"id\": {},", json_string(&self.id));
        s.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"name\": {}, \"cycles\": {}, \"lanes\": {}, \"busy\": {}, \"stalls\": {{",
                json_string(&p.name),
                p.cycles,
                p.lanes,
                p.stalls.busy_cycles()
            );
            for (j, r) in StallReason::ALL.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", r.name(), p.stalls.stalled(*r));
            }
            s.push_str("}}");
        }
        s.push_str(if self.phases.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    {}: {v}", json_string(name));
        }
        s.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"faults\": {");
        for (i, (name, v)) in self.faults.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    {}: {v}", json_string(name));
        }
        s.push_str(if self.faults.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    {}: {}", json_string(name), json_f64(*v));
        }
        s.push_str(if self.gauges.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        s.push_str("}\n");
        s
    }
}

/// Writes `doc` to `<dir>/<id>.metrics.json`; returns the path written.
pub fn write_sidecar(dir: &Path, doc: &MetricsDoc) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.metrics.json", doc.id));
    std::fs::write(&path, doc.to_json())?;
    Ok(path)
}

/// Schema tag written into every self-timing bench document.
pub const BENCH_SCHEMA: &str = "tracegc-bench-v1";

/// One experiment's simulator-performance sample: the same simulated
/// work (identical cycles, CSVs and sidecars by construction) timed
/// under both pacings and once more with the partition pool.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Experiment id (`fig15`, ...).
    pub id: String,
    /// Simulated cycles attributed by the experiment's metrics phases
    /// (identical under every pacing and worker count).
    pub sim_cycles: u64,
    /// Wall seconds under event-driven fast-forward pacing,
    /// single-threaded.
    pub wall_s_fastforward: f64,
    /// Wall seconds under the cycle-by-cycle lockstep reference.
    pub wall_s_lockstep: f64,
    /// Wall seconds under fast-forward pacing with the experiment's
    /// independent grid points on the bulk-synchronous partition pool
    /// (`--par-engines`, see [`BenchDoc::par_engines`]).
    pub wall_s_parallel: f64,
}

impl BenchEntry {
    /// Lockstep wall over fast-forward wall (how much the event-driven
    /// scheduler buys on this experiment).
    pub fn speedup(&self) -> f64 {
        self.wall_s_lockstep / self.wall_s_fastforward.max(1e-9)
    }

    /// Single-threaded fast-forward wall over partition-pool wall (what
    /// multi-core execution buys *on top of* fast-forward pacing).
    pub fn speedup_parallel(&self) -> f64 {
        self.wall_s_fastforward / self.wall_s_parallel.max(1e-9)
    }
}

/// The `BENCH_<issue>.json` document (schema [`BENCH_SCHEMA`]): the
/// simulator's own performance trajectory, so a scheduling regression
/// shows up as a number, not a feeling. Written by
/// `experiments --bench`; validated by `tests/metrics_sidecar.rs` and
/// `ci.sh`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Trajectory point (the PR that recorded it); names the file.
    pub issue: u32,
    /// Worker threads the batch ran with (experiments in flight at
    /// once; `--jobs`).
    pub jobs: usize,
    /// Partition-pool workers used for the multi-core batch (grid
    /// points in flight inside one experiment; `--par-engines`).
    pub par_engines: usize,
    /// Scale factor of the batch.
    pub scale: f64,
    /// Pause budget of the batch.
    pub pauses: usize,
    /// CPUs available to the recording host (`None` when the host
    /// could not report it). The partition-pool batch cannot beat
    /// single-threaded fast-forward when this is 1, so the trajectory
    /// point is uninterpretable without it. Host-measured, so excluded
    /// from byte-equality comparisons (see [`crate::nondet`]).
    pub host_cpus: Option<usize>,
    /// Peak resident set size (KiB, `VmHWM`) observed over the
    /// fast-forward batch; `None` where `/proc` is unavailable.
    /// Host-measured, so excluded from byte-equality comparisons (see
    /// [`crate::nondet`]).
    pub peak_rss_kb_fastforward: Option<u64>,
    /// Peak resident set size (KiB) observed over the lockstep batch.
    pub peak_rss_kb_lockstep: Option<u64>,
    /// Peak resident set size (KiB) observed over the partition-pool
    /// batch.
    pub peak_rss_kb_parallel: Option<u64>,
    /// Per-experiment samples, in registry order.
    pub entries: Vec<BenchEntry>,
}

impl BenchDoc {
    /// Total simulated cycles across all entries.
    pub fn total_sim_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.sim_cycles).sum()
    }

    /// Summed per-experiment wall seconds (experiment-seconds of work,
    /// independent of `--jobs` overlap) under fast-forward pacing.
    pub fn total_wall_fastforward(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_s_fastforward).sum()
    }

    /// Summed per-experiment wall seconds under lockstep pacing.
    pub fn total_wall_lockstep(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_s_lockstep).sum()
    }

    /// Summed per-experiment wall seconds under fast-forward pacing on
    /// the partition pool.
    pub fn total_wall_parallel(&self) -> f64 {
        self.entries.iter().map(|e| e.wall_s_parallel).sum()
    }

    /// Whole-batch speedup of fast-forward over the lockstep reference.
    pub fn total_speedup(&self) -> f64 {
        self.total_wall_lockstep() / self.total_wall_fastforward().max(1e-9)
    }

    /// Whole-batch speedup of the partition pool over single-threaded
    /// fast-forward (the additional multi-core win).
    pub fn total_speedup_parallel(&self) -> f64 {
        self.total_wall_fastforward() / self.total_wall_parallel().max(1e-9)
    }

    /// The document's file name, `BENCH_<issue>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.issue)
    }

    /// Renders the document as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_string(BENCH_SCHEMA));
        let _ = writeln!(s, "  \"issue\": {},", self.issue);
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"par_engines\": {},", self.par_engines);
        let _ = writeln!(s, "  \"scale\": {},", json_f64(self.scale));
        let _ = writeln!(s, "  \"pauses\": {},", self.pauses);
        match self.host_cpus {
            Some(n) => {
                let _ = writeln!(s, "  \"host_cpus\": {n},");
            }
            None => {
                let _ = writeln!(s, "  \"host_cpus\": null,");
            }
        }
        s.push_str("  \"experiments\": [");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"id\": {}, \"sim_cycles\": {}, \
                 \"wall_s_fastforward\": {}, \"wall_s_lockstep\": {}, \
                 \"wall_s_parallel\": {}, \
                 \"speedup\": {}, \"speedup_parallel\": {}, \
                 \"cycles_per_sec_fastforward\": {}, \
                 \"cycles_per_sec_lockstep\": {}, \
                 \"cycles_per_sec_parallel\": {}}}",
                json_string(&e.id),
                e.sim_cycles,
                json_f64(e.wall_s_fastforward),
                json_f64(e.wall_s_lockstep),
                json_f64(e.wall_s_parallel),
                json_f64(e.speedup()),
                json_f64(e.speedup_parallel()),
                json_f64(e.sim_cycles as f64 / e.wall_s_fastforward.max(1e-9)),
                json_f64(e.sim_cycles as f64 / e.wall_s_lockstep.max(1e-9)),
                json_f64(e.sim_cycles as f64 / e.wall_s_parallel.max(1e-9)),
            );
        }
        s.push_str(if self.entries.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let _ = writeln!(s, "  \"total\": {{");
        let _ = writeln!(s, "    \"sim_cycles\": {},", self.total_sim_cycles());
        let _ = writeln!(
            s,
            "    \"wall_s_fastforward\": {},",
            json_f64(self.total_wall_fastforward())
        );
        let _ = writeln!(
            s,
            "    \"wall_s_lockstep\": {},",
            json_f64(self.total_wall_lockstep())
        );
        let _ = writeln!(
            s,
            "    \"wall_s_parallel\": {},",
            json_f64(self.total_wall_parallel())
        );
        let _ = writeln!(s, "    \"speedup\": {},", json_f64(self.total_speedup()));
        let _ = writeln!(
            s,
            "    \"speedup_parallel\": {},",
            json_f64(self.total_speedup_parallel())
        );
        let rss = |v: Option<u64>| v.map_or("null".to_string(), |kb| kb.to_string());
        let _ = writeln!(
            s,
            "    \"peak_rss_kb_fastforward\": {},",
            rss(self.peak_rss_kb_fastforward)
        );
        let _ = writeln!(
            s,
            "    \"peak_rss_kb_lockstep\": {},",
            rss(self.peak_rss_kb_lockstep)
        );
        let _ = writeln!(
            s,
            "    \"peak_rss_kb_parallel\": {}",
            rss(self.peak_rss_kb_parallel)
        );
        s.push_str("  }\n}\n");
        s
    }
}

/// Peak resident set size of this process in KiB: the `VmHWM` line of
/// `/proc/self/status`. `None` where `/proc` is unavailable (non-Linux)
/// or unparsable. A high-water mark, not an instantaneous reading — see
/// [`reset_peak_rss`].
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// CPUs available to this process, for [`BenchDoc::host_cpus`]. `None`
/// when the host cannot report it.
pub fn host_cpus() -> Option<usize> {
    std::thread::available_parallelism().ok().map(usize::from)
}

/// Asks the kernel to reset the RSS high-water mark (`5` to
/// `/proc/self/clear_refs`), so consecutive batches can be attributed
/// separately. Returns whether the reset took; when it does not, the
/// next [`peak_rss_kb`] reading is a running maximum over both batches,
/// which is still a valid upper bound.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Writes `doc` to `<dir>/BENCH_<issue>.json`; returns the path written.
pub fn write_bench(dir: &Path, doc: &BenchDoc) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(doc.file_name());
    std::fs::write(&path, doc.to_json())?;
    Ok(path)
}

/// Renders drained ring events in the Chrome trace-event format
/// (one simulated cycle = 1 µs). Stall events (`stall:*`) use their
/// `arg` as the duration; all others are unit-duration slices.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Stable component -> tid mapping in first-appearance order.
    let mut components: Vec<&'static str> = Vec::new();
    for e in events {
        if !components.contains(&e.component) {
            components.push(e.component);
        }
    }
    let tid = |c: &str| components.iter().position(|&x| x == c).unwrap_or(0) + 1;

    let mut s = String::with_capacity(64 + events.len() * 96);
    s.push_str("{\"traceEvents\": [");
    let mut first = true;
    for c in &components {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            "\n  {{\"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": {}}}}}",
            tid(c),
            json_string(c)
        );
    }
    for e in events {
        if !first {
            s.push(',');
        }
        first = false;
        let dur = if e.kind.starts_with("stall:") {
            e.arg.max(1)
        } else {
            1
        };
        let _ = write!(
            s,
            "\n  {{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {dur}, \
             \"name\": {}, \"cat\": {}, \"args\": {{\"arg\": {}}}}}",
            tid(e.component),
            e.cycle,
            json_string(e.kind),
            json_string(e.component),
            e.arg
        );
    }
    s.push_str("\n]}\n");
    s
}

/// Escapes `v` as a JSON string literal (quotes included).
fn json_string(v: &str) -> String {
    crate::json::escape(v)
}

/// Formats a float as JSON: `{:?}` always produces a decimal point or
/// exponent; non-finite values (not representable in JSON) become 0.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

/// A full JSON well-formedness check (no external crates), built on the
/// strict parser in [`crate::json`]: beyond the grammar it rejects
/// duplicate object keys, malformed escapes, raw control characters in
/// strings, leading-zero numbers, and trailing garbage. Values are not
/// retained; use [`crate::json::parse`] to read them.
pub fn json_syntax_check(s: &str) -> Result<(), String> {
    crate::json::parse(s).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stalls() -> StallAccounting {
        let mut s = StallAccounting::default();
        s.busy(70);
        s.stall(StallReason::MemLatency, 25);
        s.stall(StallReason::TlbMiss, 5);
        s
    }

    #[test]
    fn doc_roundtrip_is_valid_json() {
        let mut doc = MetricsDoc::new("fig15");
        doc.phase("pause0.unit_mark", 100, 1, sample_stalls());
        doc.counter("objects_marked", 600);
        doc.counter("objects_marked", 1); // accumulates
        doc.gauge("scale", 0.015);
        doc.gauge("speedup", 4.2);
        let json = doc.to_json();
        json_syntax_check(&json).unwrap();
        assert!(json.contains("\"schema\": \"tracegc-metrics-v1\""));
        assert!(json.contains("\"objects_marked\": 601"));
        assert!(json.contains("\"mem_latency\": 25"));
        doc.check_invariants().unwrap();
    }

    #[test]
    fn invariant_check_catches_short_attribution() {
        let mut doc = MetricsDoc::new("x");
        let mut s = StallAccounting::default();
        s.busy(99); // one cycle short of 100
        doc.phase("p", 100, 1, s);
        assert!(doc.check_invariants().is_err());
    }

    #[test]
    fn empty_doc_is_valid_json() {
        let doc = MetricsDoc::new("empty");
        json_syntax_check(&doc.to_json()).unwrap();
        doc.check_invariants().unwrap();
    }

    #[test]
    fn fault_section_accumulates_and_renders() {
        let mut doc = MetricsDoc::new("faultsweep");
        // Clean docs still carry an (empty) faults object, so the
        // sidecar shape is rate-independent.
        assert!(doc.to_json().contains("\"faults\": {},"));
        doc.fault("retries", 3);
        doc.fault("retries", 2);
        doc.fault("fallback_runs", 1);
        let json = doc.to_json();
        json_syntax_check(&json).unwrap();
        assert!(json.contains("\"retries\": 5"));
        assert_eq!(doc.fault_value("retries"), Some(5));
        assert_eq!(doc.fault_value("fallback_runs"), Some(1));
        assert_eq!(doc.fault_value("nope"), None);
        // Faults live in their own namespace, not in counters.
        assert_eq!(doc.counter_value("retries"), None);
        doc.counter("retries", 9);
        assert_eq!(doc.counter_value("retries"), Some(9));
        assert_eq!(doc.fault_value("retries"), Some(5));
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let events = vec![
            TraceEvent {
                cycle: 5,
                component: "marker",
                kind: "mark_issue",
                arg: 0x1000,
            },
            TraceEvent {
                cycle: 9,
                component: "traversal",
                kind: "stall:mem_latency",
                arg: 12,
            },
        ];
        let json = chrome_trace_json(&events);
        json_syntax_check(&json).unwrap();
        assert!(json.contains("\"dur\": 12"));
        assert!(json.contains("thread_name"));
        // Empty trace still renders a valid document.
        json_syntax_check(&chrome_trace_json(&[])).unwrap();
    }

    #[test]
    fn syntax_check_rejects_garbage() {
        assert!(json_syntax_check("{\"a\": }").is_err());
        assert!(json_syntax_check("{} trailing").is_err());
        assert!(json_syntax_check("{\"a\": 1,}").is_err());
        assert!(json_syntax_check("[1, 2, {\"k\": \"v\"}]").is_ok());
        assert!(json_syntax_check("-1.5e-3").is_ok());
    }

    #[test]
    fn syntax_check_rejects_malformed_escapes() {
        assert!(json_syntax_check(r#"{"a": "bad \q escape"}"#).is_err());
        assert!(json_syntax_check(r#"{"a": "trunc \u00"}"#).is_err());
        assert!(json_syntax_check(r#"{"a": "nonhex \uZZZZ"}"#).is_err());
        assert!(json_syntax_check(r#"{"a": "ok A \n \t \" \\"}"#).is_ok());
    }

    #[test]
    fn syntax_check_rejects_truncated_objects() {
        assert!(json_syntax_check("{\"schema\": \"tracegc-metrics-v1\"").is_err());
        assert!(json_syntax_check("{\"phases\": [").is_err());
        assert!(json_syntax_check("{\"counters\": {\"a\"").is_err());
        assert!(json_syntax_check("{\"gauges\": {\"a\":").is_err());
        // A sidecar cut off mid-write must never pass the checker: take a
        // real document and chop it at every byte.
        let mut doc = MetricsDoc::new("trunc");
        doc.phase("p", 100, 1, sample_stalls());
        doc.counter("c", 1);
        let json = doc.to_json();
        // Stop before the closing brace: beyond it only trailing
        // whitespace remains and the document is already complete.
        for cut in 1..=json.rfind('}').unwrap() {
            if json.is_char_boundary(cut) {
                assert!(
                    json_syntax_check(&json[..cut]).is_err(),
                    "truncation at byte {cut} slipped through"
                );
            }
        }
    }

    #[test]
    fn syntax_check_rejects_duplicate_keys() {
        assert!(json_syntax_check(r#"{"a": 1, "a": 2}"#).is_err());
        // Nested duplicate, the shape a double-emitted counter would take.
        assert!(json_syntax_check(r#"{"counters": {"x": 1, "x": 2}}"#).is_err());
        // The same key in sibling objects is legal.
        assert!(json_syntax_check(r#"[{"x": 1}, {"x": 2}]"#).is_ok());
    }

    #[test]
    fn non_finite_gauges_become_zero() {
        let mut doc = MetricsDoc::new("inf");
        doc.gauge("bad", f64::INFINITY);
        let json = doc.to_json();
        json_syntax_check(&json).unwrap();
        assert!(json.contains("\"bad\": 0.0"));
    }

    #[test]
    fn stall_fraction_aggregates_matching_phases() {
        let mut doc = MetricsDoc::new("f");
        doc.phase("pause0.unit_mark", 100, 1, sample_stalls());
        doc.phase("pause1.unit_mark", 100, 1, sample_stalls());
        let f = doc.stall_fraction("unit_mark").unwrap();
        assert!((f - 0.3).abs() < 1e-12);
        assert!(doc.stall_fraction("unit_sweep").is_none());
    }
}
