//! The single source of truth for nondeterministic sidecar fields.
//!
//! Everything the harness writes is byte-deterministic — CSVs, metrics
//! sidecars, `calibration.json` — **except** host-measured quantities:
//! wall-clock times, their derived rates/speedups, and peak RSS. Those
//! live only in `BENCH_<n>.json` and must be excluded from every
//! byte-equality comparison (`--bench`'s pacing check, the golden wall,
//! `tests/metrics_sidecar.rs`). This module owns the exclusion list so
//! the comparisons and the tests can never drift apart; the
//! `exclusion_list_is_exact` test in `tests/metrics_sidecar.rs` pins
//! that the list is *exactly* the nondeterministic field set — every
//! listed field appears in a bench doc and genuinely varies across
//! runs, and no field of any deterministic artifact is listed.

use crate::json::{self, Json};

/// Field names whose values are measured on the host (wall clock,
/// `/proc` RSS) rather than simulated, and are therefore excluded from
/// byte-equality comparisons. Every other field of every artifact is
/// deterministic.
pub const NONDET_FIELDS: &[&str] = &[
    // Wall-clock seconds per batch (both pacings plus the
    // partition-pool run), and everything derived from them.
    "wall_s_fastforward",
    "wall_s_lockstep",
    "wall_s_parallel",
    "speedup",
    "speedup_parallel",
    "cycles_per_sec_fastforward",
    "cycles_per_sec_lockstep",
    "cycles_per_sec_parallel",
    // CPUs available on the recording host (contextualizes the
    // partition-pool numbers above).
    "host_cpus",
    // Peak resident set size of the measuring process (`VmHWM`),
    // recorded per batch.
    "peak_rss_kb_fastforward",
    "peak_rss_kb_lockstep",
    "peak_rss_kb_parallel",
];

/// Whether `field` is on the nondeterministic exclusion list.
pub fn is_nondet_field(field: &str) -> bool {
    NONDET_FIELDS.contains(&field)
}

/// Strips every [`NONDET_FIELDS`] member (recursively) from a parsed
/// JSON value.
pub fn strip_nondet(v: &Json) -> Json {
    match v {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| !is_nondet_field(k))
                .map(|(k, val)| (k.clone(), strip_nondet(val)))
                .collect(),
        ),
        Json::Arr(elems) => Json::Arr(elems.iter().map(strip_nondet).collect()),
        other => other.clone(),
    }
}

/// Parses a JSON document and returns its canonical (compact) form with
/// every nondeterministic field removed. Two runs of the same simulated
/// work must scrub to identical bytes; for fully deterministic
/// artifacts (metrics sidecars, `calibration.json`) scrubbing is a
/// value-level no-op.
///
/// # Errors
///
/// Propagates parse errors from [`json::parse`].
pub fn scrub_json(doc: &str) -> Result<String, String> {
    Ok(strip_nondet(&json::parse(doc)?).to_compact())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_drops_listed_fields_recursively() {
        let doc = r#"{
            "id": "fig15", "sim_cycles": 123,
            "wall_s_fastforward": 0.5, "speedup": 2.0,
            "total": {"wall_s_lockstep": 1.0, "sim_cycles": 123}
        }"#;
        let scrubbed = scrub_json(doc).unwrap();
        assert_eq!(
            scrubbed,
            r#"{"id":"fig15","sim_cycles":123,"total":{"sim_cycles":123}}"#
        );
        for f in NONDET_FIELDS {
            assert!(!scrubbed.contains(f), "{f} survived scrubbing");
        }
    }

    #[test]
    fn scrub_is_identity_on_deterministic_docs() {
        let doc = r#"{"schema":"tracegc-metrics-v1","id":"x","counters":{"a":1}}"#;
        assert_eq!(scrub_json(doc).unwrap(), doc);
    }

    #[test]
    fn scrub_rejects_malformed_input() {
        assert!(scrub_json("{\"a\": ").is_err());
    }

    #[test]
    fn list_membership() {
        assert!(is_nondet_field("wall_s_lockstep"));
        assert!(is_nondet_field("peak_rss_kb_fastforward"));
        assert!(!is_nondet_field("sim_cycles"));
        assert!(!is_nondet_field("cycles"));
    }
}
