//! Text-table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table, printable and CSV-serializable.
///
/// # Examples
///
/// ```
/// use tracegc::Table;
///
/// let mut t = Table::new("demo", &["bench", "speedup"]);
/// t.row(vec!["avrora".into(), "4.2".into()]);
/// let s = t.render();
/// assert!(s.contains("avrora"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", c, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Serializes as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

/// Formats cycles as milliseconds with two decimals.
pub fn ms(cycles: u64) -> String {
    format!("{:.2}", tracegc_sim::cycles_to_ms(cycles))
}

/// Formats a ratio with two decimals and an `x` suffix.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", &["a", "longheader"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("== t =="));
        assert!(r.contains("a       longheader"));
        assert!(r.contains("xxxxxx  1"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(2).unwrap(), "3,4");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(ms(2_500_000), "2.50");
        assert_eq!(ratio(4.234), "4.23x");
    }
}
