//! The experiment harness's worker pool: a thin façade over the
//! simulator's bulk-synchronous partition runner
//! ([`tracegc_sim::run_partitions`]) — no external crates.
//!
//! Determinism contract: [`par_map`] returns outputs in the order of its
//! inputs regardless of how the OS schedules workers, and every work
//! item builds its own simulator state from seeds, so results are
//! byte-identical for any `jobs` value. `tests/determinism.rs` asserts
//! this for the whole experiment registry.
//!
//! Failure contract: a panic in one work item poisons the shared work
//! queue — no *new* item is started afterwards (in-flight ones finish),
//! and the panic propagates to the caller once all workers have joined.
//! A failed batch therefore stops promptly instead of burning through
//! the rest of the registry.

use tracegc_sim::{run_partitions, Exec};

/// Applies `f` to every item on up to `jobs` worker threads, returning
/// the results in input order.
///
/// `jobs` is clamped to `1..=items.len()`; with `jobs == 1` no threads
/// are spawned and the items run inline in order. Work is distributed
/// dynamically (an atomic cursor), so long items do not leave workers
/// idle behind a static partition. A panic in `f` short-circuits the
/// cursor (items not yet started are never started) and propagates to
/// the caller once all workers have stopped.
///
/// # Examples
///
/// ```
/// let squares = tracegc::parallel::par_map(4, (0u64..8).collect(), |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    run_partitions(Exec::from_workers(jobs), items, |_, item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        // Stagger the work so later items finish first under real
        // concurrency; the output order must not change.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(8, items.clone(), |x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_runs_inline() {
        let out = par_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_larger_than_items_is_clamped() {
        let out = par_map(64, vec![10, 20], |x| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn owned_non_copy_items_move_through() {
        let items = vec![String::from("a"), String::from("bb")];
        let out = par_map(2, items, |s| s.len());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn same_result_for_any_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(1, items.clone(), |x| x.wrapping_mul(0x9E37_79B9));
        for jobs in [2, 3, 8, 16] {
            let par = par_map(jobs, items.clone(), |x| x.wrapping_mul(0x9E37_79B9));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn panic_stops_the_batch_before_later_items_start() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Two workers, four items. Item 0 blocks until item 1 has
        // started, then lingers long enough for item 1's panic to
        // poison the work queue; items 2 and 3 must never start.
        // (Before the short-circuit fix, the worker finishing item 0
        // kept draining the cursor and ran the whole remainder.)
        let started: Vec<AtomicBool> = (0..4).map(|_| AtomicBool::new(false)).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(2, vec![0usize, 1, 2, 3], |i| {
                started[i].store(true, Ordering::SeqCst);
                match i {
                    0 => {
                        while !started[1].load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                        std::thread::sleep(std::time::Duration::from_millis(100));
                    }
                    1 => panic!("item 1 failed"),
                    _ => {}
                }
                i
            })
        }));
        assert!(r.is_err(), "the worker panic must propagate to the caller");
        assert!(
            !started[2].load(Ordering::SeqCst) && !started[3].load(Ordering::SeqCst),
            "items after the panicking index must not be started"
        );
    }
}
