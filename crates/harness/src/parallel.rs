//! A minimal worker pool for running independent experiment work items
//! concurrently, built on [`std::thread::scope`] — no external crates.
//!
//! Determinism contract: [`par_map`] returns outputs in the order of its
//! inputs regardless of how the OS schedules workers, and every work
//! item builds its own simulator state from seeds, so results are
//! byte-identical for any `jobs` value. `tests/determinism.rs` asserts
//! this for the whole experiment registry.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `jobs` worker threads, returning
/// the results in input order.
///
/// `jobs` is clamped to `1..=items.len()`; with `jobs == 1` no threads
/// are spawned and the items run inline in order. Work is distributed
/// dynamically (an atomic cursor), so long items do not leave workers
/// idle behind a static partition. A panic in `f` propagates to the
/// caller once all workers have stopped.
///
/// # Examples
///
/// ```
/// let squares = tracegc::parallel::par_map(4, (0u64..8).collect(), |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        return items.into_iter().map(f).collect();
    }

    // Each input sits in its own slot so a worker can take ownership of
    // item `i` without holding any shared lock while running `f`; each
    // output lands in the slot of the same index, which preserves input
    // order no matter which worker finishes first.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("a work slot is locked at most once")
                    .take()
                    .expect("the cursor hands out each index once");
                let result = f(item);
                *out[i].lock().expect("a result slot is locked at most once") = Some(result);
            });
        }
    });

    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers have joined")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        // Stagger the work so later items finish first under real
        // concurrency; the output order must not change.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(8, items.clone(), |x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_runs_inline() {
        let out = par_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_larger_than_items_is_clamped() {
        let out = par_map(64, vec![10, 20], |x| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn owned_non_copy_items_move_through() {
        let items = vec![String::from("a"), String::from("bb")];
        let out = par_map(2, items, |s| s.len());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn same_result_for_any_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(1, items.clone(), |x| x.wrapping_mul(0x9E37_79B9));
        for jobs in [2, 3, 8, 16] {
            let par = par_map(jobs, items.clone(), |x| x.wrapping_mul(0x9E37_79B9));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }
}
