//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run -p tracegc --release --bin experiments -- all
//! cargo run -p tracegc --release --bin experiments -- fig15 fig20
//! cargo run -p tracegc --release --bin experiments -- --scale 1.0 --pauses 6 fig15
//! cargo run -p tracegc --release --bin experiments -- --quick all
//! ```
//!
//! Each experiment prints its tables and writes CSVs under `results/`.

use std::path::PathBuf;
use std::process::ExitCode;

use tracegc::experiments::{self, Options};

fn usage() -> String {
    format!(
        "usage: experiments [--quick] [--scale F] [--pauses N] [--out DIR] <id>...\n\
         ids: all {}",
        experiments::ALL.join(" ")
    )
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                opts.scale = 0.05;
                opts.pauses = 2;
            }
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.scale = v,
                None => {
                    eprintln!("--scale needs a number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--pauses" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.pauses = v,
                None => {
                    eprintln!("--pauses needs a number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    for id in &ids {
        let started = std::time::Instant::now();
        let Some(output) = experiments::run(id, &opts) else {
            eprintln!("unknown experiment '{id}'\n{}", usage());
            return ExitCode::FAILURE;
        };
        println!("\n################ {} ################", output.title);
        for (i, table) in output.tables.iter().enumerate() {
            println!("{}", table.render());
            let path = if output.tables.len() == 1 {
                out_dir.join(format!("{id}.csv"))
            } else {
                out_dir.join(format!("{id}_{i}.csv"))
            };
            if let Err(e) = table.write_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        for note in &output.notes {
            println!("note: {note}");
        }
        println!(
            "[{id} done in {:.1}s, scale={}, pauses={}]",
            started.elapsed().as_secs_f64(),
            opts.scale,
            opts.pauses
        );
    }
    ExitCode::SUCCESS
}
