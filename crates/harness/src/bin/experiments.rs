//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run -p tracegc --release --bin experiments -- all
//! cargo run -p tracegc --release --bin experiments -- fig15 fig20
//! cargo run -p tracegc --release --bin experiments -- --scale 1.0 --pauses 6 fig15
//! cargo run -p tracegc --release --bin experiments -- --quick --jobs 8 all
//! ```
//!
//! Each experiment prints its tables and writes CSVs under `results/`,
//! plus a `<id>.metrics.json` sidecar with cycle-attributed stall
//! breakdowns per phase. Two independent levels of parallelism are
//! available: `--jobs N` runs N *experiments* concurrently, and
//! `--par-engines N` runs the independent grid points *inside* each
//! sweep experiment on N bulk-synchronous partition workers. Output
//! order, CSV contents, and sidecar bytes are identical to a serial
//! run for any combination of the two. `--trace FILE` (single
//! experiment only) additionally dumps a Chrome trace-event JSON
//! viewable in `about:tracing`/Perfetto.

use std::path::PathBuf;
use std::process::ExitCode;

use tracegc::calib;
use tracegc::experiments::{self, Options};
use tracegc::metrics;
use tracegc::nondet;
use tracegc_sim::sched::{set_default_pacing, Pacing};

fn usage() -> String {
    format!(
        "usage: experiments [--quick] [--scale F] [--pauses N] [--jobs N] \
         [--par-engines N] [--out DIR] \
         [--trace FILE] [--fault-rate R] [--fault-seed S] \
         [--sched lockstep|fastforward] [--bench] [--rss-ceiling-mb N] <id>...\n\
         \x20      experiments --calibrate [--out DIR] [<figure>...]\n\
         ids: all {}\n\
         --sched picks the scheduler pacing (default fastforward; both produce \
         byte-identical results)\n\
         --par-engines runs each sweep experiment's independent grid points on N \
         partition workers (byte-identical outputs for any N; default 1)\n\
         --bench times every listed experiment under both pacings and once more \
         with the partition pool, checks the outputs match, and writes \
         BENCH_{}.json next to the results\n\
         --calibrate checks DIR's CSVs and sidecars (default results/) against the \
         paper's numbers and writes DIR/calibration.json; figures default to all of: {}\n\
         --rss-ceiling-mb fails the run (exit 5) if the process's peak RSS exceeds \
         N MB — the CI memory gate for the paper-scale heapscale batch\n\
         exit codes: 0 clean, 2 degraded to the software-fallback mark, 3 a run \
         failed, 4 calibration out of tolerance, 5 peak RSS over the ceiling",
        experiments::ALL.join(" "),
        BENCH_ISSUE,
        calib::FIGURES.join(" "),
    )
}

/// The BENCH trajectory point this build records (see ROADMAP item 5).
const BENCH_ISSUE: u32 = 10;

/// Partition workers `--bench` uses when `--par-engines` was not given:
/// the acceptance point of the multi-core batch is measured at 4.
const BENCH_PAR_ENGINES: usize = 4;

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn main() -> ExitCode {
    let mut opts = Options {
        jobs: default_jobs(),
        ..Options::default()
    };
    let mut out_dir = PathBuf::from("results");
    let mut trace_path: Option<PathBuf> = None;
    let mut par_engines_set = false;
    let mut bench = false;
    let mut calibrate = false;
    let mut rss_ceiling_mb: Option<u64> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sched" => match args.next().as_deref().and_then(Pacing::parse) {
                Some(p) => set_default_pacing(p),
                None => {
                    eprintln!("--sched needs 'lockstep' or 'fastforward'\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--bench" => bench = true,
            "--calibrate" => calibrate = true,
            "--quick" => {
                opts.scale = 0.05;
                opts.pauses = 2;
            }
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.scale = v,
                None => {
                    eprintln!("--scale needs a number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--pauses" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.pauses = v,
                None => {
                    eprintln!("--pauses needs a number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => opts.jobs = v,
                _ => {
                    eprintln!("--jobs needs a positive number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--par-engines" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => {
                    opts.par_engines = v;
                    par_engines_set = true;
                }
                _ => {
                    eprintln!("--par-engines needs a positive number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--fault-rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if (0.0..=1.0).contains(&v) => {
                    let mut cfg = opts
                        .fault
                        .unwrap_or_else(|| tracegc_sim::FaultConfig::zero_rates(0x5EED));
                    cfg.bit_flip_rate = v;
                    cfg.drop_rate = v;
                    cfg.delay_rate = v;
                    cfg.corrupt_ref_rate = v;
                    cfg.corrupt_header_rate = v;
                    cfg.pte_fault_rate = v;
                    opts.fault = Some(cfg);
                }
                _ => {
                    eprintln!("--fault-rate needs a probability in [0, 1]\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--fault-seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => {
                    let mut cfg = opts
                        .fault
                        .unwrap_or_else(|| tracegc_sim::FaultConfig::zero_rates(v));
                    cfg.seed = v;
                    opts.fault = Some(cfg);
                }
                None => {
                    eprintln!("--fault-seed needs a number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--rss-ceiling-mb" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => rss_ceiling_mb = Some(v),
                _ => {
                    eprintln!("--rss-ceiling-mb needs a positive number\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(v) => {
                    trace_path = Some(PathBuf::from(v));
                    opts.trace = true;
                }
                None => {
                    eprintln!("--trace needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    // --calibrate is a pure evaluation mode: it reruns nothing, it
    // checks the CSVs and sidecars already in the output directory
    // against the in-tree paper-number table and writes
    // calibration.json there. Exit 0 = within tolerance, 4 = a check
    // failed, 1 = usage or I/O error.
    if calibrate {
        let figures: Vec<&str> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
            calib::FIGURES.to_vec()
        } else {
            ids.iter().map(String::as_str).collect()
        };
        let report = match calib::evaluate(&out_dir, &figures) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("calibrate: {e}\n{}", usage());
                return ExitCode::FAILURE;
            }
        };
        for c in &report.checks {
            let detail = match (&c.measured, &c.reason) {
                (Some(v), _) => format!(
                    "measured {v:.4} in [{}, {}]{}",
                    c.lo,
                    c.hi.map_or("inf".to_string(), |h| h.to_string()),
                    c.paper.map_or(String::new(), |p| format!(", paper {p}")),
                ),
                (None, Some(reason)) => reason.clone(),
                (None, None) => String::new(),
            };
            println!(
                "calibrate: [{:>7}] {:<32} {}",
                c.status.name(),
                c.id,
                detail
            );
        }
        match calib::write_calibration(&out_dir, &report) {
            Ok(path) => println!("calibrate: report {}", path.display()),
            Err(e) => {
                eprintln!("calibrate: could not write calibration.json: {e}");
                return ExitCode::FAILURE;
            }
        }
        let (passed, failed, skipped) = report.tally();
        println!(
            "calibrate: {} checks over {} figure(s): {passed} passed, {failed} failed, \
             {skipped} skipped (bands apply at scale {})",
            report.checks.len(),
            report.figures.len(),
            calib::CALIBRATED_SCALE,
        );
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            eprintln!("exit 4: calibration outside tolerance (see calibration.json)");
            ExitCode::from(4)
        };
    }
    if ids.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    if trace_path.is_some() && ids.len() != 1 {
        eprintln!(
            "--trace requires exactly one experiment id (got {})\n{}",
            ids.len(),
            usage()
        );
        return ExitCode::FAILURE;
    }

    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    // --bench: run the same batch three ways — the cycle-by-cycle
    // lockstep reference, single-threaded fast-forward, and
    // fast-forward with the bulk-synchronous partition pool
    // (`--par-engines`, default 4 here) — hard-check that all three
    // outputs agree byte for byte, and record every wall in
    // BENCH_<issue>.json. The partition-pool batch doubles as the
    // normal output below. The RSS high-water mark is reset between
    // batches (where the kernel allows) so each batch is attributed
    // separately.
    let reference_batches = if bench {
        if !par_engines_set {
            opts.par_engines = BENCH_PAR_ENGINES;
        }
        let serial = Options {
            par_engines: 1,
            ..opts
        };
        set_default_pacing(Pacing::Lockstep);
        let lockstep = match experiments::run_ids(&id_refs, &serial) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}\n{}", usage());
                return ExitCode::FAILURE;
            }
        };
        let lockstep_rss = metrics::peak_rss_kb();
        metrics::reset_peak_rss();
        set_default_pacing(Pacing::FastForward);
        let fastforward = match experiments::run_ids(&id_refs, &serial) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}\n{}", usage());
                return ExitCode::FAILURE;
            }
        };
        let fastforward_rss = metrics::peak_rss_kb();
        metrics::reset_peak_rss();
        Some((lockstep, lockstep_rss, fastforward, fastforward_rss))
    } else {
        None
    };
    let started = std::time::Instant::now();
    let completed = match experiments::run_ids(&id_refs, &opts) {
        Ok(completed) => completed,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let wall = started.elapsed();
    if let Some((lockstep, lockstep_rss, fastforward, fastforward_rss)) = &reference_batches {
        for (label, reference) in [("pacings", lockstep), ("worker counts", fastforward)] {
            for (par, r) in completed.iter().zip(reference) {
                let id = par.output.id;
                // Byte-equality after scrubbing the centralized
                // nondeterministic-field list (a no-op for sidecars,
                // which contain none of those fields — the scrub
                // guarantees the comparison can never trip on a
                // host-measured value).
                let scrubbed = |doc: &tracegc::MetricsDoc| match nondet::scrub_json(&doc.to_json())
                {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("bench: {id} sidecar is not valid JSON: {e}");
                        String::new()
                    }
                };
                let (par_doc, ref_doc) =
                    (scrubbed(&par.output.metrics), scrubbed(&r.output.metrics));
                if par_doc.is_empty() || par_doc != ref_doc {
                    eprintln!("bench: {id} metrics sidecars differ between {label}");
                    return ExitCode::FAILURE;
                }
                let csv = |c: &experiments::CompletedExperiment| {
                    c.output
                        .tables
                        .iter()
                        .map(tracegc::table::Table::to_csv)
                        .collect::<Vec<_>>()
                };
                if csv(par) != csv(r) {
                    eprintln!("bench: {id} CSV tables differ between {label}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let doc = metrics::BenchDoc {
            issue: BENCH_ISSUE,
            jobs: opts.jobs,
            par_engines: opts.par_engines,
            scale: opts.scale,
            pauses: opts.pauses,
            host_cpus: metrics::host_cpus(),
            peak_rss_kb_fastforward: *fastforward_rss,
            peak_rss_kb_lockstep: *lockstep_rss,
            peak_rss_kb_parallel: metrics::peak_rss_kb(),
            entries: completed
                .iter()
                .zip(fastforward)
                .zip(lockstep)
                .map(|((par, ff), ls)| metrics::BenchEntry {
                    id: par.output.id.to_string(),
                    sim_cycles: par.output.metrics.phases.iter().map(|p| p.cycles).sum(),
                    wall_s_fastforward: ff.wall.as_secs_f64(),
                    wall_s_lockstep: ls.wall.as_secs_f64(),
                    wall_s_parallel: par.wall.as_secs_f64(),
                })
                .collect(),
        };
        match metrics::write_bench(&out_dir, &doc) {
            Ok(path) => println!(
                "bench: {} ({:.1}s lockstep / {:.1}s fastforward = {:.2}x, \
                 / {:.1}s at --par-engines {} = a further {:.2}x \
                 on {} host CPU(s), outputs byte-identical)",
                path.display(),
                doc.total_wall_lockstep(),
                doc.total_wall_fastforward(),
                doc.total_speedup(),
                doc.total_wall_parallel(),
                opts.par_engines,
                doc.total_speedup_parallel(),
                doc.host_cpus
                    .map_or_else(|| "?".to_string(), |n| n.to_string()),
            ),
            Err(e) => {
                eprintln!("bench: could not write BENCH_{BENCH_ISSUE}.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Rendering happens after the pool drains, in registry order, so
    // output and CSVs are identical for every --jobs value.
    for (id, done) in id_refs.iter().zip(&completed) {
        let output = &done.output;
        println!("\n################ {} ################", output.title);
        for (i, table) in output.tables.iter().enumerate() {
            println!("{}", table.render());
            let path = if output.tables.len() == 1 {
                out_dir.join(format!("{id}.csv"))
            } else {
                out_dir.join(format!("{id}_{i}.csv"))
            };
            if let Err(e) = table.write_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        for note in &output.notes {
            println!("note: {note}");
        }
        match metrics::write_sidecar(&out_dir, &output.metrics) {
            Ok(path) => println!("metrics: {}", path.display()),
            Err(e) => eprintln!("warning: could not write metrics sidecar for {id}: {e}"),
        }
        let stall_summary: Vec<String> = ["cpu_mark", "cpu_sweep", "unit_mark", "unit_sweep"]
            .iter()
            .filter_map(|suffix| {
                output
                    .metrics
                    .stall_fraction(suffix)
                    .map(|f| format!("{suffix} {:.1}% stalled", 100.0 * f))
            })
            .collect();
        if !stall_summary.is_empty() {
            println!("stalls: {}", stall_summary.join(", "));
        }
        if let Some(path) = &trace_path {
            if output.trace.is_empty() {
                eprintln!(
                    "warning: {id} recorded no trace events (experiment may not \
                     support tracing)"
                );
            }
            let json = metrics::chrome_trace_json(&output.trace);
            match std::fs::write(path, &json) {
                Ok(()) => println!("trace: {} ({} events)", path.display(), output.trace.len()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        println!(
            "[{id} done in {:.1}s, scale={}, pauses={}]",
            done.wall.as_secs_f64(),
            opts.scale,
            opts.pauses
        );
    }

    let busy: f64 = completed.iter().map(|c| c.wall.as_secs_f64()).sum();
    let wall_s = wall.as_secs_f64();
    println!(
        "\n[{} experiments in {:.1}s wall with --jobs {} --par-engines {} \
         ({:.1} experiment-seconds of work, \
         {:.2}x parallel speedup, {:.2} experiments/s)]",
        completed.len(),
        wall_s,
        opts.jobs,
        opts.par_engines,
        busy,
        busy / wall_s.max(1e-9),
        completed.len() as f64 / wall_s.max(1e-9),
    );
    // The CI memory gate: peak RSS is host-measured and therefore never
    // lands in any deterministic output, only in this check and its
    // diagnostic line.
    if let Some(ceiling) = rss_ceiling_mb {
        match metrics::peak_rss_kb() {
            Some(kb) => {
                let peak_mb = kb.div_ceil(1024);
                println!("rss: peak {peak_mb} MB, ceiling {ceiling} MB");
                if peak_mb > ceiling {
                    eprintln!("exit 5: peak RSS {peak_mb} MB exceeds --rss-ceiling-mb {ceiling}");
                    return ExitCode::from(5);
                }
            }
            None => eprintln!("warning: --rss-ceiling-mb set but peak RSS is unreadable"),
        }
    }
    // Degraded/failed runs surface in the exit code (0 clean, 2 the
    // software fallback completed a trapped mark, 3 a run failed) so CI
    // can gate on the difference without parsing sidecars.
    let code = experiments::exit_code_for(&completed);
    if code != 0 {
        eprintln!("exit {code}: fault injection degraded at least one run (see sidecars)");
    }
    ExitCode::from(code)
}
